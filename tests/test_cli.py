"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main, parse_event
from repro.errors import ReproError


@pytest.fixture
def workspace(tmp_path):
    """Program, kernel, and database files for CLI runs."""
    db = tmp_path / "db.json"
    db.write_text(
        json.dumps(
            {
                "relations": {
                    "e": {"columns": ["I", "J"], "rows": [["v", "w"], ["v", "u"]]},
                    "C": {"columns": ["I"], "rows": [["a"]]},
                    "E": {
                        "columns": ["I", "J", "P"],
                        "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]],
                    },
                    "Cold": {"columns": ["I"], "rows": []},
                }
            }
        )
    )
    program = tmp_path / "reach.dl"
    program.write_text(
        "c(v).\nc2(X*, Y) :- c(X), e(X, Y).\nc(Y) :- c2(X, Y).\n"
    )
    walk = tmp_path / "walk.ra"
    walk.write_text("C := rename[J->I](project[J](repair-key[I@P](C join E)))\n")
    reach = tmp_path / "reach.ra"
    reach.write_text(
        "Cold := C\n"
        "C := C union rename[J->I](project[J]("
        "repair-key[I@P]((C minus Cold) join E)))\n"
    )
    return {"db": str(db), "program": str(program), "walk": str(walk), "reach": str(reach)}


class TestParseEvent:
    def test_simple(self):
        event = parse_event("c(w)")
        assert event.relation == "c"
        assert event.row == ("w",)

    def test_typed_values(self):
        event = parse_event("r(3, 1/2, 'two words', plain)")
        from fractions import Fraction

        assert event.row == (3, Fraction(1, 2), "two words", "plain")

    def test_zero_arity(self):
        assert parse_event("q()").row == ()

    def test_rejects_garbage(self):
        with pytest.raises(ReproError):
            parse_event("not an event")

    def test_compound_events(self):
        from repro.core.events import AndEvent, NotEvent, OrEvent

        both = parse_event("C(b) and D(a)")
        assert isinstance(both, AndEvent)
        assert both.left.relation == "C" and both.right.relation == "D"
        either = parse_event("C(b) or not D(a)")
        assert isinstance(either, OrEvent)
        assert isinstance(either.right, NotEvent)
        # 'and' binds tighter than 'or'; parentheses override.
        assert isinstance(parse_event("C(b) and D(a) or E(c)"), OrEvent)
        assert isinstance(parse_event("C(b) and (D(a) or E(c))"), AndEvent)
        # 'not' directly before '(' is still the combinator.
        negated = parse_event("not (C(b) and D(a))")
        assert isinstance(negated, NotEvent)
        assert isinstance(negated.inner, AndEvent)

    def test_compound_event_rejects_dangling_operator(self):
        with pytest.raises(ReproError):
            parse_event("C(b) and")
        with pytest.raises(ReproError):
            parse_event("C(b) D(a)")
        with pytest.raises(ReproError):
            parse_event("(C(b)")


class TestDatalogCommand:
    def test_exact(self, workspace, capsys):
        code = main(
            ["datalog", workspace["program"], "--db", workspace["db"], "--event", "c(w)"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "probability: 1/2" in out

    def test_sampling(self, workspace, capsys):
        code = main(
            [
                "datalog",
                workspace["program"],
                "--db",
                workspace["db"],
                "--event",
                "c(w)",
                "--samples",
                "400",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 4.3" in out

    def test_json_output(self, workspace, capsys):
        code = main(
            [
                "datalog",
                workspace["program"],
                "--db",
                workspace["db"],
                "--event",
                "c(w)",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["probability"] == "1/2"


class TestForeverCommand:
    def test_exact(self, workspace, capsys):
        code = main(
            ["forever", workspace["walk"], "--db", workspace["db"], "--event", "C(b)"]
        )
        assert code == 0
        assert "1/3" in capsys.readouterr().out

    def test_mcmc(self, workspace, capsys):
        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--mcmc",
                "--samples",
                "200",
                "--burn-in",
                "20",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        assert "Theorem 5.6" in capsys.readouterr().out


class TestInflationaryCommand:
    def test_exact(self, workspace, capsys):
        code = main(
            [
                "inflationary",
                workspace["reach"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
            ]
        )
        assert code == 0
        assert "probability: 1" in capsys.readouterr().out


class TestChainCommand:
    def test_report(self, workspace, capsys):
        code = main(["chain", workspace["walk"], "--db", workspace["db"]])
        assert code == 0
        out = capsys.readouterr().out
        assert "irreducible: True" in out
        assert "mixing_time_0.25" in out


class TestErrors:
    def test_missing_file(self, workspace, capsys):
        code = main(
            ["datalog", "/nonexistent.dl", "--db", workspace["db"], "--event", "c(w)"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_event(self, workspace, capsys):
        code = main(
            [
                "datalog",
                workspace["program"],
                "--db",
                workspace["db"],
                "--event",
                "???",
            ]
        )
        assert code == 2

    def test_non_inflationary_kernel_rejected(self, workspace, capsys):
        code = main(
            [
                "inflationary",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
            ]
        )
        assert code == 2
        assert "not inflationary" in capsys.readouterr().err


class TestResourceLimits:
    def test_timeout_exhausted_exits_2(self, workspace, capsys):
        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--timeout",
                "0",
            ]
        )
        assert code == 2
        assert "wall-clock budget" in capsys.readouterr().err

    def test_step_budget_exhausted_exits_2(self, workspace, capsys):
        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--mcmc",
                "--samples",
                "200",
                "--burn-in",
                "20",
                "--seed",
                "1",
                "--max-steps",
                "50",
            ]
        )
        assert code == 2
        assert "step budget" in capsys.readouterr().err

    def test_fallback_auto_records_downgrade(self, workspace, capsys):
        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--fallback",
                "auto",
                "--max-states",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # the auto ladder's first fallback is the certified sparse rung
        assert abs(payload["probability_float"] - 1 / 3) <= (
            payload["certificate"]["bound"]
        )
        assert payload["certificate"]["satisfied"] is True
        assert payload["downgrades"][0]["from"] == "exact"
        assert payload["downgrades"][0]["to"] == "sparse"

    def test_checkpoint_resume_matches_uninterrupted(
        self, workspace, capsys, tmp_path
    ):
        mcmc = [
            "forever",
            workspace["walk"],
            "--db",
            workspace["db"],
            "--event",
            "C(b)",
            "--mcmc",
            "--samples",
            "200",
            "--burn-in",
            "20",
            "--seed",
            "1",
            "--json",
        ]
        assert main(mcmc) == 0
        full = json.loads(capsys.readouterr().out)

        path = tmp_path / "cli.ckpt"
        code = main(mcmc + ["--max-steps", "1234", "--checkpoint", str(path)])
        assert code == 2
        capsys.readouterr()
        assert path.exists()

        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--resume",
                str(path),
                "--json",
            ]
        )
        assert code == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["estimate"] == full["estimate"]
        assert resumed["resumed_at_sample"] > 0

    def test_keyboard_interrupt_exits_130(self, workspace, capsys, monkeypatch):
        def interrupted(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.evaluate_forever_mcmc", interrupted)
        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--mcmc",
                "--checkpoint",
                "progress.ckpt",
            ]
        )
        assert code == 130
        assert "progress saved to progress.ckpt" in capsys.readouterr().err


class TestLumpedFlag:
    def test_forever_lumped(self, workspace, capsys):
        code = main(
            [
                "forever",
                workspace["walk"],
                "--db",
                workspace["db"],
                "--event",
                "C(b)",
                "--lumped",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lumped quotient" in out
        assert "probability: 1/3" in out
