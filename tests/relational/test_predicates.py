"""Unit tests for selection predicates."""

import pytest

from repro.errors import AlgebraError
from repro.relational import (
    ColumnEq,
    RowPredicate,
    TruePredicate,
    ValueEq,
    ValueNe,
)


ROW = {"A": 1, "B": 1, "C": 2}


class TestAtoms:
    def test_true(self):
        assert TruePredicate().evaluate(ROW)
        assert TruePredicate().referenced_columns() == frozenset()

    def test_value_eq(self):
        assert ValueEq("A", 1).evaluate(ROW)
        assert not ValueEq("A", 2).evaluate(ROW)
        assert ValueEq("A", 1).referenced_columns() == {"A"}

    def test_value_ne(self):
        assert ValueNe("A", 2).evaluate(ROW)
        assert not ValueNe("A", 1).evaluate(ROW)

    def test_column_eq(self):
        assert ColumnEq("A", "B").evaluate(ROW)
        assert not ColumnEq("A", "C").evaluate(ROW)
        assert ColumnEq("A", "C").referenced_columns() == {"A", "C"}

    def test_unknown_column_raises(self):
        with pytest.raises(AlgebraError):
            ValueEq("Z", 1).evaluate(ROW)


class TestCombinators:
    def test_and(self):
        predicate = ValueEq("A", 1) & ValueEq("C", 2)
        assert predicate.evaluate(ROW)
        assert not (ValueEq("A", 1) & ValueEq("C", 3)).evaluate(ROW)

    def test_or(self):
        assert (ValueEq("A", 9) | ValueEq("C", 2)).evaluate(ROW)
        assert not (ValueEq("A", 9) | ValueEq("C", 9)).evaluate(ROW)

    def test_not(self):
        assert (~ValueEq("A", 9)).evaluate(ROW)
        assert not (~ValueEq("A", 1)).evaluate(ROW)

    def test_nested_referenced_columns(self):
        predicate = (ValueEq("A", 1) & ColumnEq("B", "C")) | ~ValueEq("A", 3)
        assert predicate.referenced_columns() == {"A", "B", "C"}

    def test_reprs_render(self):
        predicate = (ValueEq("A", 1) & ~ColumnEq("B", "C")) | TruePredicate()
        assert "A" in repr(predicate)


class TestRowPredicate:
    def test_callable(self):
        predicate = RowPredicate(lambda row: row["A"] + row["C"] == 3, ("A", "C"))
        assert predicate.evaluate(ROW)
        assert predicate.referenced_columns() == {"A", "C"}

    def test_result_coerced_to_bool(self):
        predicate = RowPredicate(lambda row: row["A"], ("A",))
        assert predicate.evaluate(ROW) is True
