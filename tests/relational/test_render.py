"""Unit + property tests for the algebra renderer."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Interpretation
from repro.errors import AlgebraError
from repro.relational import (
    Database,
    Relation,
    RowPredicate,
    ValueEq,
    evaluate,
    extended_project,
    join,
    literal,
    parse_expression,
    parse_interpretation,
    product,
    project,
    rel,
    rename,
    repair_key,
    select,
    union,
    difference,
)
from repro.relational.render import render_expression, render_interpretation


class TestRoundTripsByExample:
    CASES = [
        "C",
        "project[J](E)",
        "rename[J->I](project[J](repair-key[I@P](C join E)))",
        "C union rename[J->I](project[J](repair-key[I@P]((C minus Cold) join E)))",
        "select[A='x', B!=3, A=B](R)",
        "literal[A, P]{('x', 1/2), ('y', 1/2)}",
        "repair-key[@P](R)",
        "repair-key[](R)",
        "A union B join C",
        "(A union B) join C",
        "A minus B minus C",
        "A times B times C",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_parse_render_parse_stable(self, source):
        first = parse_expression(source)
        rendered = render_expression(first)
        second = parse_expression(rendered)
        assert render_expression(second) == rendered

    def test_canonical_example_is_verbatim(self):
        text = "rename[J->I](project[J](repair-key[I@P](C join E)))"
        assert render_expression(parse_expression(text)) == text


def random_expressions(max_depth=3):
    """Hypothesis strategy producing renderable expression trees."""
    names = st.sampled_from(["R", "S", "T"])
    columns = st.sampled_from(["A", "B", "C"])

    leaves = st.one_of(
        names.map(rel),
        st.just(literal(("A",), [("x",), ("y",)])),
    )

    def extend(children):
        unary = st.one_of(
            st.tuples(children, columns).map(lambda t: project(t[0], t[1])),
            st.tuples(children, columns).map(
                lambda t: rename(t[0], **{t[1]: t[1].lower()})
            ),
            st.tuples(children, columns, st.integers(0, 3)).map(
                lambda t: select(t[0], ValueEq(t[1], t[2]))
            ),
            st.tuples(children, columns).map(
                lambda t: repair_key(t[0], (t[1],))
            ),
        )
        binary = st.one_of(
            st.tuples(children, children).map(lambda t: union(*t)),
            st.tuples(children, children).map(lambda t: difference(*t)),
            st.tuples(children, children).map(lambda t: join(*t)),
            st.tuples(children, children).map(lambda t: product(*t)),
        )
        return st.one_of(unary, binary)

    return st.recursive(leaves, extend, max_leaves=6)


@given(random_expressions())
@settings(max_examples=80, deadline=None)
def test_render_parse_round_trip_structurally(expr):
    rendered = render_expression(expr)
    reparsed = parse_expression(rendered)
    # structural identity via a second render (expressions lack __eq__)
    assert render_expression(reparsed) == rendered


class TestSemanticsPreserved:
    DB = Database(
        {
            "R": Relation(("A", "B"), [(1, "x"), (2, "y")]),
            "S": Relation(("B", "C"), [("x", 10)]),
        }
    )

    @pytest.mark.parametrize(
        "source",
        [
            "project[A](select[B='x'](R join S))",
            "project[A](R) union project[A](R)",
            "project[B](R) minus project[B](S)",
        ],
    )
    def test_deterministic_results_equal(self, source):
        original = parse_expression(source)
        round_tripped = parse_expression(render_expression(original))
        assert evaluate(original, self.DB) == evaluate(round_tripped, self.DB)


class TestUnrenderable:
    def test_extended_project_rejected(self):
        with pytest.raises(AlgebraError):
            render_expression(extended_project(rel("R"), [("X", ("col", "A"))]))

    def test_row_predicate_rejected(self):
        expr = select(rel("R"), RowPredicate(lambda _r: True, ("A",)))
        with pytest.raises(AlgebraError):
            render_expression(expr)

    def test_float_constant_rejected(self):
        with pytest.raises(AlgebraError):
            render_expression(literal(("A",), [(0.25,)]))

    def test_fraction_renders(self):
        text = render_expression(literal(("A",), [(Fraction(1, 4),)]))
        assert "1/4" in text


class TestInterpretationRendering:
    def test_round_trip(self):
        source = (
            "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n"
            "E := E"
        )
        kernel = parse_interpretation(source)
        rendered = render_interpretation(kernel)
        again = parse_interpretation(rendered)
        assert render_interpretation(again) == rendered

    def test_pc_tables_rejected(self):
        from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq

        pc = PCDatabase(
            {"A": CTable(("L",), [(("t",), var_eq("x", 1))])},
            {"x": boolean_variable()},
        )
        kernel = Interpretation({}, pc_tables=pc)
        with pytest.raises(AlgebraError):
            render_interpretation(kernel)
