"""Unit tests for Database snapshots."""

import pytest

from repro.errors import SchemaError
from repro.relational import Database, Relation, database_from_rows


@pytest.fixture
def db() -> Database:
    return Database(
        {
            "C": Relation(("I",), [("a",)]),
            "E": Relation(("I", "J"), [("a", "b")]),
        }
    )


class TestConstruction:
    def test_lookup(self, db):
        assert ("a",) in db["C"]

    def test_missing_relation(self, db):
        with pytest.raises(SchemaError):
            db["missing"]

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            Database({"": Relation(("A",), [])})

    def test_bad_value(self):
        with pytest.raises(SchemaError):
            Database({"R": "not a relation"})

    def test_from_rows_helper(self):
        db = database_from_rows({"E": (("I", "J"), [("a", "b")])})
        assert len(db["E"]) == 1

    def test_names_sorted(self, db):
        assert db.names() == ["C", "E"]

    def test_iteration_and_len(self, db):
        assert list(db) == ["C", "E"]
        assert len(db) == 2

    def test_contains(self, db):
        assert "C" in db
        assert "X" not in db


class TestValueSemantics:
    def test_equal_and_hashable(self, db):
        clone = Database({"C": db["C"], "E": db["E"]})
        assert db == clone
        assert hash(db) == hash(clone)
        assert {db: 1}[clone] == 1

    def test_not_equal_on_content(self, db):
        other = db.with_relation("C", Relation(("I",), [("b",)]))
        assert db != other

    def test_not_equal_other_type(self, db):
        assert db != "db"

    def test_hash_is_lazy_and_cached(self, db):
        fresh = Database(db.relations())
        assert fresh._hash is None  # not computed at construction
        first = hash(fresh)
        assert fresh._hash == first  # cached after first call
        assert hash(fresh) == first

    def test_slots_still_enforced(self, db):
        with pytest.raises(AttributeError):
            db.extra = 1


class TestFunctionalUpdates:
    def test_with_relation_returns_new(self, db):
        updated = db.with_relation("C", Relation(("I",), []))
        assert len(updated["C"]) == 0
        assert len(db["C"]) == 1

    def test_with_relations_bulk(self, db):
        updated = db.with_relations(
            {"C": Relation(("I",), []), "E": Relation(("I", "J"), [])}
        )
        assert updated.total_rows() == 0

    def test_restrict(self, db):
        only_c = db.restrict(["C"])
        assert only_c.names() == ["C"]

    def test_relations_copy_is_detached(self, db):
        copy = db.relations()
        copy["C"] = Relation(("I",), [])
        assert len(db["C"]) == 1


class TestSchemaAndDomain:
    def test_schema(self, db):
        assert db.schema() == {"C": ("I",), "E": ("I", "J")}

    def test_active_domain(self, db):
        assert db.active_domain() == {"a", "b"}

    def test_total_rows(self, db):
        assert db.total_rows() == 2


class TestContainsDatabase:
    def test_superset(self, db):
        grown = db.with_relation("C", db["C"].with_rows([("z",)]))
        assert grown.contains_database(db)
        assert not db.contains_database(grown)

    def test_reflexive(self, db):
        assert db.contains_database(db)

    def test_missing_relation_not_contained(self, db):
        partial = db.restrict(["C"])
        assert not partial.contains_database(db)
        # db has every relation of partial and more
        assert db.contains_database(partial)

    def test_schema_change_not_contained(self, db):
        other = db.with_relation("C", Relation(("X",), [("a",)]))
        assert not other.contains_database(db)
