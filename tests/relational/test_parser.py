"""Unit tests for the algebra/kernel text parser."""

from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    InflationaryQuery,
    TupleIn,
    evaluate_forever_exact,
    evaluate_inflationary_exact,
)
from repro.relational import (
    AlgebraParseError,
    Database,
    Difference,
    Literal,
    NaturalJoin,
    Product,
    Project,
    Relation,
    RelationRef,
    Rename,
    RepairKey,
    Select,
    Union,
    evaluate,
    parse_expression,
    parse_interpretation,
)


class TestExpressionParsing:
    def test_relation_reference(self):
        expr = parse_expression("Employees")
        assert isinstance(expr, RelationRef)
        assert expr.name == "Employees"

    def test_project(self):
        expr = parse_expression("project[A, B](R)")
        assert isinstance(expr, Project)
        assert expr.columns == ("A", "B")

    def test_rename(self):
        expr = parse_expression("rename[J->I, K->L](R)")
        assert isinstance(expr, Rename)
        assert expr.mapping == {"J": "I", "K": "L"}

    def test_rename_duplicate_rejected(self):
        with pytest.raises(AlgebraParseError):
            parse_expression("rename[J->I, J->K](R)")

    def test_repair_key_full_form(self):
        expr = parse_expression("repair-key[I, K@P](R)")
        assert isinstance(expr, RepairKey)
        assert expr.key == ("I", "K")
        assert expr.weight == "P"

    def test_repair_key_abbreviations(self):
        keyless = parse_expression("repair-key[@P](R)")
        assert keyless.key == ()
        assert keyless.weight == "P"
        uniform = parse_expression("repair-key[I](R)")
        assert uniform.key == ("I",)
        assert uniform.weight is None
        fully_uniform = parse_expression("repair-key[](R)")
        assert fully_uniform.key == ()
        assert fully_uniform.weight is None

    def test_binary_word_operators(self):
        assert isinstance(parse_expression("A union B"), Union)
        assert isinstance(parse_expression("A minus B"), Difference)
        assert isinstance(parse_expression("A join B"), NaturalJoin)
        assert isinstance(parse_expression("A times B"), Product)

    def test_binary_symbol_operators(self):
        assert isinstance(parse_expression("A ∪ B"), Union)
        assert isinstance(parse_expression("A − B"), Difference)
        assert isinstance(parse_expression("A ⋈ B"), NaturalJoin)
        assert isinstance(parse_expression("A × B"), Product)

    def test_precedence_join_binds_tighter(self):
        expr = parse_expression("A union B join C")
        assert isinstance(expr, Union)
        assert isinstance(expr.right, NaturalJoin)

    def test_parentheses_override(self):
        expr = parse_expression("(A union B) join C")
        assert isinstance(expr, NaturalJoin)
        assert isinstance(expr.left, Union)

    def test_left_associativity(self):
        expr = parse_expression("A minus B minus C")
        assert isinstance(expr, Difference)
        assert isinstance(expr.left, Difference)

    def test_literal(self):
        expr = parse_expression("literal[A, P]{('x', 1/2), ('y', 0.5)}")
        assert isinstance(expr, Literal)
        assert ("x", Fraction(1, 2)) in expr.relation
        assert ("y", Fraction(1, 2)) in expr.relation

    def test_literal_empty(self):
        expr = parse_expression("literal[A]{}")
        assert len(expr.relation) == 0

    def test_literal_arity_checked(self):
        with pytest.raises(AlgebraParseError):
            parse_expression("literal[A, B]{('x')}")

    def test_select_predicates(self):
        expr = parse_expression("select[A='x', B!=3, A=B](R)")
        assert isinstance(expr, Select)
        row = {"A": "x", "B": "x"}
        assert expr.predicate.evaluate(row)
        assert not expr.predicate.evaluate({"A": "x", "B": 3})

    def test_select_column_comparison(self):
        expr = parse_expression("select[A=B](R)")
        assert expr.predicate.evaluate({"A": 1, "B": 1})

    def test_empty_select_is_true(self):
        expr = parse_expression("select[](R)")
        assert expr.predicate.evaluate({})

    def test_errors(self):
        with pytest.raises(AlgebraParseError):
            parse_expression("")
        with pytest.raises(AlgebraParseError):
            parse_expression("A join")
        with pytest.raises(AlgebraParseError):
            parse_expression("project[A](R) extra")
        with pytest.raises(AlgebraParseError):
            parse_expression("select[A ~ 1](R)")
        with pytest.raises(AlgebraParseError):
            parse_expression("union(A)(B)")


class TestEvaluationThroughParser:
    DB = Database(
        {
            "R": Relation(("A", "B"), [(1, "x"), (2, "y")]),
            "S": Relation(("B", "C"), [("x", 10)]),
        }
    )

    def test_parsed_equals_constructed(self):
        parsed = parse_expression("project[A](select[B='x'](R join S))")
        assert evaluate(parsed, self.DB).rows == frozenset({(1,)})

    def test_fraction_constants_exact(self):
        parsed = parse_expression("select[P=1/3](literal[P]{(1/3), (2/3)})")
        assert evaluate(parsed, Database({})).rows == frozenset({(Fraction(1, 3),)})


class TestInterpretationParsing:
    def test_example_33_kernel(self):
        kernel = parse_interpretation(
            """
            C := rename[J->I](project[J](repair-key[I@P](C join E)))
            E := E    % unchanged
            """
        )
        db = Database(
            {
                "C": Relation(("I",), [("a",)]),
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", 1), ("b", "a", 1)],
                ),
            }
        )
        query = ForeverQuery(kernel, TupleIn("C", ("b",)))
        assert evaluate_forever_exact(query, db).probability == Fraction(1, 2)

    def test_example_35_kernel(self):
        kernel = parse_interpretation(
            """
            Cold := C
            C := C union rename[J->I](project[J](
                     repair-key[I@P]((C minus Cold) join E)))
            """
        )
        db = Database(
            {
                "C": Relation(("I",), [("a",)]),
                "Cold": Relation(("I",), []),
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", Fraction(1, 2)), ("a", "c", Fraction(1, 2))],
                ),
            }
        )
        query = InflationaryQuery(kernel, TupleIn("C", ("b",)))
        assert evaluate_inflationary_exact(query, db).probability == Fraction(1, 2)

    def test_duplicate_assignment_rejected(self):
        with pytest.raises(AlgebraParseError):
            parse_interpretation("C := C\nC := C")

    def test_empty_rejected(self):
        with pytest.raises(AlgebraParseError):
            parse_interpretation("   % only a comment")

    def test_keyword_relation_rejected(self):
        with pytest.raises(AlgebraParseError):
            parse_interpretation("union := A")
