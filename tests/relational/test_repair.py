"""Unit tests for repair-key possible-worlds semantics (Section 2.2)."""

import random
from fractions import Fraction

import pytest

from repro.errors import ProbabilityError
from repro.relational import (
    Relation,
    repair_distribution,
    sample_repair,
    world_probability,
)
from repro.workloads import BASKETBALL_WORLD_PROBABILITIES, basketball_table


class TestRepairDistribution:
    def test_basketball_example_22(self):
        """Example 2.2 / Table 2: the exact four-world distribution."""
        worlds = repair_distribution(
            basketball_table(), key=("Player",), weight="Belief"
        )
        assert len(worlds) == 4
        observed = {}
        for world, probability in worlds.items():
            key = tuple(sorted(row[1] for row in world))
            observed[key] = probability
        for (bryant, iverson), expected in BASKETBALL_WORLD_PROBABILITIES.items():
            key = tuple(sorted((bryant, iverson)))
            assert observed[key] == expected

    def test_probabilities_sum_to_one(self, players):
        worlds = repair_distribution(players, key=("Player",), weight="Belief")
        assert sum(p for _w, p in worlds.items()) == 1

    def test_each_world_is_maximal_repair(self, players):
        worlds = repair_distribution(players, key=("Player",), weight="Belief")
        key_values = players.column_values("Player")
        for world in worlds.support():
            assert world.column_values("Player") == key_values
            assert len(world) == len(key_values)

    def test_empty_relation_single_empty_world(self):
        empty = Relation(("A", "P"), [])
        worlds = repair_distribution(empty, key=(), weight="P")
        assert len(worlds) == 1
        assert worlds.probability(empty) == 1

    def test_uniform_without_weight(self):
        r = Relation(("K", "V"), [("k", 1), ("k", 2), ("k", 3)])
        worlds = repair_distribution(r, key=("K",))
        assert all(p == Fraction(1, 3) for _w, p in worlds.items())

    def test_keyless_single_choice(self):
        r = Relation(("V", "P"), [("a", 1), ("b", 3)])
        worlds = repair_distribution(r, key=(), weight="P")
        chosen = {next(iter(w))[0]: p for w, p in worlds.items()}
        assert chosen == {"a": Fraction(1, 4), "b": Fraction(3, 4)}

    def test_fully_uniform(self):
        r = Relation(("V",), [("a",), ("b",)])
        worlds = repair_distribution(r)
        assert all(p == Fraction(1, 2) for _w, p in worlds.items())

    def test_output_schema_keeps_weight_column(self, players):
        worlds = repair_distribution(players, key=("Player",), weight="Belief")
        for world in worlds.support():
            assert world.columns == players.columns

    def test_footnote1_duplicate_merge(self):
        """Rows equal on non-weight columns merge by summing weights."""
        r = Relation(("K", "V", "P"), [("k", "a", 1), ("k", "a", 2), ("k", "b", 3)])
        worlds = repair_distribution(r, key=("K",), weight="P")
        by_value = {next(iter(w))[1]: p for w, p in worlds.items()}
        assert by_value["a"] == Fraction(1, 2)
        assert by_value["b"] == Fraction(1, 2)
        merged_row = ("k", "a", Fraction(3))
        assert any(merged_row in w for w in worlds.support())

    def test_nonpositive_weight_rejected(self):
        r = Relation(("V", "P"), [("a", 0)])
        with pytest.raises(ProbabilityError):
            repair_distribution(r, key=(), weight="P")
        r2 = Relation(("V", "P"), [("a", -1)])
        with pytest.raises(ProbabilityError):
            repair_distribution(r2, key=(), weight="P")

    def test_groups_independent(self):
        """World probability = product over groups (Example 2.2)."""
        r = Relation(
            ("K", "V", "P"), [("x", 1, 1), ("x", 2, 1), ("y", 1, 1), ("y", 2, 3)]
        )
        worlds = repair_distribution(r, key=("K",), weight="P")
        target = Relation(("K", "V", "P"), [("x", 1, 1), ("y", 2, 3)])
        assert worlds.probability(target) == Fraction(1, 2) * Fraction(3, 4)


class TestWorldProbability:
    def test_matches_enumeration(self, players):
        worlds = repair_distribution(players, key=("Player",), weight="Belief")
        for world, probability in worlds.items():
            assert (
                world_probability(players, world, key=("Player",), weight="Belief")
                == probability
            )

    def test_non_repair_is_zero(self, players):
        bogus = Relation(players.columns, [("Bryant", "LA Lakers", 17)])
        assert world_probability(players, bogus, key=("Player",), weight="Belief") == 0

    def test_two_rows_same_group_is_zero(self, players):
        bogus = Relation(
            players.columns,
            [
                ("Bryant", "LA Lakers", 17),
                ("Bryant", "NY Knicks", 3),
                ("Iverson", "Philadelphia 76ers", 8),
            ],
        )
        assert world_probability(players, bogus, key=("Player",), weight="Belief") == 0


class TestSampleRepair:
    def test_sampled_world_is_possible(self, players):
        rng = random.Random(0)
        worlds = repair_distribution(players, key=("Player",), weight="Belief")
        for _ in range(50):
            sampled = sample_repair(players, rng, key=("Player",), weight="Belief")
            assert sampled in worlds.support()

    def test_sampling_frequencies_match(self, players):
        """Empirical frequencies approach the exact world probabilities."""
        rng = random.Random(42)
        counts: dict = {}
        trials = 4000
        for _ in range(trials):
            world = sample_repair(players, rng, key=("Player",), weight="Belief")
            counts[world] = counts.get(world, 0) + 1
        worlds = repair_distribution(players, key=("Player",), weight="Belief")
        for world, probability in worlds.items():
            observed = counts.get(world, 0) / trials
            assert abs(observed - float(probability)) < 0.03

    def test_empty_input(self):
        empty = Relation(("A",), [])
        assert sample_repair(empty, random.Random(1)) == empty
