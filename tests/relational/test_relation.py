"""Unit tests for the Relation value type."""

import pytest

from repro.errors import SchemaError
from repro.relational import Relation


class TestConstruction:
    def test_basic(self):
        r = Relation(("A", "B"), [(1, 2), (3, 4)])
        assert r.arity == 2
        assert len(r) == 2
        assert (1, 2) in r

    def test_duplicate_rows_collapse(self):
        r = Relation(("A",), [(1,), (1,), (2,)])
        assert len(r) == 2

    def test_zero_arity_relation(self):
        # Zero-column relations encode booleans: {()} = true, {} = false.
        truthy = Relation((), [()])
        falsy = Relation((), [])
        assert len(truthy) == 1
        assert len(falsy) == 0
        assert () in truthy

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("A", "A"), [])

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("",), [])

    def test_non_string_column_rejected(self):
        with pytest.raises(SchemaError):
            Relation((1,), [])

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            Relation(("A", "B"), [(1,)])

    def test_from_dicts(self):
        r = Relation.from_dicts(("A", "B"), [{"B": 2, "A": 1}])
        assert (1, 2) in r

    def test_from_dicts_missing_column(self):
        with pytest.raises(SchemaError):
            Relation.from_dicts(("A", "B"), [{"A": 1}])

    def test_singleton(self):
        r = Relation.singleton(("A",), (7,))
        assert r.rows == frozenset({(7,)})

    def test_empty(self):
        assert len(Relation.empty(("A", "B"))) == 0


class TestValueSemantics:
    def test_equality_ignores_row_order(self):
        a = Relation(("A",), [(1,), (2,)])
        b = Relation(("A",), [(2,), (1,)])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_columns(self):
        a = Relation(("A",), [(1,)])
        b = Relation(("B",), [(1,)])
        assert a != b

    def test_usable_as_dict_key(self):
        a = Relation(("A",), [(1,)])
        b = Relation(("A",), [(1,)])
        assert {a: "x"}[b] == "x"

    def test_not_equal_other_type(self):
        assert Relation(("A",), []) != 42


class TestAccessors:
    def test_column_index(self):
        r = Relation(("A", "B"), [])
        assert r.column_index("B") == 1

    def test_column_index_missing(self):
        with pytest.raises(SchemaError):
            Relation(("A",), []).column_index("Z")

    def test_column_values(self):
        r = Relation(("A", "B"), [(1, "x"), (2, "x")])
        assert r.column_values("A") == {1, 2}
        assert r.column_values("B") == {"x"}

    def test_row_as_dict(self):
        r = Relation(("A", "B"), [(1, 2)])
        assert r.row_as_dict((1, 2)) == {"A": 1, "B": 2}

    def test_sorted_rows_deterministic(self):
        r = Relation(("A",), [(3,), (1,), (2,)])
        assert r.sorted_rows() == sorted(r.rows, key=repr)

    def test_active_domain(self):
        r = Relation(("A", "B"), [(1, "x")])
        assert r.active_domain() == {1, "x"}


class TestSetOperations:
    def test_union(self):
        a = Relation(("A",), [(1,)])
        b = Relation(("A",), [(2,)])
        assert len(a.union(b)) == 2

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaError):
            Relation(("A",), []).union(Relation(("B",), []))

    def test_difference(self):
        a = Relation(("A",), [(1,), (2,)])
        b = Relation(("A",), [(2,)])
        assert a.difference(b).rows == frozenset({(1,)})

    def test_intersection(self):
        a = Relation(("A",), [(1,), (2,)])
        b = Relation(("A",), [(2,), (3,)])
        assert a.intersection(b).rows == frozenset({(2,)})

    def test_issubset(self):
        a = Relation(("A",), [(1,)])
        b = Relation(("A",), [(1,), (2,)])
        assert a.issubset(b)
        assert not b.issubset(a)

    def test_with_rows(self):
        a = Relation(("A",), [(1,)])
        grown = a.with_rows([(2,)])
        assert len(grown) == 2
        assert len(a) == 1  # original untouched

    def test_operations_preserve_immutability(self):
        a = Relation(("A",), [(1,)])
        a.union(Relation(("A",), [(2,)]))
        assert len(a) == 1
