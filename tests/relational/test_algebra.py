"""Unit tests for the relational algebra AST and deterministic evaluator."""

import pytest

from repro.errors import AlgebraError
from repro.relational import (
    Database,
    ExtendedProject,
    Relation,
    TruePredicate,
    ValueEq,
    ColumnEq,
    difference,
    evaluate,
    extended_project,
    join,
    literal,
    product,
    project,
    rel,
    rename,
    repair_key,
    select,
    union,
    validate,
)


@pytest.fixture
def db() -> Database:
    return Database(
        {
            "R": Relation(("A", "B"), [(1, "x"), (2, "y"), (3, "x")]),
            "S": Relation(("B", "C"), [("x", 10), ("y", 20)]),
        }
    )


class TestSchemaInference:
    def test_relation_ref(self, db):
        assert validate(rel("R"), db.schema()) == ("A", "B")

    def test_unknown_relation(self, db):
        with pytest.raises(AlgebraError):
            validate(rel("Z"), db.schema())

    def test_projection_columns(self, db):
        assert validate(project(rel("R"), "B"), db.schema()) == ("B",)

    def test_projection_missing_column(self, db):
        with pytest.raises(AlgebraError):
            validate(project(rel("R"), "Z"), db.schema())

    def test_projection_duplicate_columns(self):
        with pytest.raises(AlgebraError):
            project(rel("R"), "A", "A")

    def test_rename(self, db):
        assert validate(rename(rel("R"), A="X"), db.schema()) == ("X", "B")

    def test_rename_missing(self, db):
        with pytest.raises(AlgebraError):
            validate(rename(rel("R"), Z="Q"), db.schema())

    def test_rename_collision(self, db):
        with pytest.raises(AlgebraError):
            validate(rename(rel("R"), A="B"), db.schema())

    def test_union_schema_mismatch(self, db):
        with pytest.raises(AlgebraError):
            validate(union(rel("R"), rel("S")), db.schema())

    def test_product_column_clash(self, db):
        with pytest.raises(AlgebraError):
            validate(product(rel("R"), rel("R")), db.schema())

    def test_join_columns(self, db):
        assert validate(join(rel("R"), rel("S")), db.schema()) == ("A", "B", "C")

    def test_select_unknown_predicate_column(self, db):
        with pytest.raises(AlgebraError):
            validate(select(rel("R"), ValueEq("Z", 1)), db.schema())

    def test_repair_key_schema_passthrough(self, db):
        assert validate(repair_key(rel("R"), ("A",)), db.schema()) == ("A", "B")

    def test_repair_key_missing_key(self, db):
        with pytest.raises(AlgebraError):
            validate(repair_key(rel("R"), ("Z",)), db.schema())

    def test_repair_key_weight_is_key_rejected(self):
        with pytest.raises(AlgebraError):
            repair_key(rel("R"), ("P",), "P")


class TestDeterministicEvaluation:
    def test_select(self, db):
        result = evaluate(select(rel("R"), ValueEq("B", "x")), db)
        assert result.rows == frozenset({(1, "x"), (3, "x")})

    def test_select_column_eq(self):
        db = Database({"R": Relation(("A", "B"), [(1, 1), (1, 2)])})
        result = evaluate(select(rel("R"), ColumnEq("A", "B")), db)
        assert result.rows == frozenset({(1, 1)})

    def test_project_collapses_duplicates(self, db):
        result = evaluate(project(rel("R"), "B"), db)
        assert result.rows == frozenset({("x",), ("y",)})

    def test_rename(self, db):
        result = evaluate(rename(rel("R"), A="X"), db)
        assert result.columns == ("X", "B")
        assert (1, "x") in result

    def test_union(self, db):
        result = evaluate(union(project(rel("R"), "B"), project(rel("S"), "B")), db)
        assert result.rows == frozenset({("x",), ("y",)})

    def test_union_variadic(self, db):
        expr = union(project(rel("R"), "B"), project(rel("S"), "B"), literal(("B",), [("z",)]))
        assert ("z",) in evaluate(expr, db)

    def test_difference(self, db):
        extra = literal(("B",), [("x",)])
        result = evaluate(difference(project(rel("R"), "B"), extra), db)
        assert result.rows == frozenset({("y",)})

    def test_product(self, db):
        left = project(rel("R"), "A")
        right = project(rel("S"), "C")
        result = evaluate(product(left, right), db)
        assert len(result) == 6
        assert result.columns == ("A", "C")

    def test_product_runtime_clash(self):
        db = Database({"R": Relation(("A",), [(1,)])})
        with pytest.raises(AlgebraError):
            evaluate(product(rel("R"), rel("R")), db)

    def test_natural_join(self, db):
        result = evaluate(join(rel("R"), rel("S")), db)
        assert result.rows == frozenset({(1, "x", 10), (3, "x", 10), (2, "y", 20)})

    def test_join_no_shared_columns_is_product(self):
        db = Database(
            {"R": Relation(("A",), [(1,)]), "S": Relation(("B",), [(2,), (3,)])}
        )
        result = evaluate(join(rel("R"), rel("S")), db)
        assert len(result) == 2

    def test_join_variadic(self, db):
        result = evaluate(join(rel("R"), rel("S"), literal(("C",), [(10,)])), db)
        assert result.rows == frozenset({(1, "x", 10), (3, "x", 10)})

    def test_literal(self):
        result = evaluate(literal(("A",), [(1,)]), Database({}))
        assert result.rows == frozenset({(1,)})

    def test_select_true_predicate(self, db):
        assert evaluate(select(rel("R"), TruePredicate()), db) == db["R"]

    def test_repair_key_rejected_by_evaluate(self, db):
        with pytest.raises(AlgebraError):
            evaluate(repair_key(rel("R"), ("A",)), db)


class TestExtendedProject:
    def test_duplicate_column_and_constant(self):
        db = Database({"R": Relation(("A",), [(1,), (2,)])})
        expr = extended_project(
            rel("R"), [("X", ("col", "A")), ("Y", ("col", "A")), ("Z", ("const", 9))]
        )
        result = evaluate(expr, db)
        assert result.columns == ("X", "Y", "Z")
        assert result.rows == frozenset({(1, 1, 9), (2, 2, 9)})

    def test_schema_checks(self, db):
        with pytest.raises(AlgebraError):
            validate(extended_project(rel("R"), [("X", ("col", "Z"))]), db.schema())
        with pytest.raises(AlgebraError):
            extended_project(rel("R"), [("X", ("col", "A")), ("X", ("col", "B"))])
        with pytest.raises(AlgebraError):
            ExtendedProject(rel("R"), [("X", ("weird", "A"))])

    def test_empty_output_gives_boolean_relation(self, db):
        result = evaluate(extended_project(rel("R"), []), db)
        assert result.columns == ()
        assert result.rows == frozenset({()})


class TestStructuralHelpers:
    def test_is_deterministic(self, db):
        assert rel("R").is_deterministic()
        assert not repair_key(rel("R"), ("A",)).is_deterministic()
        assert not union(rel("R"), project(repair_key(rel("R"), ("A",)), "A", "B")).is_deterministic()

    def test_referenced_relations(self, db):
        expr = join(rel("R"), project(rel("S"), "B"))
        assert expr.referenced_relations() == frozenset({"R", "S"})

    def test_empty_relation_name_rejected(self):
        with pytest.raises(AlgebraError):
            rel("")
