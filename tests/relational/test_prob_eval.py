"""Unit tests for probabilistic expression evaluation."""

import random
from fractions import Fraction

import pytest

from repro.errors import AlgebraError
from repro.relational import (
    Database,
    Relation,
    count_repair_keys,
    difference,
    enumerate_worlds,
    join,
    literal,
    product,
    project,
    rel,
    rename,
    repair_key,
    sample_world,
    select,
    union,
    ValueEq,
)


@pytest.fixture
def db() -> Database:
    return Database(
        {
            "E": Relation(
                ("I", "J", "P"), [("a", "b", 1), ("a", "c", 1), ("b", "d", 2)]
            ),
            "C": Relation(("I",), [("a",)]),
        }
    )


class TestEnumerateWorlds:
    def test_deterministic_expression_single_world(self, db):
        worlds = enumerate_worlds(project(rel("E"), "I"), db)
        assert len(worlds) == 1

    def test_repair_key_branches(self, db):
        worlds = enumerate_worlds(repair_key(rel("E"), ("I",), "P"), db)
        # group a has two choices, group b has one -> 2 worlds
        assert len(worlds) == 2
        assert sum(p for _w, p in worlds.items()) == 1

    def test_operator_above_repair_key(self, db):
        expr = project(repair_key(rel("E"), ("I",), "P"), "J")
        worlds = enumerate_worlds(expr, db)
        supports = {frozenset(r.column_values("J")) for r in worlds.support()}
        assert supports == {frozenset({"b", "d"}), frozenset({"c", "d"})}

    def test_world_merging_adds_probabilities(self):
        """Distinct repairs that project to the same relation merge."""
        db = Database(
            {"R": Relation(("K", "V", "P"), [("k", 1, 1), ("k", 1, 2), ("k", 2, 3)])}
        )
        # footnote-1 merge turns the two (k, 1, ·) rows into one of weight 3.
        worlds = enumerate_worlds(project(repair_key(rel("R"), ("K",), "P"), "V"), db)
        assert len(worlds) == 2
        by_value = {next(iter(w))[0]: p for w, p in worlds.items()}
        assert by_value[1] == Fraction(1, 2)
        assert by_value[2] == Fraction(1, 2)

    def test_independent_subtrees_multiply(self, db):
        left = rename(project(repair_key(rel("E"), ("I",), "P"), "J"), J="X")
        right = rename(project(repair_key(rel("E"), ("I",), "P"), "J"), J="Y")
        worlds = enumerate_worlds(product(left, right), db)
        # 2 worlds on each side -> up to 4 combined
        assert len(worlds) == 4
        assert sum(p for _w, p in worlds.items()) == 1

    def test_union_with_probabilistic_arm(self, db):
        expr = union(
            project(repair_key(rel("E"), ("I",), "P"), "J"),
            literal(("J",), [("z",)]),
        )
        worlds = enumerate_worlds(expr, db)
        assert all(("z",) in w for w in worlds.support())

    def test_difference_with_probabilistic_arm(self, db):
        expr = difference(
            project(repair_key(rel("E"), ("I",), "P"), "J"),
            literal(("J",), [("b",)]),
        )
        worlds = enumerate_worlds(expr, db)
        assert all(("b",) not in w for w in worlds.support())

    def test_select_over_repair(self, db):
        expr = select(repair_key(rel("E"), ("I",), "P"), ValueEq("I", "a"))
        worlds = enumerate_worlds(expr, db)
        for world in worlds.support():
            assert world.column_values("I") == {"a"}

    def test_join_with_current_relation(self, db):
        expr = project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J")
        worlds = enumerate_worlds(expr, db)
        assert len(worlds) == 2


class TestSampleWorld:
    def test_sample_in_support(self, db):
        expr = project(repair_key(rel("E"), ("I",), "P"), "J")
        worlds = enumerate_worlds(expr, db)
        rng = random.Random(3)
        for _ in range(40):
            assert sample_world(expr, db, rng) in worlds.support()

    def test_sample_frequencies_match_enumeration(self, db):
        expr = project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J")
        worlds = enumerate_worlds(expr, db)
        rng = random.Random(17)
        trials = 3000
        counts: dict = {}
        for _ in range(trials):
            world = sample_world(expr, db, rng)
            counts[world] = counts.get(world, 0) + 1
        for world, probability in worlds.items():
            assert abs(counts.get(world, 0) / trials - float(probability)) < 0.04

    def test_deterministic_sample_is_stable(self, db):
        expr = project(rel("E"), "I")
        a = sample_world(expr, db, random.Random(0))
        b = sample_world(expr, db, random.Random(99))
        assert a == b


class TestHelpers:
    def test_count_repair_keys(self, db):
        expr = product(
            rename(project(repair_key(rel("E"), ("I",), "P"), "J"), J="X"),
            rename(project(repair_key(rel("E"), ("I",), "P"), "J"), J="Y"),
        )
        assert count_repair_keys(expr) == 2
        assert count_repair_keys(rel("E")) == 0
