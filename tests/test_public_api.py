"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro


PACKAGES = [
    "repro",
    "repro.baselines",
    "repro.core",
    "repro.core.evaluation",
    "repro.ctables",
    "repro.datalog",
    "repro.markov",
    "repro.probability",
    "repro.reductions",
    "repro.relational",
    "repro.runtime",
    "repro.workloads",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported, f"{package} must define __all__"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_all_sorted_and_unique(package):
    module = importlib.import_module(package)
    exported = list(module.__all__)
    assert exported == sorted(exported), f"{package}.__all__ is not sorted"
    assert len(exported) == len(set(exported)), f"{package}.__all__ has duplicates"


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_star_import_is_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    missing = [n for n in repro.__all__ if n not in namespace]
    assert not missing


def test_every_public_callable_has_a_docstring():
    undocumented = []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj) and not (obj.__doc__ or "").strip():
            undocumented.append(name)
    assert not undocumented, f"missing docstrings: {undocumented}"
