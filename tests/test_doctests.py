"""Run the doctests embedded in the library's docstrings.

Every public-API example in a docstring is executable documentation;
this test keeps them honest.  Modules whose examples depend on
randomness without a fixed seed are excluded by construction (all
doctests in the codebase are deterministic).
"""

import doctest

import pytest

import repro.baselines.seminaive
import repro.core.chain_builder
import repro.core.evaluation.exact_inflationary
import repro.core.evaluation.exact_noninflationary
import repro.core.evaluation.numeric_noninflationary
import repro.core.events
import repro.core.interpretation
import repro.core.queries
import repro.ctables.pctable
import repro.datalog.engine
import repro.datalog.parser
import repro.markov.chain
import repro.probability.distribution
import repro.reductions.cnf
import repro.relational.database
import repro.relational.parser
import repro.relational.prob_eval
import repro.relational.relation
import repro.relational.repair
import repro.runtime.budget
import repro.runtime.context
import repro.runtime.degradation
import repro.service.metrics
import repro.service.request
import repro.service.result_cache
import repro.service.scheduler
import repro.service.session
import repro.service.service
import repro.workloads.programs

MODULES = [
    repro.baselines.seminaive,
    repro.core.chain_builder,
    repro.core.evaluation.exact_inflationary,
    repro.core.evaluation.exact_noninflationary,
    repro.core.evaluation.numeric_noninflationary,
    repro.core.events,
    repro.core.interpretation,
    repro.core.queries,
    repro.ctables.pctable,
    repro.datalog.engine,
    repro.datalog.parser,
    repro.markov.chain,
    repro.probability.distribution,
    repro.reductions.cnf,
    repro.relational.database,
    repro.relational.parser,
    repro.relational.prob_eval,
    repro.relational.relation,
    repro.relational.repair,
    repro.runtime.budget,
    repro.runtime.context,
    repro.runtime.degradation,
    repro.service.metrics,
    repro.service.request,
    repro.service.result_cache,
    repro.service.scheduler,
    repro.service.session,
    repro.service.service,
    repro.workloads.programs,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_doctests_actually_present():
    """Guard against the doctest suite silently going empty."""
    total = sum(doctest.testmod(m, verbose=False).attempted for m in MODULES)
    assert total >= 20
