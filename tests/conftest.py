"""Shared fixtures for the repro test suite."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, settings

from repro.relational import Database, Relation

# Deterministic property testing: examples derive from the test body,
# not a per-run seed, so the suite is reproducible run-to-run.
settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
from repro.workloads import (
    WeightedGraph,
    basketball_table,
    cycle_graph,
    example_36_graph,
    sprinkler_network,
)


@pytest.fixture
def players() -> Relation:
    """Table 2 of the paper."""
    return basketball_table()


@pytest.fixture
def two_successor_graph() -> WeightedGraph:
    """The Example 3.3 / 3.6 graph E = {(a,b,1/2), (a,c,1/2)}."""
    return example_36_graph()


@pytest.fixture
def walk_db() -> Database:
    """A small random-walk database: 3-cycle with a lazy self-loop."""
    return Database(
        {
            "C": Relation(("I",), [("a",)]),
            "E": Relation(
                ("I", "J", "P"),
                [("a", "b", 1), ("b", "c", 1), ("c", "a", 1), ("a", "a", 1)],
            ),
        }
    )


@pytest.fixture
def four_cycle() -> WeightedGraph:
    return cycle_graph(4)


@pytest.fixture
def sprinkler():
    return sprinkler_network()


HALF = Fraction(1, 2)
