"""End-to-end reproduction of every worked example in the paper."""

from fractions import Fraction

import pytest

from repro.core import (
    TupleIn,
    evaluate_forever_exact,
    evaluate_forever_mcmc,
    evaluate_inflationary_exact,
    evaluate_inflationary_sampling,
)
from repro.baselines import pagerank
from repro.datalog import evaluate_datalog_exact, evaluate_datalog_sampling
from repro.markov import stationary_distribution
from repro.relational import Database, Relation, repair_distribution
from repro.workloads import (
    BASKETBALL_WORLD_PROBABILITIES,
    basketball_table,
    cycle_graph,
    erdos_renyi,
    example_36_graph,
    pagerank_query,
    random_walk_query,
    reachability_program,
    reachability_query,
    sprinkler_network,
    unguarded_reachability_query,
)


class TestExample22Table2:
    """Example 2.2: repair-key over the basketball table."""

    def test_exact_world_probabilities(self):
        worlds = repair_distribution(
            basketball_table(), key=("Player",), weight="Belief"
        )
        assert len(worlds) == 4
        observed = {
            (dict(((r[0], r[1]) for r in w))["Bryant"],
             dict(((r[0], r[1]) for r in w))["Iverson"]): p
            for w, p in worlds.items()
        }
        assert observed == dict(BASKETBALL_WORLD_PROBABILITIES)


class TestExample33RandomWalk:
    """Example 3.3: the forever-query result is the stationary
    probability of the target node."""

    def test_exact_equals_stationary(self):
        graph = erdos_renyi(5, 0.4, rng=11)
        pi = stationary_distribution(graph.to_markov_chain())
        for target in ("n1", "n3"):
            query, db = random_walk_query(graph, "n0", target)
            assert evaluate_forever_exact(query, db).probability == pi.probability(
                target
            )

    def test_mcmc_estimates_stationary(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        result = evaluate_forever_mcmc(query, db, samples=800, burn_in=40, rng=21)
        assert abs(result.estimate - 0.25) < 0.06


class TestExample33PageRank:
    """The PageRank variant against direct power iteration."""

    @pytest.mark.parametrize("alpha", [Fraction(1, 10), Fraction(3, 10)])
    def test_matches_power_iteration(self, alpha):
        graph = erdos_renyi(4, 0.5, rng=3)
        direct = pagerank(graph, float(alpha))
        for target in ("n1", "n3"):
            query, db = pagerank_query(graph, alpha, "n0", target)
            result = evaluate_forever_exact(query, db)
            assert abs(float(result.probability) - direct[target]) < 1e-9


class TestExamples35And36:
    """Reachability: guarded vs unguarded tuple re-use."""

    def test_example_36_contrast(self):
        graph = example_36_graph()
        guarded, db1 = reachability_query(graph, "a", "b")
        unguarded, db2 = unguarded_reachability_query(graph, "a", "b")
        assert evaluate_inflationary_exact(guarded, db1).probability == Fraction(1, 2)
        assert evaluate_inflationary_exact(unguarded, db2).probability == 1

    def test_sampling_agrees(self):
        graph = example_36_graph()
        guarded, db = reachability_query(graph, "a", "b")
        estimate = evaluate_inflationary_sampling(guarded, db, samples=1500, rng=2)
        assert abs(estimate.estimate - 0.5) < 0.05


class TestExample39Datalog:
    """The probabilistic-datalog reachability program."""

    def test_paper_trace_probabilities(self):
        program, edb = reachability_program(example_36_graph(), "a")
        result_b = evaluate_datalog_exact(program, edb, TupleIn("c", ("b",)))
        result_c = evaluate_datalog_exact(program, edb, TupleIn("c", ("c",)))
        # a's successor is b or c, each with probability 1/2; the chosen
        # successor then self-loops.
        assert result_b.probability == Fraction(1, 2)
        assert result_c.probability == Fraction(1, 2)

    def test_two_worlds_only(self):
        from repro.datalog import InflationaryDatalogEngine

        program, edb = reachability_program(example_36_graph(), "a")
        finals = InflationaryDatalogEngine(program, edb).fixpoint_distribution()
        # world 1: {a, b}; world 2: {a, c}
        sizes = {len(w["c"]) for w in finals.support()}
        assert sizes == {2}


class TestExample310Bayes:
    """Marginal inference through the K+1-rule program."""

    def test_sprinkler_marginals(self):
        bn = sprinkler_network()
        cases = [
            {"rain": 1},
            {"grass": 1},
            {"rain": 1, "grass": 1},
            {"sprinkler": 1, "rain": 0},
        ]
        for conditions in cases:
            program, edb = bn.to_datalog(conditions=conditions)
            result = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
            assert result.probability == bn.marginal_probability(conditions)

    def test_sampled_inference(self):
        bn = sprinkler_network()
        conditions = {"grass": 1}
        program, edb = bn.to_datalog(conditions=conditions)
        result = evaluate_datalog_sampling(
            program, edb, TupleIn("q", ()), samples=2500, rng=31
        )
        exact = float(bn.marginal_probability(conditions))
        assert abs(result.estimate - exact) < 0.04
