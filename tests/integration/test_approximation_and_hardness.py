"""Integration tests for Table 1's feasibility / infeasibility claims.

These are the *functional* counterparts of the benchmark harness: each
Table 1 cell has an executable witness here, on small instances.
"""

import random
from fractions import Fraction

import pytest

from repro.core import evaluate_forever_exact, evaluate_forever_mcmc
from repro.probability import hoeffding_sample_count, paper_sample_count
from repro.reductions import (
    CNFFormula,
    build_thm41_instance,
    build_thm51_instance,
    decide_sat_via_absolute_approximation,
    decide_sat_via_relative_approximation,
    random_3cnf,
    simulated_probability,
    thm41_exact_probability,
    thm41_sampled_probability,
    thm51_exact_probability,
)
from repro.workloads import cycle_graph, random_walk_query


class TestRow12ExactIsModelCounting:
    """Table 1 rows 1–2, column "exact": the evaluator counts models
    (♯P-hardness witnessed by the reduction's exactness)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_exact_evaluation_counts_models(self, seed):
        f = random_3cnf(4, 6, rng=seed)
        instance = build_thm41_instance(f)
        p = thm41_exact_probability(instance).probability
        assert p == Fraction(f.count_models(), 16)


class TestRow12RelativeApproxDecidesSAT:
    """Table 1 rows 1–2, column "relative approximation": any relative
    approximator decides SAT (Theorem 4.1)."""

    def test_decision_procedure_on_both_variants(self):
        sat = CNFFormula(3, [(1, 2, 3)])
        unsat = CNFFormula(3, [(s1, s2, s3) for s1 in (1, -1) for s2 in (2, -2) for s3 in (3, -3)])
        for variant in ("2'", "2"):
            assert decide_sat_via_relative_approximation(sat, variant)
            assert not decide_sat_via_relative_approximation(unsat, variant)


class TestRow12AbsoluteApproxFeasible:
    """Table 1 rows 1–2, column "absolute approximation": PTIME
    sampling with a Chernoff guarantee (Theorem 4.3)."""

    def test_guarantee_on_reduction_instance(self):
        f = CNFFormula(3, [(1, 2, 3), (-1, 2, 3)])
        instance = build_thm41_instance(f)
        exact = float(thm41_exact_probability(instance).probability)
        epsilon, delta = 0.1, 0.1
        samples = paper_sample_count(epsilon, delta)
        result = thm41_sampled_probability(instance, samples=samples, rng=13)
        assert abs(result.estimate - exact) <= epsilon

    def test_sample_counts_polynomial_in_guarantee_only(self):
        # The planned sample count is independent of the database size.
        assert paper_sample_count(0.05, 0.05) == paper_sample_count(0.05, 0.05)
        assert hoeffding_sample_count(0.05, 0.05) >= paper_sample_count(0.05, 0.05)


class TestRow3AbsoluteApproxHard:
    """Table 1 row 3: absolute approximation decides SAT for
    non-inflationary queries (Theorem 5.1) ..."""

    def test_zero_one_law(self):
        sat = CNFFormula(2, [(1, 2)])
        unsat = CNFFormula(2, [(1,), (-1,)])
        assert thm51_exact_probability(build_thm51_instance(sat)).probability == 1
        assert thm51_exact_probability(build_thm51_instance(unsat)).probability == 0

    def test_absolute_approximator_decides(self):
        assert decide_sat_via_absolute_approximation(
            CNFFormula(2, [(1, 2)]), steps=600, rng=3
        )
        assert not decide_sat_via_absolute_approximation(
            CNFFormula(2, [(1,), (-1,)]), steps=600, rng=3
        )


class TestRow3MixingTimeSampler:
    """... but is PTIME in database size and mixing time (Thm 5.6)."""

    def test_guarantee_against_exact(self):
        query, db = random_walk_query(cycle_graph(5), "n0", "n2")
        exact = float(evaluate_forever_exact(query, db).probability)
        epsilon, delta = 0.2, 0.2
        rng = random.Random(17)
        failures = 0
        runs = 10
        for _ in range(runs):
            result = evaluate_forever_mcmc(
                query, db, epsilon=epsilon, delta=delta, rng=rng
            )
            failures += abs(result.estimate - exact) > epsilon
        assert failures <= 3  # δ = 0.2 with slack

    def test_thm51_simulation_needs_exponential_steps(self):
        """With few steps the simulated probability of a satisfiable
        instance is far from 1 — the sampler alone cannot give a cheap
        absolute approximation without mixing."""
        sat = CNFFormula(2, [(1,), (2,)])  # single satisfying assignment
        instance = build_thm51_instance(sat)
        short = simulated_probability(instance, 8, rng=1)
        long = simulated_probability(instance, 2000, rng=1)
        assert short < 0.8
        assert long > 0.9
