"""Cross-formalism equivalences the paper asserts.

* Proposition 3.8: every probabilistic datalog program has an
  equivalent inflationary query — the compiled form and the operational
  engine must produce identical distributions.
* Section 3.1: pc-tables are macros over repair-key — native pc-table
  worlds equal the compiled algebra's worlds.
* Example 3.5 vs Example 3.9: the fixpoint encoding and the datalog
  encoding of reachability agree, and both agree with the independent
  functional-reachability oracle.
"""

from fractions import Fraction

import pytest

from repro.baselines import functional_reachability_probability
from repro.core import (
    InflationaryQuery,
    TupleIn,
    evaluate_inflationary_exact,
)
from repro.ctables import (
    CTable,
    PCDatabase,
    boolean_variable,
    compile_pc_database,
    var_eq,
    var_ne,
)
from repro.datalog import (
    evaluate_datalog_exact,
    inflationary_initial_database,
    inflationary_interpretation_for_program,
    parse_program,
)
from repro.relational import Database, Relation, enumerate_worlds
from repro.workloads import (
    erdos_renyi,
    example_36_graph,
    layered_dag,
    reachability_program,
    reachability_query,
)


class TestProposition38:
    """Engine vs compiled inflationary query, on several programs."""

    def _agree(self, program_text, edb, event):
        program = parse_program(program_text)
        engine_result = evaluate_datalog_exact(program, edb, event)
        kernel = inflationary_interpretation_for_program(program, edb.schema())
        init = inflationary_initial_database(program, edb)
        compiled = evaluate_inflationary_exact(InflationaryQuery(kernel, event), init)
        assert engine_result.probability == compiled.probability
        return engine_result.probability

    def test_reachability(self):
        edb = Database({"e": Relation(("I", "J"), [("v", "w"), ("v", "u")])})
        p = self._agree(
            "c(v). c2(X*, Y) :- c(X), e(X, Y). c(Y) :- c2(X, Y).",
            edb,
            TupleIn("c", ("w",)),
        )
        assert p == Fraction(1, 2)

    def test_weighted_choice(self):
        edb = Database(
            {"e": Relation(("I", "J", "P"), [("v", "w", 1), ("v", "u", 2)])}
        )
        p = self._agree(
            "c(v). c2(X*, Y)@P :- c(X), e(X, Y, P). c(Y) :- c2(X, Y).",
            edb,
            TupleIn("c", ("u",)),
        )
        assert p == Fraction(2, 3)

    def test_deterministic_program(self):
        edb = Database({"e": Relation(("I", "J"), [(1, 2), (2, 3)])})
        p = self._agree(
            "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).",
            edb,
            TupleIn("t", (1, 3)),
        )
        assert p == 1

    def test_two_stage_choice(self):
        edb = Database(
            {
                "e": Relation(
                    ("I", "J"), [("v", "w"), ("v", "u"), ("w", "x"), ("w", "y")]
                )
            }
        )
        p = self._agree(
            "c(v). c2(X*, Y) :- c(X), e(X, Y). c(Y) :- c2(X, Y).",
            edb,
            TupleIn("c", ("x",)),
        )
        assert p == Fraction(1, 4)


class TestPcTableMacro:
    """Section 3.1: pc-tables as repair-key macros."""

    @pytest.mark.parametrize("seed", range(3))
    def test_random_pc_tables_compile_exactly(self, seed):
        import random

        rng = random.Random(seed)
        entries = []
        variables = {}
        for i in range(rng.randint(1, 3)):
            name = f"x{i}"
            variables[name] = boolean_variable(Fraction(rng.randint(1, 4), 5))
            entries.append(((f"t{i}",), var_eq(name, 1)))
            if rng.random() < 0.5:
                entries.append(((f"f{i}",), var_ne(name, 1)))
        pcdb = PCDatabase({"A": CTable(("L",), entries)}, variables)
        ground, exprs = compile_pc_database(pcdb)
        compiled = enumerate_worlds(exprs["A"], Database(ground))
        native = pcdb.possible_worlds().map(lambda db: db["A"])
        assert compiled == native


class TestReachabilityThreeWays:
    """Fixpoint query ≡ datalog program ≡ independent oracle."""

    def _three_way(self, graph, start, target):
        fix_query, fix_db = reachability_query(graph, start, target)
        fixpoint = evaluate_inflationary_exact(fix_query, fix_db).probability
        program, edb = reachability_program(graph, start)
        datalog = evaluate_datalog_exact(
            program, edb, TupleIn("c", (target,))
        ).probability
        oracle = functional_reachability_probability(graph, start, target)
        assert fixpoint == datalog == oracle
        return fixpoint

    def test_example_graph(self):
        assert self._three_way(example_36_graph(), "a", "b") == Fraction(1, 2)

    def test_layered_dags(self):
        for seed in range(3):
            graph = layered_dag(2, 2, rng=seed)
            for target in ("v1_0", "v1_1"):
                self._three_way(graph, "v0_0", target)

    def test_cyclic_graph(self):
        graph = erdos_renyi(3, 0.4, rng=5)
        probability = self._three_way(graph, "n0", "n2")
        assert 0 <= probability <= 1
