"""Medium-scale smoke tests: the library on larger-than-toy instances.

These guard against accidental quadratic/exponential blowups in the
polynomial code paths: the samplers must handle hundred-node databases
and thousand-state chains comfortably.
"""

from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    build_state_chain,
    evaluate_forever_numeric,
    evaluate_inflationary_sampling,
)
from repro.datalog import evaluate_datalog_sampling, parse_program
from repro.markov import (
    is_irreducible,
    mixing_time,
    stationary_distribution_float,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import (
    cycle_graph,
    erdos_renyi,
    grid_graph,
    layered_dag,
    random_ergodic_chain,
    reachability_query,
)


class TestSamplerScale:
    def test_reachability_sampling_on_100_node_dag(self):
        graph = layered_dag(10, 10, rng=1)  # 101 nodes
        query, db = reachability_query(graph, "v0_0", "sink")
        result = evaluate_inflationary_sampling(query, db, samples=50, rng=2)
        assert result.estimate == 1.0
        assert result.details["mean_steps_per_sample"] >= 10

    def test_datalog_sampling_on_100_node_graph(self):
        graph = erdos_renyi(60, 0.05, rng=3)
        program = parse_program(
            f"""
            c('{graph.nodes[0]}').
            c2(X*, Y)@P :- c(X), e(X, Y, P).
            c(Y) :- c2(X, Y).
            """
        )
        edb = Database({"e": graph.edge_relation()})
        result = evaluate_datalog_sampling(
            program, edb, TupleIn("c", (graph.nodes[1],)), samples=30, rng=4
        )
        assert 0.0 <= result.estimate <= 1.0


class TestChainScale:
    def test_thousand_state_random_chain_float_solvers(self):
        chain = random_ergodic_chain(400, rng=7)
        assert is_irreducible(chain)
        pi = stationary_distribution_float(chain)
        assert abs(sum(pi.values()) - 1.0) < 1e-9

    def test_grid_walk_numeric_evaluation(self):
        graph = grid_graph(5, 5)  # 25 positions
        db = Database(
            {
                "C": Relation(("I",), [("g0_0",)]),
                "E": graph.edge_relation(),
            }
        )
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        query = ForeverQuery(Interpretation({"C": step}), TupleIn("C", ("g2_2",)))
        result = evaluate_forever_numeric(query, db)
        assert result.states_explored == 25
        # the centre cell has degree 4 + lazy loop = 5 of 105 total weight
        assert result.probability == pytest.approx(5 / 105, abs=1e-9)

    def test_mixing_time_on_larger_cycle(self):
        chain = cycle_graph(40).to_markov_chain()
        t = mixing_time(chain, epsilon=0.25)
        assert t > 100  # Θ(n²) at n = 40

    def test_state_chain_construction_100_states(self):
        graph = erdos_renyi(60, 0.05, rng=9)
        db = Database(
            {
                "C": Relation(("I",), [(graph.nodes[0],)]),
                "E": graph.edge_relation(),
            }
        )
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        chain = build_state_chain(Interpretation({"C": step}), db)
        assert chain.size == 60
