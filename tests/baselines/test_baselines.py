"""Unit tests for the independent baselines."""

from fractions import Fraction

import pytest

from repro.baselines import (
    enumerate_marginal,
    evaluate_classical,
    functional_reachability_probability,
    pagerank,
    sampled_marginal,
    walk_hitting_probability,
)
from repro.datalog import parse_program
from repro.errors import DatalogError, ReproError
from repro.relational import Database, Relation
from repro.workloads import (
    WeightedGraph,
    complete_graph,
    erdos_renyi,
    example_36_graph,
    layered_dag,
    sprinkler_network,
)


class TestClassicalDatalog:
    def test_transitive_closure(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z)."
        )
        edb = Database({"e": Relation(("A", "B"), [(1, 2), (2, 3), (3, 4)])})
        result = evaluate_classical(program, edb)
        assert (1, 4) in result["t"]
        assert len(result["t"]) == 6

    def test_cyclic_graph_terminates(self):
        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z)."
        )
        edb = Database({"e": Relation(("A", "B"), [(1, 2), (2, 1)])})
        result = evaluate_classical(program, edb)
        assert len(result["t"]) == 4

    def test_facts_and_constants(self):
        program = parse_program("p(a). q(X) :- p(X).")
        result = evaluate_classical(program, Database({}))
        assert ("a",) in result["q"]

    def test_probabilistic_rule_rejected(self):
        program = parse_program("h(X*, Y) :- e(X, Y).")
        with pytest.raises(DatalogError):
            evaluate_classical(program, Database({"e": Relation(("A", "B"), [])}))

    def test_matches_probabilistic_engine_on_deterministic_program(self):
        """A program with no repair-key has a single possible world."""
        from repro.datalog import InflationaryDatalogEngine

        program = parse_program(
            "t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z)."
        )
        edb = Database({"e": Relation(("A", "B"), [(1, 2), (2, 3)])})
        classical = evaluate_classical(program, edb)
        engine = InflationaryDatalogEngine(program, edb)
        finals = engine.fixpoint_distribution()
        assert len(finals) == 1
        final = next(iter(finals.support()))
        assert final["t"] == classical["t"]


class TestPagerank:
    def test_uniform_on_symmetric(self):
        scores = pagerank(complete_graph(4), alpha=0.2)
        assert all(abs(score - 0.25) < 1e-12 for score in scores.values())

    def test_scores_sum_to_one(self):
        scores = pagerank(erdos_renyi(6, 0.3, rng=2), alpha=0.15)
        assert abs(sum(scores.values()) - 1.0) < 1e-9

    def test_alpha_validated(self):
        with pytest.raises(ReproError):
            pagerank(complete_graph(3), alpha=0.0)

    def test_sink_rejected(self):
        graph = WeightedGraph(("a", "b"), (("a", "b", 1),))
        with pytest.raises(ReproError):
            pagerank(graph, alpha=0.2)


class TestReachabilityOracles:
    def test_example_36_functional(self):
        p = functional_reachability_probability(example_36_graph(), "a", "b")
        assert p == Fraction(1, 2)

    def test_self_target(self):
        assert functional_reachability_probability(example_36_graph(), "a", "a") == 1

    def test_unreachable(self):
        assert functional_reachability_probability(example_36_graph(), "b", "c") == 0

    def test_walk_hitting_on_dag_matches_functional(self):
        """No revisits on a DAG — the two semantics coincide."""
        graph = layered_dag(3, 2, rng=6)
        for target in ("v1_0", "v2_1"):
            functional = functional_reachability_probability(graph, "v0_0", target)
            hitting = walk_hitting_probability(graph, "v0_0", target)
            assert functional == hitting

    def test_walk_hitting_differs_on_cycles(self):
        """A self-loop: the frozen-choice semantics can get stuck, the
        memoryless walk cannot (the Example 3.6 discussion)."""
        graph = WeightedGraph(
            ("a", "b"),
            (("a", "a", 1), ("a", "b", 1), ("b", "b", 1)),
        )
        functional = functional_reachability_probability(graph, "a", "b")
        hitting = walk_hitting_probability(graph, "a", "b")
        assert functional == Fraction(1, 2)
        assert hitting == 1

    def test_unknown_nodes(self):
        with pytest.raises(ReproError):
            functional_reachability_probability(example_36_graph(), "zz", "a")
        with pytest.raises(ReproError):
            walk_hitting_probability(example_36_graph(), "a", "zz")


class TestBayesBaseline:
    def test_enumerate_known_value(self):
        bn = sprinkler_network()
        assert enumerate_marginal(bn, {"rain": 1}) == Fraction(1, 5)

    def test_sampled_close_to_exact(self):
        bn = sprinkler_network()
        exact = float(enumerate_marginal(bn, {"grass": 1}))
        estimate = sampled_marginal(bn, {"grass": 1}, samples=4000, rng=8)
        assert abs(estimate - exact) < 0.03
