"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import pytest

from repro.service import QueryRequest

#: The Example 3.3-style random walk: P(C(b)) = 1/3 on the 3-edge graph.
WALK_PROGRAM = "C := rename[J->I](project[J](repair-key[I@P](C join E)))"

WALK_DATABASE = {
    "relations": {
        "C": {"columns": ["I"], "rows": [["a"]]},
        "E": {
            "columns": ["I", "J", "P"],
            "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]],
        },
    }
}

REACH_DATALOG = "t(X, Y) :- e(X, Y).\nt(X, Z) :- t(X, Y), e(Y, Z).\n"

REACH_DATABASE = {
    "relations": {
        "e": {"columns": ["A", "B"], "rows": [["a", "b"], ["b", "c"]]},
    }
}


def walk_body(**overrides) -> dict:
    """A ready-to-submit forever-query request body."""
    body = {
        "semantics": "forever",
        "program": WALK_PROGRAM,
        "database": WALK_DATABASE,
        "event": "C(b)",
    }
    body.update(overrides)
    return body


@pytest.fixture
def walk_request() -> QueryRequest:
    return QueryRequest.from_json(walk_body())
