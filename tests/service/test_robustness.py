"""Scheduler robustness: load shedding, retry re-admission, idempotent
submits, and shutdown races."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    QueueFullError,
    ReproError,
    RunCancelledError,
    ServiceUnavailableError,
)
from repro.runtime import Budget
from repro.runtime.retry import RetryPolicy
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    JobScheduler,
    QueryRequest,
)
from repro.service.scheduler import FINISHED_STATES

from tests.service.conftest import walk_body


def make_request(**overrides) -> QueryRequest:
    return QueryRequest.from_json(walk_body(**overrides))


def make_scheduler(executor, **kwargs) -> JobScheduler:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_size", 8)
    return JobScheduler(executor, **kwargs)


#: An instant retry policy so re-admission tests don't sleep.
INSTANT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0)


class TestLoadShedding:
    def test_budget_rung_halves_bounded_budgets(self):
        scheduler = make_scheduler(
            lambda job: None, queue_size=4,
            default_budget=Budget(max_steps=1000),
        )
        try:
            first = scheduler.submit(make_request())   # fill 0/4
            second = scheduler.submit(make_request())  # fill 1/4
            third = scheduler.submit(make_request())   # fill 2/4 = 0.5
            assert first.shed == [] and second.shed == []
            assert first.budget.max_steps == 1000
            assert any("budget scaled" in note for note in third.shed)
            assert third.budget.max_steps == 500
            counter = scheduler.metrics.registry.counter("repro_load_shed_total")
            assert counter.value(rung="budget") == 1
        finally:
            scheduler.shutdown()

    def test_unlimited_budgets_are_never_shed(self):
        # Halving "unlimited" would be a silent no-op reported as a shed
        # — the ladder skips the rung instead.
        scheduler = make_scheduler(lambda job: None, queue_size=4)
        try:
            for _ in range(3):
                job = scheduler.submit(make_request())
            assert job.shed == []
            assert job.budget.is_unlimited
        finally:
            scheduler.shutdown()

    def test_accuracy_rung_halves_explicit_samples(self):
        scheduler = make_scheduler(lambda job: None, queue_size=5)
        try:
            for _ in range(4):
                scheduler.submit(make_request())
            job = scheduler.submit(make_request(  # fill 4/5 = 0.8
                params={"mcmc": True, "samples": 40, "seed": 7}
            ))
            assert job.request.params["samples"] == 20
            assert any("samples halved 40 -> 20" in note for note in job.shed)
            counter = scheduler.metrics.registry.counter("repro_load_shed_total")
            assert counter.value(rung="accuracy") == 1
        finally:
            scheduler.shutdown()

    def test_accuracy_rung_inflates_epsilon_delta_capped(self):
        scheduler = make_scheduler(lambda job: None, queue_size=5)
        try:
            for _ in range(4):
                scheduler.submit(make_request())
            job = scheduler.submit(make_request(
                params={"epsilon": 0.3, "delta": 0.05, "seed": 7}
            ))
            # ε doubled but capped at 0.5; δ doubled freely.
            assert job.request.params["epsilon"] == 0.5
            assert job.request.params["delta"] == 0.1
        finally:
            scheduler.shutdown()

    def test_shed_changes_the_cache_key(self):
        """A degraded job must not be served from (or poison) the cache
        entry of the full-accuracy computation."""
        scheduler = make_scheduler(lambda job: None, queue_size=5)
        try:
            original = make_request(
                params={"mcmc": True, "samples": 40, "seed": 7}
            )
            for _ in range(4):
                scheduler.submit(make_request())
            job = scheduler.submit(original)
            assert job.request.cache_key() != original.cache_key()
        finally:
            scheduler.shutdown()

    def test_exact_queries_have_no_accuracy_rung(self):
        scheduler = make_scheduler(lambda job: None, queue_size=5)
        try:
            for _ in range(4):
                scheduler.submit(make_request())
            job = scheduler.submit(make_request())  # exact: no sampling params
            assert job.shed == []  # budget unlimited, accuracy n/a
        finally:
            scheduler.shutdown()

    def test_shed_decisions_land_on_the_run_report(self):
        scheduler = make_scheduler(
            lambda job: {"ok": True}, workers=1, queue_size=4,
            default_budget=Budget(max_steps=1000),
        )
        try:
            scheduler.submit(make_request())
            scheduler.submit(make_request())
            shed_job = scheduler.submit(make_request())
            assert shed_job.shed
            scheduler.start()
            finished = scheduler.wait(shed_job.id, timeout=10.0)
            assert finished.state == DONE
            assert any(
                "load shed at admission" in event
                for event in finished.report["events"]
            )
        finally:
            scheduler.shutdown()

    def test_load_shedding_can_be_disabled(self):
        scheduler = make_scheduler(
            lambda job: None, queue_size=4,
            default_budget=Budget(max_steps=1000),
            load_shedding=False,
        )
        try:
            for _ in range(4):
                job = scheduler.submit(make_request())
            assert job.shed == []
            assert job.budget.max_steps == 1000
        finally:
            scheduler.shutdown()


class TestRetryReadmission:
    def flaky(self, failures: int, error_factory=None):
        """An executor failing ``failures`` times, then succeeding."""
        state = {"calls": 0}

        def executor(job):
            state["calls"] += 1
            if state["calls"] <= failures:
                if error_factory is not None:
                    raise error_factory()
                raise ReproError("transient wobble", retryable=True)
            return {"calls": state["calls"]}

        return executor, state

    def test_retryable_failure_is_requeued_until_success(self):
        executor, state = self.flaky(failures=2)
        scheduler = make_scheduler(
            executor, workers=1, retry_policy=INSTANT_RETRY
        )
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert job.state == DONE
            assert job.attempts == 3
            assert state["calls"] == 3
            assert any(
                "retry attempt" in event for event in job.report["events"]
            )
            counter = scheduler.metrics.registry.counter("repro_job_retries_total")
            assert counter.total() == 2
        finally:
            scheduler.shutdown()

    def test_retries_exhausted_fails_the_job(self):
        executor, state = self.flaky(failures=10)
        scheduler = make_scheduler(
            executor, workers=1, max_job_retries=2, retry_policy=INSTANT_RETRY
        )
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert job.state == FAILED
            assert job.attempts == 3  # initial + 2 retries
            assert state["calls"] == 3
            assert job.error["type"] == "ReproError"
        finally:
            scheduler.shutdown()

    def test_non_retryable_failure_is_terminal_immediately(self):
        executor, state = self.flaky(
            failures=10, error_factory=lambda: ReproError("permanent")
        )
        scheduler = make_scheduler(
            executor, workers=1, retry_policy=INSTANT_RETRY
        )
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert job.state == FAILED
            assert job.attempts == 1
            assert state["calls"] == 1
        finally:
            scheduler.shutdown()

    def test_cancelled_job_is_not_retried(self):
        started = threading.Event()

        def executor(job):
            started.set()
            while True:
                job.context.check()  # raises once cancelled
                time.sleep(0.005)

        scheduler = make_scheduler(
            executor, workers=1, retry_policy=INSTANT_RETRY
        )
        scheduler.start()
        try:
            job = scheduler.submit(make_request())
            assert started.wait(timeout=5.0)
            scheduler.cancel(job.id)
            job = scheduler.wait(job.id, timeout=10.0)
            assert job.state == CANCELLED
            assert job.attempts == 1
        finally:
            scheduler.shutdown()


class TestIdempotentSubmits:
    def test_duplicate_request_id_returns_the_same_job(self):
        scheduler = make_scheduler(lambda job: {"ok": True})
        try:
            first = scheduler.submit(make_request(), request_id="key-1")
            dup = scheduler.submit(make_request(), request_id="key-1")
            other = scheduler.submit(make_request(), request_id="key-2")
            assert dup is first
            assert other.id != first.id
            # Only the two distinct jobs occupy queue capacity.
            assert scheduler.stats()["queue_depth"] == 2
        finally:
            scheduler.shutdown()

    def test_pruned_jobs_release_their_request_id(self):
        scheduler = make_scheduler(
            lambda job: {"ok": True}, workers=1, registry_limit=1
        )
        scheduler.start()
        try:
            first = scheduler.submit(make_request(), request_id="key-1")
            assert scheduler.wait(first.id, timeout=10.0).state == DONE
            filler = scheduler.submit(make_request())  # prunes `first`
            scheduler.wait(filler.id, timeout=10.0)
            fresh = scheduler.submit(make_request(), request_id="key-1")
            assert fresh.id != first.id  # the stale mapping is gone
        finally:
            scheduler.shutdown()


class TestShutdown:
    def test_submit_after_shutdown_is_unavailable(self):
        scheduler = make_scheduler(lambda job: None)
        scheduler.shutdown()
        with pytest.raises(ServiceUnavailableError) as excinfo:
            scheduler.submit(make_request())
        assert excinfo.value.details["retry_after"] > 0

    def test_shutdown_cancels_running_jobs(self):
        started = threading.Event()

        def executor(job):
            started.set()
            while True:
                job.context.check()
                time.sleep(0.005)

        scheduler = make_scheduler(executor, workers=1)
        scheduler.start()
        job = scheduler.submit(make_request())
        assert started.wait(timeout=5.0)
        scheduler.shutdown(cancel_running=True)
        assert scheduler.get(job.id).state == CANCELLED

    def test_shutdown_hammer_leaves_every_job_terminal(self):
        """Submit/cancel/shutdown from racing threads: whatever
        interleaving happens, no job may end non-terminal."""

        def executor(job):
            for _ in range(10):
                job.context.check()
                time.sleep(0.002)
            return {"ok": True}

        scheduler = make_scheduler(executor, workers=2, queue_size=16)
        scheduler.start()
        submitted: list[str] = []
        submitted_lock = threading.Lock()
        stop = threading.Event()

        def submitter():
            while not stop.is_set():
                try:
                    job = scheduler.submit(make_request())
                except (QueueFullError, ServiceUnavailableError):
                    time.sleep(0.002)
                    continue
                with submitted_lock:
                    submitted.append(job.id)

        def canceller():
            while not stop.is_set():
                with submitted_lock:
                    target = submitted[-1] if submitted else None
                if target is not None:
                    try:
                        scheduler.cancel(target)
                    except Exception:
                        pass
                time.sleep(0.003)

        threads = [threading.Thread(target=submitter) for _ in range(3)]
        threads.append(threading.Thread(target=canceller))
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        scheduler.shutdown(cancel_running=True)
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)

        jobs = scheduler.jobs()
        assert jobs, "hammer submitted nothing"
        non_terminal = [
            (job.id, job.state)
            for job in jobs
            if job.state not in FINISHED_STATES
        ]
        assert non_terminal == []
