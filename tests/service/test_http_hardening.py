"""HTTP hardening: Retry-After, 503 on shutdown, idempotent submits,
and client-side retry behaviour — over a real socket."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.errors import (
    QueueFullError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.runtime.retry import RetryPolicy
from repro.service import (
    QueryService,
    ServiceClient,
    ServiceConfig,
    make_server,
)

from tests.service.conftest import walk_body


def serve(config: ServiceConfig):
    service = QueryService(config)
    service.start()
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return service, server, f"http://{host}:{port}"


@pytest.fixture
def tiny_queue():
    """A service whose queue fills after two jobs, plus a retry-free
    client (the tests inspect single raw responses)."""
    service, server, url = serve(
        ServiceConfig(workers=1, queue_size=2, load_shedding=False)
    )
    client = ServiceClient(url, timeout=10.0, retry=None)
    try:
        yield service, server, client
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(wait=False, cancel_running=True)


def slow_body(seed: int) -> dict:
    return walk_body(
        params={"mcmc": True, "samples": 100_000, "seed": seed, "burn_in": 4}
    )


def fill_queue(client) -> list[dict]:
    """One job occupying the single worker + two filling the queue."""
    return [client.submit(slow_body(seed)) for seed in (1, 2, 3)]


class TestRetryAfter:
    def test_429_carries_retry_after_and_typed_error(self, tiny_queue):
        _, _, client = tiny_queue
        blockers = fill_queue(client)
        with pytest.raises(QueueFullError) as excinfo:
            client.submit(slow_body(99))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1
        assert excinfo.value.details["queue_size"] == 2
        for record in blockers:
            client.cancel(record["id"])

    def test_client_retries_429_until_capacity_frees(self, tiny_queue):
        service, _, plain = tiny_queue
        blockers = fill_queue(plain)

        # A retrying client with a patient policy: cancel the blockers
        # from a timer so a retry attempt eventually finds room.
        retrying = ServiceClient(
            plain.base_url, timeout=10.0,
            retry=RetryPolicy(max_attempts=8, base_delay=0.2, max_delay=0.5),
        )

        def free_capacity():
            for record in blockers:
                try:
                    plain.cancel(record["id"])
                except ServiceError:
                    pass

        timer = threading.Timer(0.5, free_capacity)
        timer.start()
        try:
            record = retrying.submit(slow_body(99))
            assert record["id"]
            plain.cancel(record["id"])
        finally:
            timer.cancel()


class TestShutdown503:
    def test_submit_after_shutdown_is_503_with_retry_after(self, tiny_queue):
        service, _, client = tiny_queue
        service.shutdown(wait=True, cancel_running=True)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.submit(walk_body())
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after >= 1


class TestIdempotentSubmits:
    def test_duplicate_request_id_collapses_over_http(self, tiny_queue):
        _, _, client = tiny_queue
        first = client.submit(walk_body(), request_id="same-key")
        second = client.submit(walk_body(), request_id="same-key")
        assert second["id"] == first["id"]
        third = client.submit(walk_body(), request_id="other-key")
        assert third["id"] != first["id"]

    def test_raw_post_without_request_id_always_schedules(self, tiny_queue):
        _, _, client = tiny_queue
        ids = set()
        for _ in range(2):
            data = json.dumps(walk_body()).encode()
            request = urllib.request.Request(
                f"{client.base_url}/v1/jobs", data=data, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                ids.add(json.loads(response.read())["id"])
        assert len(ids) == 2


class TestTypedErrorRoundTrip:
    def test_server_details_survive_the_wire(self, tiny_queue):
        _, _, client = tiny_queue
        blockers = fill_queue(client)
        try:
            client.submit(slow_body(99))
            pytest.fail("expected QueueFullError")
        except QueueFullError as error:
            # type, message, details, status, retry_after all round-trip
            assert "queue is full" in str(error)
            assert error.details["depth"] == 2
            assert error.details["retry_after"] == 1.0
        for record in blockers:
            client.cancel(record["id"])

    def test_connection_refused_is_retryable_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5, retry=None)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.retryable  # GETs are idempotent
