"""The HTTP front-end and its urllib client, over a real socket."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.errors import InvalidRequestError, JobNotFoundError, ServiceError
from repro.service import QueryService, ServiceClient, ServiceConfig, make_server

from tests.service.conftest import walk_body


@pytest.fixture
def served():
    """A started service on an ephemeral port, with its client."""
    service = QueryService(ServiceConfig(workers=2, queue_size=8))
    service.start()
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(wait=False, cancel_running=True)


class TestRoutes:
    def test_submit_poll_result(self, served):
        _, client = served
        record = client.submit(walk_body())
        assert record["state"] in ("queued", "running", "done")
        done = client.wait(record["id"], timeout=30.0)
        assert done["state"] == "done"
        assert done["result"]["probability"] == "1/3"
        assert done["report"]["outcome"] == "ok"

    def test_list_jobs(self, served):
        _, client = served
        record = client.submit(walk_body())
        client.wait(record["id"], timeout=30.0)
        listed = client.jobs()
        assert any(job["id"] == record["id"] for job in listed)

    def test_cancel_route(self, served):
        service, client = served
        # fill both workers so a third job stays queued and cancellable
        blockers = [
            client.submit(walk_body(params={"mcmc": True, "samples": 100_000,
                                            "seed": s, "burn_in": 4}))
            for s in (1, 2)
        ]
        queued = client.submit(walk_body(event="C(a)"))
        client.cancel(queued["id"])
        final = client.wait(queued["id"], timeout=30.0)
        assert final["state"] in ("cancelled", "done")
        for record in blockers:
            client.cancel(record["id"])

    def test_healthz(self, served):
        _, client = served
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers"] == 2

    def test_metrics_document(self, served):
        _, client = served
        record = client.submit(walk_body())
        client.wait(record["id"], timeout=30.0)
        metrics = client.metrics()
        assert metrics["jobs"]["submitted"] >= 1
        assert "result_cache" in metrics
        assert "session_pool" in metrics
        assert "scheduler" in metrics
        assert "forever" in metrics["latency"]["run_seconds"]


class TestErrorMapping:
    def _status(self, client, method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            f"{client.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0) as response:
                return response.status
        except urllib.error.HTTPError as error:
            return error.code

    def test_invalid_request_is_400(self, served):
        _, client = served
        assert self._status(client, "POST", "/v1/jobs", {"semantics": "x"}) == 400
        with pytest.raises(InvalidRequestError):
            client.submit({"semantics": "x"})

    def test_malformed_json_is_400(self, served):
        _, client = served
        request = urllib.request.Request(
            f"{client.base_url}/v1/jobs", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, served):
        _, client = served
        assert self._status(client, "GET", "/v1/jobs/job-0-nope") == 404
        with pytest.raises(JobNotFoundError):
            client.job("job-0-nope")

    def test_unknown_endpoint_is_404(self, served):
        _, client = served
        assert self._status(client, "GET", "/v1/nope") == 404

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
