"""ResultCache LRU behaviour and ServiceMetrics accounting."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.service import LatencyHistogram, ResultCache, ServiceMetrics


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", {"probability": "1/3"})
        assert cache.get("k") == {"probability": "1/3"}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_put_same_key_updates_without_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.evictions == 0

    def test_stats_shape(self):
        cache = ResultCache(maxsize=8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_hit_rate_none_before_any_lookup(self):
        assert ResultCache().stats()["hit_rate"] is None

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(maxsize=0)

    def test_concurrent_puts_respect_bound(self):
        cache = ResultCache(maxsize=16)
        threads = [
            threading.Thread(
                target=lambda base: [
                    cache.put(f"{base}-{i}", i) for i in range(100)
                ],
                args=(t,),
            )
            for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 16


class TestLatencyHistogram:
    def test_bucket_assignment(self):
        histogram = LatencyHistogram(buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(10.0)  # overflow bucket
        snapshot = histogram.as_dict()
        assert snapshot["buckets"] == [0.1, 1.0, "+Inf"]
        assert snapshot["counts"] == [1, 1, 1]
        assert snapshot["count"] == 3
        assert snapshot["max"] == 10.0

    def test_mean_is_none_when_empty(self):
        assert LatencyHistogram().as_dict()["mean"] is None


class TestServiceMetrics:
    def test_finished_jobs_split_by_outcome(self):
        metrics = ServiceMetrics()
        metrics.job_submitted()
        metrics.job_submitted()
        metrics.job_finished("forever", "done", 0.01, 0.2, cache_hit=True)
        metrics.job_finished("forever", "failed", 0.01, 0.1)
        metrics.job_rejected()
        snapshot = metrics.snapshot()
        assert snapshot["jobs"] == {
            "submitted": 2,
            "completed": 1,
            "failed": 1,
            "cancelled": 0,
            "rejected": 1,
            "result_cache_hits": 1,
        }
        run = snapshot["latency"]["run_seconds"]["forever"]
        assert run["count"] == 2

    def test_snapshot_merges_live_gauges(self):
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot(gauges={"scheduler": {"queue_depth": 3}})
        assert snapshot["scheduler"] == {"queue_depth": 3}
