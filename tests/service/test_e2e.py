"""The issue's acceptance scenarios, end to end.

1. The same forever query submitted twice to one engine session is
   served from the :class:`ResultCache` the second time.
2. Two concurrent budgeted jobs on a 2-worker scheduler both complete
   with the correct probabilities — verified against a direct
   ``evaluate_forever_exact`` call — while a queue-overflow submission
   is rejected with 429/:class:`QueueFullError`, not a crash.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core import ForeverQuery, evaluate_forever_exact
from repro.core.events import parse_event
from repro.errors import QueueFullError
from repro.io import database_from_json
from repro.relational.parser import parse_interpretation
from repro.runtime import Budget
from repro.service import (
    QueryRequest,
    QueryService,
    ServiceConfig,
    make_server,
)

from tests.service.conftest import WALK_DATABASE, WALK_PROGRAM, walk_body


def direct_probability(event: str) -> str:
    kernel = parse_interpretation(WALK_PROGRAM)
    database = database_from_json(WALK_DATABASE)
    result = evaluate_forever_exact(
        ForeverQuery(kernel, parse_event(event)), database
    )
    return str(result.probability)


def test_repeated_query_hits_result_cache_on_one_session():
    service = QueryService(ServiceConfig(workers=2))
    service.start()
    try:
        request = QueryRequest.from_json(walk_body())
        first = service.wait(service.submit(request).id, timeout=60.0)
        second = service.wait(service.submit(request).id, timeout=60.0)

        assert first.state == second.state == "done"
        assert not first.cache_hit
        assert second.cache_hit
        assert first.result == second.result
        assert second.result["probability"] == direct_probability("C(b)")
        # one engine session served the program; the repeat never
        # reached the session pool (result-cache fast path)
        assert service.sessions.misses == 1
        assert service.results.hits == 1
    finally:
        service.shutdown()


def test_concurrent_budgeted_jobs_complete_while_overflow_is_rejected():
    service = QueryService(
        ServiceConfig(
            workers=2,
            queue_size=2,
            default_budget=Budget(wall_clock=60.0, max_steps=10_000_000),
        )
    )
    try:
        # fill the bounded queue before starting the workers so the
        # overflow outcome is deterministic
        job_b = service.submit(QueryRequest.from_json(
            walk_body(event="C(b)", budget={"timeout": 30.0})
        ))
        job_a = service.submit(QueryRequest.from_json(
            walk_body(event="C(a)", budget={"timeout": 30.0})
        ))
        with pytest.raises(QueueFullError):
            service.submit(QueryRequest.from_json(walk_body(event="C(a)")))

        service.start()
        job_b = service.wait(job_b.id, timeout=60.0)
        job_a = service.wait(job_a.id, timeout=60.0)

        assert job_b.state == "done"
        assert job_a.state == "done"
        assert not job_b.budget.is_unlimited
        assert job_b.result["probability"] == direct_probability("C(b)")
        assert job_a.result["probability"] == direct_probability("C(a)")
        assert service.metrics.rejected == 1
        # the overflow was a rejection, not a crash: the service still
        # serves fresh submissions afterwards
        retry = service.wait(
            service.submit(QueryRequest.from_json(walk_body())).id, timeout=60.0
        )
        assert retry.state == "done"
    finally:
        service.shutdown()


def test_overflow_maps_to_http_429():
    service = QueryService(ServiceConfig(workers=1, queue_size=1))
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}/v1/jobs"
    body = json.dumps(walk_body()).encode()

    def post():
        request = urllib.request.Request(
            url, data=body, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status

    try:
        # workers never started: the first submission occupies the
        # whole queue, the second must bounce
        assert post() == 202
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post()
        assert excinfo.value.code == 429
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["type"] == "QueueFullError"
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(wait=False)
