"""Static-analysis admission: rejected programs, applied plan hints."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ProgramRejectedError
from repro.service import QueryRequest, QueryService, ServiceClient, ServiceConfig, make_server

from tests.service.conftest import WALK_DATABASE, walk_body

DETERMINISTIC_BODY = {
    "semantics": "forever",
    "program": "C := rename[J->I](project[J](C join E)) union C",
    "database": {
        "relations": {
            "C": {"columns": ["I"], "rows": [["a"]]},
            "E": {"columns": ["I", "J"], "rows": [["a", "b"], ["b", "a"]]},
        }
    },
    "event": "C(b)",
}


@pytest.fixture
def service():
    instance = QueryService(ServiceConfig(workers=1))
    instance.start()
    yield instance
    instance.shutdown(wait=False, cancel_running=True)


class TestAdmission:
    def test_repair_key_bug_rejected_with_codes(self, service):
        body = walk_body(
            program="C := rename[J->I](project[J](repair-key[K@P](C join E)))"
        )
        with pytest.raises(ProgramRejectedError) as info:
            service.submit(QueryRequest.from_json(body))
        assert info.value.details["codes"] == ["RK001"]
        diagnostics = info.value.details["diagnostics"]
        assert diagnostics[0]["code"] == "RK001"
        assert diagnostics[0]["severity"] == "error"

    def test_unsafe_datalog_rejected(self, service):
        body = {
            "semantics": "datalog",
            "program": "p(X, Y) :- q(X).",
            "database": WALK_DATABASE,
            "event": "p(a, b)",
        }
        with pytest.raises(ProgramRejectedError) as info:
            service.submit(QueryRequest.from_json(body))
        assert "SF001" in info.value.details["codes"]

    def test_unknown_event_relation_rejected(self, service):
        with pytest.raises(ProgramRejectedError) as info:
            service.submit(QueryRequest.from_json(walk_body(event="Nope(b)")))
        assert "DD002" in info.value.details["codes"]

    def test_event_arity_mismatch_rejected(self, service):
        with pytest.raises(ProgramRejectedError) as info:
            service.submit(QueryRequest.from_json(walk_body(event="C(a, b)")))
        assert "DD003" in info.value.details["codes"]

    def test_good_program_still_admitted(self, service):
        job = service.submit(QueryRequest.from_json(walk_body()))
        assert service.wait(job.id, timeout=30.0).result["probability"] == "1/3"

    def test_rejections_counted_per_code(self, service):
        for event in ("Nope(b)", "C(a, b)"):
            with pytest.raises(ProgramRejectedError):
                service.submit(QueryRequest.from_json(walk_body(event=event)))
        snapshot = service.metrics_snapshot()
        rejections = snapshot["admission_rejections"]
        assert rejections.get("DD002") == 1
        assert rejections.get("DD003") == 1
        assert snapshot["jobs"]["rejected"] >= 2

    def test_session_stats_carry_plan_hints(self, service):
        job = service.submit(QueryRequest.from_json(DETERMINISTIC_BODY))
        service.wait(job.id, timeout=30.0)
        sessions = service.metrics_snapshot()["session_pool"]["sessions"]
        (hints,) = [s["plan_hints"] for s in sessions]
        assert hints["deterministic"] is True


class TestHintApplied:
    def test_sampling_request_on_deterministic_program_runs_exact(self, service):
        body = dict(DETERMINISTIC_BODY)
        body["params"] = {"samples": 100, "seed": 3}
        job = service.submit(QueryRequest.from_json(body))
        result = service.wait(job.id, timeout=30.0).result
        assert result["kind"] == "exact"
        assert result["hint_applied"] == "PH001"
        assert result["probability"] == "1"

    def test_probabilistic_program_still_samples(self, service):
        job = service.submit(
            QueryRequest.from_json(
                walk_body(params={"samples": 50, "seed": 3, "burn_in": 2})
            )
        )
        result = service.wait(job.id, timeout=30.0).result
        assert result["kind"] == "sampling"
        assert "hint_applied" not in result


class TestHTTPRejection:
    @pytest.fixture
    def served(self):
        service = QueryService(ServiceConfig(workers=1))
        service.start()
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
        try:
            yield client
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(wait=False, cancel_running=True)

    def test_rejected_program_answers_400_with_diagnostics(self, served):
        body = walk_body(
            program="C := rename[J->I](project[J](repair-key[K@P](C join E)))"
        )
        with pytest.raises(ProgramRejectedError) as info:
            served.submit(body)
        # The typed error round-trips through the 400 body.
        assert info.value.details["codes"] == ["RK001"]
        assert info.value.details["diagnostics"][0]["code"] == "RK001"
        assert info.value.details["diagnostics"][0]["severity"] == "error"

    def test_metrics_endpoint_exposes_admission_rejections(self, served):
        with pytest.raises(ProgramRejectedError):
            served.submit(
                walk_body(
                    program="C := rename[J->I](project[J](repair-key[K@P](C join E)))"
                )
            )
        metrics = served.metrics()
        assert metrics["admission_rejections"] == {"RK001": 1}
