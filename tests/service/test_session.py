"""EngineSession / SessionPool: prepared programs and warm caches."""

from __future__ import annotations

import pytest

from repro.core import ForeverQuery, evaluate_forever_exact
from repro.core.events import parse_event
from repro.errors import InvalidRequestError
from repro.io import database_from_json
from repro.relational.parser import parse_interpretation
from repro.runtime import Budget, RunContext
from repro.service import EngineSession, QueryRequest, SessionPool

from tests.service.conftest import (
    REACH_DATABASE,
    REACH_DATALOG,
    WALK_DATABASE,
    WALK_PROGRAM,
    walk_body,
)


def make_request(**overrides) -> QueryRequest:
    return QueryRequest.from_json(walk_body(**overrides))


class TestEngineSession:
    def test_forever_exact_matches_direct_evaluation(self, walk_request):
        session = EngineSession.prepare(walk_request)
        payload = session.evaluate(walk_request)
        kernel = parse_interpretation(WALK_PROGRAM)
        database = database_from_json(WALK_DATABASE)
        direct = evaluate_forever_exact(
            ForeverQuery(kernel, parse_event("C(b)")), database
        )
        assert payload["probability"] == str(direct.probability)
        assert payload["kind"] == "exact"

    def test_warm_cache_survives_across_requests(self, walk_request):
        session = EngineSession.prepare(walk_request)
        session.evaluate(walk_request)
        misses_after_first = session.cache.misses
        assert misses_after_first > 0
        # a different event on the same session walks memoized rows
        other = make_request(event="C(a)")
        session.evaluate(other)
        assert session.cache.hits > 0
        assert session.cache.misses == misses_after_first
        assert session.requests_served == 2

    def test_seeded_mcmc_uses_session_cache(self, walk_request):
        session = EngineSession.prepare(walk_request)
        request = make_request(
            params={"mcmc": True, "samples": 200, "seed": 11, "burn_in": 16}
        )
        payload = session.evaluate(request)
        assert payload["kind"] == "sampling"
        assert 0.0 <= payload["estimate"] <= 1.0
        assert session.cache.hits + session.cache.misses > 0

    def test_cache_size_zero_opts_out(self, walk_request):
        session = EngineSession.prepare(walk_request)
        request = make_request(
            params={"mcmc": True, "samples": 50, "seed": 3,
                    "burn_in": 8, "cache_size": 0}
        )
        session.evaluate(request)
        assert session.cache.hits + session.cache.misses == 0

    def test_fallback_degrades_and_reports(self, walk_request):
        request = make_request(
            params={"fallback": "lumped", "max_states": 1}
        )
        session = EngineSession.prepare(request)
        context = RunContext(Budget.unlimited())
        payload = session.evaluate(request, context)
        assert payload["probability"] == "1/3"
        assert payload["downgrades"]

    def test_foreign_request_rejected(self, walk_request):
        session = EngineSession.prepare(walk_request)
        foreign = make_request(program="C := C")
        with pytest.raises(InvalidRequestError, match="does not belong"):
            session.evaluate(foreign)

    def test_inflationary_session(self):
        request = QueryRequest.from_json({
            "semantics": "inflationary",
            "program": "T := T union E",
            "database": {"relations": {
                "T": {"columns": ["A", "B"], "rows": []},
                "E": {"columns": ["A", "B"], "rows": [["a", "b"]]},
            }},
            "event": "T(a, b)",
        })
        session = EngineSession.prepare(request)
        payload = session.evaluate(request)
        assert payload["probability"] == "1"

    def test_datalog_session_has_no_transition_cache(self):
        request = QueryRequest.from_json({
            "semantics": "datalog",
            "program": REACH_DATALOG,
            "database": REACH_DATABASE,
            "event": "t(a, c)",
        })
        session = EngineSession.prepare(request)
        assert session.cache is None
        payload = session.evaluate(request)
        assert payload["probability"] == "1"
        assert payload["pc_worlds"] == 1

    def test_budget_exhaustion_propagates(self, walk_request):
        from repro.errors import BudgetExceededError

        session = EngineSession.prepare(walk_request)
        context = RunContext(Budget(max_steps=0))
        request = make_request(params={"mcmc": True, "samples": 50, "seed": 1})
        with pytest.raises(BudgetExceededError):
            session.evaluate(request, context)


class TestSessionPool:
    def test_hit_on_same_program(self, walk_request):
        pool = SessionPool(maxsize=4)
        first = pool.get_or_create(walk_request)
        second = pool.get_or_create(make_request(event="C(a)"))
        assert first is second
        assert (pool.hits, pool.misses) == (1, 1)

    def test_lru_eviction(self, walk_request):
        pool = SessionPool(maxsize=1)
        pool.get_or_create(walk_request)
        pool.get_or_create(make_request(program="C := C"))
        assert pool.evictions == 1
        assert len(pool) == 1

    def test_stats_include_sessions(self, walk_request):
        pool = SessionPool(maxsize=4)
        session = pool.get_or_create(walk_request)
        session.evaluate(walk_request)
        stats = pool.stats()
        assert stats["size"] == 1
        assert stats["sessions"][0]["requests_served"] == 1
        assert stats["sessions"][0]["transition_cache"]["maxsize"] > 0
