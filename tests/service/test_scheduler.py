"""JobScheduler: lanes, admission, budgets, cancellation, registry."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    EvaluationError,
    JobNotFoundError,
    QueueFullError,
    ServiceError,
)
from repro.runtime import Budget
from repro.service import CANCELLED, DONE, FAILED, QUEUED, JobScheduler, QueryRequest

from tests.service.conftest import walk_body


def make_request(**overrides) -> QueryRequest:
    return QueryRequest.from_json(walk_body(**overrides))


def make_scheduler(executor, **kwargs) -> JobScheduler:
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("queue_size", 8)
    return JobScheduler(executor, **kwargs)


class TestLifecycle:
    def test_submit_run_done(self):
        scheduler = make_scheduler(lambda job: {"answer": 42})
        scheduler.start()
        try:
            job = scheduler.submit(make_request())
            job = scheduler.wait(job.id, timeout=10.0)
            assert job.state == DONE
            assert job.result == {"answer": 42}
            assert job.report is not None
            assert job.report["outcome"] == "ok"
            assert job.queue_seconds() >= 0
            assert job.run_seconds() >= 0
        finally:
            scheduler.shutdown()

    def test_jobs_queued_before_start_run_after(self):
        scheduler = make_scheduler(lambda job: {"ok": True})
        submitted = [scheduler.submit(make_request()) for _ in range(3)]
        assert all(job.state == QUEUED for job in submitted)
        scheduler.start()
        try:
            for job in submitted:
                assert scheduler.wait(job.id, timeout=10.0).state == DONE
        finally:
            scheduler.shutdown()

    def test_shutdown_cancels_queued_jobs(self):
        scheduler = make_scheduler(lambda job: {"ok": True})
        job = scheduler.submit(make_request())
        scheduler.shutdown()
        assert scheduler.get(job.id).state == CANCELLED

    def test_failure_is_classified_not_fatal(self):
        def boom(job):
            raise EvaluationError("chain exploded", details={"states": 7})

        scheduler = make_scheduler(boom)
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert job.state == FAILED
            assert job.error["type"] == "EvaluationError"
            assert job.error["details"] == {"states": 7}
            # the pool survives a failing job
            ok = scheduler.submit(make_request())
            assert scheduler.wait(ok.id, timeout=10.0).state == FAILED
        finally:
            scheduler.shutdown()

    def test_unexpected_exception_recorded(self):
        def boom(job):
            raise ValueError("not a ReproError")

        scheduler = make_scheduler(boom)
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert job.state == FAILED
            assert job.error["type"] == "ValueError"
        finally:
            scheduler.shutdown()


class TestAdmission:
    def test_queue_full_rejected(self):
        scheduler = make_scheduler(lambda job: None, queue_size=2)
        scheduler.submit(make_request())
        scheduler.submit(make_request())
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.submit(make_request())
        assert excinfo.value.details["queue_size"] == 2
        assert scheduler.metrics.rejected == 1
        scheduler.shutdown()

    def test_budget_resolution_at_admission(self):
        scheduler = make_scheduler(
            lambda job: None,
            default_budget=Budget(wall_clock=60),
            max_budget=Budget(wall_clock=30, max_steps=1000),
        )
        job = scheduler.submit(make_request(budget={"max_steps": 50}))
        assert job.budget.wall_clock == 30  # default clamped by cap
        assert job.budget.max_steps == 50
        scheduler.shutdown()

    def test_priority_lane_served_first(self):
        order = []
        lock = threading.Lock()

        def record(job):
            with lock:
                order.append(job.request.priority)

        scheduler = JobScheduler(record, workers=1, queue_size=8)
        normal = [scheduler.submit(make_request()) for _ in range(2)]
        high = scheduler.submit(make_request(priority="high"))
        scheduler.start()
        try:
            for job in (*normal, high):
                scheduler.wait(job.id, timeout=10.0)
            assert order[0] == "high"
        finally:
            scheduler.shutdown()


class TestBudgetsAndCancellation:
    def test_wall_clock_budget_fails_job(self):
        def spin(job):
            while True:
                job.context.check()
                time.sleep(0.005)

        scheduler = make_scheduler(
            spin, default_budget=Budget(wall_clock=0.05)
        )
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert job.state == FAILED
            assert job.error["type"] == "BudgetExceededError"
            assert job.report["outcome"] == "budget_exceeded"
        finally:
            scheduler.shutdown()

    def test_cancel_running_job(self):
        started = threading.Event()

        def spin(job):
            started.set()
            while True:
                job.context.check()
                time.sleep(0.005)

        scheduler = make_scheduler(spin, workers=1)
        scheduler.start()
        try:
            job = scheduler.submit(make_request())
            assert started.wait(timeout=10.0)
            scheduler.cancel(job.id)
            job = scheduler.wait(job.id, timeout=10.0)
            assert job.state == CANCELLED
        finally:
            scheduler.shutdown()

    def test_cancel_queued_job_never_runs(self):
        ran = []
        scheduler = JobScheduler(lambda job: ran.append(job.id), workers=1)
        job = scheduler.submit(make_request())
        cancelled = scheduler.cancel(job.id)
        assert cancelled.state == CANCELLED
        scheduler.start()
        try:
            ok = scheduler.submit(make_request())
            scheduler.wait(ok.id, timeout=10.0)
            assert job.id not in ran
        finally:
            scheduler.shutdown()

    def test_cancel_finished_job_is_noop(self):
        scheduler = make_scheduler(lambda job: {"ok": True})
        scheduler.start()
        try:
            job = scheduler.wait(scheduler.submit(make_request()).id, timeout=10.0)
            assert scheduler.cancel(job.id).state == DONE
        finally:
            scheduler.shutdown()


class TestRegistry:
    def test_unknown_job_raises(self):
        scheduler = make_scheduler(lambda job: None)
        with pytest.raises(JobNotFoundError):
            scheduler.get("job-999-zzzzzz")
        scheduler.shutdown()

    def test_registry_prunes_oldest_finished(self):
        scheduler = make_scheduler(lambda job: {"ok": True}, registry_limit=3)
        scheduler.start()
        try:
            ids = []
            for _ in range(5):
                job = scheduler.submit(make_request())
                scheduler.wait(job.id, timeout=10.0)
                ids.append(job.id)
            registered = {job.id for job in scheduler.jobs()}
            assert len(registered) == 3
            assert ids[-1] in registered
            assert ids[0] not in registered
        finally:
            scheduler.shutdown()

    def test_wait_timeout_raises(self):
        scheduler = make_scheduler(lambda job: None)  # workers never started
        job = scheduler.submit(make_request())
        with pytest.raises(ServiceError, match="timed out"):
            scheduler.wait(job.id, timeout=0.05)
        scheduler.shutdown()

    def test_stats_shape(self):
        scheduler = make_scheduler(lambda job: {"ok": True})
        scheduler.submit(make_request())
        stats = scheduler.stats()
        assert stats["queue_depth"] == 1
        assert stats["states"] == {"queued": 1}
        scheduler.shutdown()


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"workers": 0}, {"queue_size": 0}, {"registry_limit": 0}],
    )
    def test_bad_configuration_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            JobScheduler(lambda job: None, **kwargs)
