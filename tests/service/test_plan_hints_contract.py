"""Contract: ``repro lint --json`` and service admission expose the SAME
plan hints.

Operators read plan hints in two places — linting a program before
deployment, and the session stats of a serving engine.  Divergence
between the two (e.g. one computing the partition summary and the other
not) would make pre-deployment linting useless, so the payloads are
pinned structurally equal here.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service import QueryRequest
from repro.service.session import EngineSession

#: Two independent walkers on one shared graph: exercises the partition
#: summary inside the plan hints, not just the scalar fields.
PROGRAM = (
    "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n"
    "D := rename[J->I](project[J](repair-key[I@P](D join E)))\n"
)

DATABASE = {
    "relations": {
        "C": {"columns": ["I"], "rows": [["a"]]},
        "D": {"columns": ["I"], "rows": [["b"]]},
        "E": {
            "columns": ["I", "J", "P"],
            "rows": [
                ["a", "a", 1], ["a", "b", 1],
                ["b", "b", 1], ["b", "a", 1],
            ],
        },
    }
}


@pytest.fixture
def paths(tmp_path):
    program = tmp_path / "walkers.ra"
    program.write_text(PROGRAM, encoding="utf-8")
    db = tmp_path / "db.json"
    db.write_text(json.dumps(DATABASE), encoding="utf-8")
    return str(program), str(db)


def lint_json(capsys, program: str, db: str) -> dict:
    assert main(["lint", program, "--db", db, "--json"]) == 0
    return json.loads(capsys.readouterr().out)


def test_lint_json_plan_hints_match_session_stats(paths, capsys):
    program, db = paths
    lint_payload = lint_json(capsys, program, db)

    request = QueryRequest.from_json({
        "semantics": "forever",
        "program": PROGRAM,
        "database": DATABASE,
        "event": "C(b)",
    })
    session = EngineSession.prepare(request)
    stats_hints = session.stats()["plan_hints"]

    assert lint_payload["plan_hints"] == stats_hints


def test_plan_hints_carry_the_partition_summary(paths, capsys):
    program, db = paths
    hints = lint_json(capsys, program, db)["plan_hints"]
    partition = hints["partition"]
    assert partition["splittable"] is True
    assert partition["components"] == 2
    # the summary must be decision-complete for admission: every field
    # the planner computes about exactness and sizing is present
    for key in ("bounded", "exact_components", "oversized_components",
                "max_state_bound"):
        assert key in partition
