"""QueryRequest validation, canonical keys, cacheability, budgets."""

from __future__ import annotations

import pytest

from repro.errors import InvalidRequestError
from repro.runtime import Budget
from repro.service import QueryRequest

from tests.service.conftest import walk_body


class TestValidation:
    def test_minimal_request_parses(self, walk_request):
        assert walk_request.semantics == "forever"
        assert walk_request.priority == "normal"

    @pytest.mark.parametrize("field", ["semantics", "program", "database", "event"])
    def test_missing_required_field_rejected(self, field):
        body = walk_body()
        del body[field]
        with pytest.raises(InvalidRequestError, match="missing request fields"):
            QueryRequest.from_json(body)

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown request fields"):
            QueryRequest.from_json(walk_body(bogus=1))

    def test_unknown_semantics_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown semantics"):
            QueryRequest.from_json(walk_body(semantics="sideways"))

    def test_unknown_param_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown params"):
            QueryRequest.from_json(walk_body(params={"granularity": 3}))

    def test_datalog_only_param_rejected_for_forever(self):
        # pc_tables ride only on datalog requests
        with pytest.raises(InvalidRequestError, match="pc_tables"):
            QueryRequest.from_json(walk_body(pc_tables={"tables": {}}))

    def test_unknown_budget_key_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown budget keys"):
            QueryRequest.from_json(walk_body(budget={"max_ram": 1}))

    def test_unknown_priority_rejected(self):
        with pytest.raises(InvalidRequestError, match="unknown priority"):
            QueryRequest.from_json(walk_body(priority="urgent"))

    def test_non_object_body_rejected(self):
        with pytest.raises(InvalidRequestError, match="JSON object"):
            QueryRequest.from_json([1, 2, 3])

    def test_as_dict_round_trips(self, walk_request):
        again = QueryRequest.from_json(walk_request.as_dict())
        assert again == walk_request


class TestKeys:
    def test_cache_key_is_deterministic(self, walk_request):
        assert walk_request.cache_key() == walk_request.cache_key()

    def test_same_program_different_event_shares_session(self):
        a = QueryRequest.from_json(walk_body(event="C(a)"))
        b = QueryRequest.from_json(walk_body(event="C(b)"))
        assert a.session_key() == b.session_key()
        assert a.cache_key() != b.cache_key()

    def test_different_database_splits_session(self):
        other = dict(walk_body()["database"])
        other["relations"] = dict(other["relations"])
        other["relations"]["C"] = {"columns": ["I"], "rows": [["b"]]}
        a = QueryRequest.from_json(walk_body())
        b = QueryRequest.from_json(walk_body(database=other))
        assert a.session_key() != b.session_key()

    def test_params_change_cache_key_not_session_key(self):
        a = QueryRequest.from_json(walk_body())
        b = QueryRequest.from_json(walk_body(params={"max_states": 99}))
        assert a.session_key() == b.session_key()
        assert a.cache_key() != b.cache_key()

    def test_budget_and_priority_do_not_change_cache_key(self):
        a = QueryRequest.from_json(walk_body())
        b = QueryRequest.from_json(
            walk_body(budget={"timeout": 5}, priority="high")
        )
        assert a.cache_key() == b.cache_key()


class TestCacheability:
    def test_exact_request_is_cacheable(self, walk_request):
        assert walk_request.is_cacheable()

    def test_unseeded_sampling_is_not_cacheable(self):
        request = QueryRequest.from_json(walk_body(params={"samples": 100}))
        assert not request.is_cacheable()

    def test_seeded_sampling_is_cacheable(self):
        request = QueryRequest.from_json(
            walk_body(params={"samples": 100, "seed": 7})
        )
        assert request.is_cacheable()

    def test_unseeded_fallback_is_not_cacheable(self):
        request = QueryRequest.from_json(walk_body(params={"fallback": "auto"}))
        assert not request.is_cacheable()


class TestBudgets:
    def test_request_budget_wins_over_default(self):
        request = QueryRequest.from_json(walk_body(budget={"timeout": 5}))
        budget = request.make_budget(Budget(wall_clock=60, max_steps=100))
        assert budget.wall_clock == 5
        assert budget.max_steps == 100  # default fills the open axis

    def test_cap_clamps_requested_budget(self):
        request = QueryRequest.from_json(
            walk_body(budget={"timeout": 900, "max_steps": 10**12})
        )
        budget = request.make_budget(None, Budget(wall_clock=30, max_steps=1000))
        assert budget.wall_clock == 30
        assert budget.max_steps == 1000

    def test_cap_replaces_unlimited(self):
        request = QueryRequest.from_json(walk_body())
        budget = request.make_budget(None, Budget(wall_clock=30))
        assert budget.wall_clock == 30
        assert budget.max_steps is None

    def test_no_default_no_cap_is_unlimited(self, walk_request):
        assert walk_request.make_budget().is_unlimited

    @pytest.mark.parametrize(
        "budget", [{"timeout": -1}, {"max_steps": -5}, {"max_steps": 1.5}]
    )
    def test_bad_budget_values_rejected(self, budget):
        request = QueryRequest.from_json(walk_body(budget=budget))
        with pytest.raises(InvalidRequestError):
            request.make_budget()
