"""Observability on the serving layer: job traces and Prometheus export."""

from __future__ import annotations

import threading

import pytest

from repro.errors import JobNotFoundError
from repro.obs import validate_trace_records
from repro.service import (
    QueryRequest,
    QueryService,
    ServiceClient,
    ServiceConfig,
    make_server,
)

from tests.obs.prom import parse_prometheus
from tests.service.conftest import walk_body


@pytest.fixture
def served():
    """A started service on an ephemeral port, with its client."""
    service = QueryService(ServiceConfig(workers=2, queue_size=8))
    service.start()
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=10.0)
    try:
        yield service, client
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown(wait=False, cancel_running=True)


class TestJobTraces:
    def test_finished_job_exposes_schema_valid_trace(self, served):
        _, client = served
        record = client.submit(walk_body())
        done = client.wait(record["id"], timeout=30.0)
        assert done["trace_available"] is True
        trace = client.trace(record["id"])
        records = validate_trace_records(trace)
        names = {r["name"] for r in records if r["type"] == "span"}
        assert "solve" in names
        run = records[-1]
        assert run["type"] == "run"
        assert run["outcome"] == "done"
        assert run["job_id"] == record["id"]
        assert run["report"]["outcome"] == "ok"

    def test_unknown_job_trace_is_404(self, served):
        _, client = served
        with pytest.raises(JobNotFoundError):
            client.trace("job-0-nope")

    def test_tracing_disabled_reports_no_trace(self):
        service = QueryService(ServiceConfig(workers=1, trace_events=0))
        service.start()
        try:
            job = service.submit(QueryRequest.from_json(walk_body()))
            service.wait(job.id, timeout=30.0)
            assert service.job(job.id).as_dict()["trace_available"] is False
            with pytest.raises(JobNotFoundError, match="no trace"):
                service.job_trace(job.id)
        finally:
            service.shutdown(wait=False, cancel_running=True)


def _flatten(spans):
    for span in spans:
        yield span
        yield from _flatten(span["children"])


class TestJobProfile:
    def test_finished_job_serves_a_profile_document(self, served):
        _, client = served
        record = client.submit(walk_body())
        client.wait(record["id"], timeout=30.0)
        profile = client.profile(record["id"])
        assert profile["profile_version"] == 1
        assert profile["job_id"] == record["id"]
        names = {span["name"] for span in _flatten(profile["spans"])}
        assert "solve" in names
        # Every span carries both inclusive and exclusive timings.
        for span in _flatten(profile["spans"]):
            assert span["excl_wall_s"] <= span["wall_s"] + 1e-9
        assert profile["phases"]
        assert profile["folded"]
        stack, _, weight = profile["folded"][0].rpartition(" ")
        assert stack and int(weight) >= 0

    def test_span_phase_totals_reconcile_with_the_report(self, served):
        _, client = served
        record = client.submit(walk_body())
        client.wait(record["id"], timeout=30.0)
        profile = client.profile(record["id"])
        totals = profile["span_phase_totals"]
        for name, timing in profile["phases"].items():
            reported = timing["wall_seconds"]
            traced = totals.get(name, 0.0)
            # Two clocks bracket the same region: 5% relative, with an
            # absolute floor for microsecond-scale phases where timer
            # granularity dominates.
            assert abs(traced - reported) <= max(0.05 * reported, 2e-3), name

    def test_partitioned_job_profile_carries_worker_spans(self, served):
        """Spans recorded inside pool workers are stitched under the
        dispatching span with worker attribution (trace schema v2)."""
        service, client = served
        program = (
            "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n"
            "D := rename[J->I](project[J](repair-key[I@P](D join E)))\n"
        )
        database = {
            "relations": {
                "C": {"columns": ["I"], "rows": [["a"]]},
                "D": {"columns": ["I"], "rows": [["b"]]},
                "E": {
                    "columns": ["I", "J", "P"],
                    "rows": [
                        ["a", "a", 1],
                        ["a", "b", 1],
                        ["b", "b", 1],
                        ["b", "a", 1],
                    ],
                },
            }
        }
        record = client.submit(
            {
                "semantics": "forever",
                "program": program,
                "database": database,
                "event": "C(b) and D(a)",
                "params": {"partition": "auto", "workers": 2},
            }
        )
        done = client.wait(record["id"], timeout=60.0)
        assert done["state"] == "done"
        profile = client.profile(record["id"])
        worker_spans = [
            span
            for span in _flatten(profile["spans"])
            if "worker_id" in span["attrs"]
        ]
        assert worker_spans, "expected spans recorded inside pool workers"
        assert {span["name"] for span in worker_spans} >= {"component-solve"}
        for span in worker_spans:
            assert span["attrs"]["spawn_generation"] >= 0
        assert len({span["attrs"]["worker_id"] for span in worker_spans}) >= 1
        rows = (profile["ledger"] or {}).get("rows", [])
        components = {row["component"] for row in rows}
        assert {"c0", "c1"} <= components

    def test_unknown_job_profile_is_404(self, served):
        _, client = served
        with pytest.raises(JobNotFoundError):
            client.profile("job-0-nope")

    def test_tracing_disabled_reports_no_profile(self):
        service = QueryService(ServiceConfig(workers=1, trace_events=0))
        service.start()
        try:
            job = service.submit(QueryRequest.from_json(walk_body()))
            service.wait(job.id, timeout=30.0)
            with pytest.raises(JobNotFoundError, match="no profile"):
                service.job_profile(job.id)
        finally:
            service.shutdown(wait=False, cancel_running=True)


class TestPrometheusEndpoint:
    def test_scrape_parses_and_counts_jobs(self, served):
        _, client = served
        record = client.submit(walk_body())
        client.wait(record["id"], timeout=30.0)
        text = client.metrics_prometheus()
        samples = parse_prometheus(text)
        submitted = samples["repro_jobs_submitted_total"]
        assert submitted[0][1] >= 1.0
        finished = dict(
            (labels.get("outcome"), value)
            for labels, value in samples["repro_jobs_finished_total"]
        )
        assert finished.get("done", 0.0) >= 1.0
        # Histograms survive the strict parser's cumulative checks.
        assert "repro_job_run_seconds_bucket" in samples
        assert "repro_run_steps_total" in samples

    def test_callback_gauges_present(self, served):
        _, client = served
        samples = parse_prometheus(client.metrics_prometheus())
        for gauge in (
            "repro_scheduler_queue_depth",
            "repro_scheduler_in_flight",
            "repro_result_cache_entries",
            "repro_session_pool_sessions",
            "repro_uptime_seconds",
        ):
            assert gauge in samples, gauge
        assert samples["repro_uptime_seconds"][0][1] >= 0.0

    def test_heartbeat_gauge_exposes_one_series_per_worker(self, served):
        from repro.perf import prewarm

        _, client = served
        prewarm(2)
        samples = parse_prometheus(client.metrics_prometheus())
        series = samples["repro_worker_heartbeat_age_seconds"]
        workers = {labels["worker"] for labels, _ in series}
        assert workers >= {"0", "1"}
        assert all(value >= 0.0 for _, value in series)

    def test_json_document_still_served(self, served):
        _, client = served
        metrics = client.metrics()
        assert "jobs" in metrics and "scheduler" in metrics
