"""Unit tests for the Section 5.1 partitioning optimisation."""

from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    compute_partition,
    evaluate_forever_exact,
    evaluate_forever_partitioned,
)
from repro.relational import (
    Database,
    Relation,
    join,
    project,
    rel,
    rename,
    repair_key,
)
from repro.workloads import two_component_graph


def walk_step():
    return rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )


def two_walker_setup(components=2, component_size=3):
    """Independent walkers, one per disjoint component."""
    graph = two_component_graph(component_size, components)
    starts = [f"g{c}_n0" for c in range(components)]
    db = Database(
        {
            "C": Relation(("I",), [(s,) for s in starts]),
            "E": graph.edge_relation(),
        }
    )
    kernel = Interpretation({"C": walk_step()})
    return kernel, db


class TestComputePartition:
    def test_disjoint_components_split(self):
        kernel, db = two_walker_setup()
        query = ForeverQuery(kernel, TupleIn("C", ("g0_n1",)))
        classes = compute_partition(query, db)
        assert len(classes) == 2
        # each class holds exactly one component's tuples
        for dependency_class in classes:
            prefixes = {row[0].split("_")[0] for _name, row in dependency_class}
            assert len(prefixes) == 1

    def test_single_component_single_class(self, walk_db):
        kernel = Interpretation({"C": walk_step()})
        query = ForeverQuery(kernel, TupleIn("C", ("b",)))
        classes = compute_partition(query, walk_db)
        assert len(classes) == 1


class TestPartitionedEvaluation:
    def test_agrees_with_direct_evaluation(self):
        kernel, db = two_walker_setup(components=2, component_size=3)
        query = ForeverQuery(kernel, TupleIn("C", ("g1_n1",)))
        direct = evaluate_forever_exact(query, db)
        partitioned = evaluate_forever_partitioned(query, db)
        assert partitioned.probability == direct.probability
        assert partitioned.details["classes"] == 2

    def test_state_space_reduction(self):
        kernel, db = two_walker_setup(components=2, component_size=4)
        query = ForeverQuery(kernel, TupleIn("C", ("g0_n2",)))
        direct = evaluate_forever_exact(query, db)
        partitioned = evaluate_forever_partitioned(query, db)
        # joint: 4*4 positions; partitioned: 4+4 (plus tiny extra classes)
        assert partitioned.states_explored < direct.states_explored

    def test_three_components(self):
        kernel, db = two_walker_setup(components=3, component_size=2)
        query = ForeverQuery(kernel, TupleIn("C", ("g2_n1",)))
        direct = evaluate_forever_exact(query, db)
        partitioned = evaluate_forever_partitioned(query, db)
        assert partitioned.probability == direct.probability

    def test_single_class_equivalent(self, walk_db):
        kernel = Interpretation({"C": walk_step()})
        query = ForeverQuery(kernel, TupleIn("C", ("b",)))
        direct = evaluate_forever_exact(query, walk_db)
        partitioned = evaluate_forever_partitioned(query, walk_db)
        assert partitioned.probability == direct.probability

    def test_method_label(self, walk_db):
        kernel = Interpretation({"C": walk_step()})
        query = ForeverQuery(kernel, TupleIn("C", ("b",)))
        assert (
            evaluate_forever_partitioned(query, walk_db).method
            == "sec-5.1-partitioned"
        )
