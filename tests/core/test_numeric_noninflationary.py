"""Unit tests for the float64 forever-query evaluator."""

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    evaluate_forever_numeric,
)
from repro.errors import StateSpaceLimitExceeded
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import cycle_graph, erdos_renyi, random_walk_query


class TestNumericEvaluator:
    def test_matches_exact_on_irreducible(self):
        query, db = random_walk_query(cycle_graph(5), "n0", "n2")
        exact = evaluate_forever_exact(query, db)
        numeric = evaluate_forever_numeric(query, db)
        assert numeric.probability == pytest.approx(float(exact.probability))
        assert numeric.method == "prop-5.4-float"
        assert numeric.states_explored == exact.states_explored

    def test_matches_exact_on_reducible(self):
        db = Database(
            {
                "C": Relation(("I",), [("a",)]),
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", 1), ("a", "c", 3), ("b", "b", 1), ("c", "c", 1)],
                ),
            }
        )
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        query = ForeverQuery(Interpretation({"C": step}), TupleIn("C", ("c",)))
        exact = evaluate_forever_exact(query, db)
        numeric = evaluate_forever_numeric(query, db)
        assert numeric.probability == pytest.approx(float(exact.probability))
        assert numeric.method == "thm-5.5-float"

    def test_random_graphs_agree(self):
        for seed in range(4):
            graph = erdos_renyi(5, 0.4, rng=seed)
            query, db = random_walk_query(graph, "n0", "n3")
            exact = float(evaluate_forever_exact(query, db).probability)
            numeric = evaluate_forever_numeric(query, db).probability
            assert numeric == pytest.approx(exact, abs=1e-10)

    def test_max_states(self):
        query, db = random_walk_query(cycle_graph(6), "n0", "n1")
        with pytest.raises(StateSpaceLimitExceeded):
            evaluate_forever_numeric(query, db, max_states=2)

    def test_result_validation(self):
        from repro.core.evaluation.numeric_noninflationary import NumericResult

        with pytest.raises(ValueError):
            NumericResult(probability=1.5, states_explored=1, method="x")
