"""Tests for lumped forever-query evaluation (ablation of bench A7)."""

from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    evaluate_forever_lumped,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import (
    cycle_graph,
    erdos_renyi,
    random_walk_query,
    two_component_graph,
)


def _walk_step():
    return rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )


def _walkers(components: int, size: int):
    graph = two_component_graph(size, components)
    starts = [(f"g{c}_n0",) for c in range(components)]
    db = Database({"C": Relation(("I",), starts), "E": graph.edge_relation()})
    kernel = Interpretation({"C": _walk_step()})
    return ForeverQuery(kernel, TupleIn("C", ("g0_n1",))), db


class TestAgreement:
    def test_single_walker(self):
        query, db = random_walk_query(cycle_graph(5), "n0", "n2")
        assert (
            evaluate_forever_lumped(query, db).probability
            == evaluate_forever_exact(query, db).probability
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        graph = erdos_renyi(5, 0.4, rng=seed)
        query, db = random_walk_query(graph, "n0", "n3")
        assert (
            evaluate_forever_lumped(query, db).probability
            == evaluate_forever_exact(query, db).probability
        )

    def test_multi_walker(self):
        query, db = _walkers(2, 4)
        lumped = evaluate_forever_lumped(query, db)
        direct = evaluate_forever_exact(query, db)
        assert lumped.probability == direct.probability


class TestReduction:
    def test_irrelevant_walkers_lumped_away(self):
        """The event reads walker 0 only; walkers 1..k collapse."""
        query, db = _walkers(3, 4)
        result = evaluate_forever_lumped(query, db)
        assert result.details["full_states"] == 4**3
        assert result.details["quotient_states"] == 4
        assert result.probability == Fraction(1, 4)

    def test_method_and_counts_reported(self):
        query, db = _walkers(2, 3)
        result = evaluate_forever_lumped(query, db)
        assert result.method == "lumped"
        assert result.states_explored == result.details["quotient_states"]
        assert result.details["quotient_states"] <= result.details["full_states"]
