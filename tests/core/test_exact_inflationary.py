"""Unit tests for exact inflationary evaluation (Proposition 4.4)."""

from fractions import Fraction

import pytest

from repro.core import (
    InflationaryQuery,
    Interpretation,
    TupleIn,
    evaluate_inflationary_exact,
)
from repro.core.evaluation import absorption_event_probability
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.errors import StateSpaceLimitExceeded
from repro.probability import Distribution
from repro.relational import Database, Relation, rel
from repro.workloads import (
    example_36_graph,
    reachability_query,
    unguarded_reachability_query,
)


HALF = Fraction(1, 2)


class TestGenericAbsorption:
    """absorption_event_probability on hand-built processes."""

    def test_immediate_fixpoint(self):
        p, states = absorption_event_probability(
            lambda s: Distribution.point(s), lambda s: s == "x", "x"
        )
        assert p == 1
        assert states == 1

    def test_two_branch(self):
        def transition(state):
            if state == "s":
                return Distribution({"good": 1, "bad": 1})
            return Distribution.point(state)

        p, states = absorption_event_probability(
            transition, lambda s: s == "good", "s"
        )
        assert p == HALF
        assert states == 3

    def test_self_loop_renormalised(self):
        """Example 3.6 pattern: stay w.p. 1/2 forever has measure zero."""

        def transition(state):
            if state == "s":
                return Distribution({"s": 1, "good": 1})
            return Distribution.point(state)

        p, _states = absorption_event_probability(
            transition, lambda s: s == "good", "s"
        )
        assert p == 1

    def test_deep_chain_no_recursion_error(self):
        def transition(state):
            if state < 3000:
                return Distribution.point(state + 1)
            return Distribution.point(state)

        p, states = absorption_event_probability(
            transition, lambda s: s == 3000, 0
        )
        assert p == 1
        assert states == 3001

    def test_max_states(self):
        def transition(state):
            return Distribution.point(state + 1) if state < 100 else Distribution.point(state)

        with pytest.raises(StateSpaceLimitExceeded):
            absorption_event_probability(
                transition, lambda s: False, 0, max_states=5
            )

    def test_diamond_memoised(self):
        """Converging paths share the memo entry (counted once)."""

        def transition(state):
            if state == "s":
                return Distribution({"l": 1, "r": 1})
            if state in ("l", "r"):
                return Distribution.point("t")
            return Distribution.point(state)

        p, states = absorption_event_probability(transition, lambda s: s == "t", "s")
        assert p == 1
        assert states == 4


class TestPaperExamples:
    def test_example_35_guarded(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        result = evaluate_inflationary_exact(query, db)
        assert result.probability == HALF
        assert result.method == "prop-4.4"

    def test_example_36_unguarded(self):
        query, db = unguarded_reachability_query(example_36_graph(), "a", "b")
        result = evaluate_inflationary_exact(query, db)
        assert result.probability == 1

    def test_target_equals_start(self):
        query, db = reachability_query(example_36_graph(), "a", "a")
        assert evaluate_inflationary_exact(query, db).probability == 1

    def test_unreachable_target(self):
        query, db = reachability_query(example_36_graph(), "b", "c")
        assert evaluate_inflationary_exact(query, db).probability == 0


class TestPcTableSemantics:
    def test_choice_made_once(self):
        """Section 3.2: pc-table choices happen once, before iteration."""
        pc = PCDatabase(
            {"A": CTable(("L",), [(("t",), var_eq("x", 1))])},
            {"x": boolean_variable(Fraction(1, 3))},
        )
        kernel = Interpretation({}, pc_tables=pc)
        db = Database({"A": Relation(("L",), [])})
        query = InflationaryQuery(kernel, TupleIn("A", ("t",)))
        result = evaluate_inflationary_exact(query, db)
        assert result.probability == Fraction(1, 3)
        assert result.details["pc_worlds"] == 2

    def test_identity_kernel_event_from_initial(self):
        db = Database({"C": Relation(("I",), [("a",)])})
        query = InflationaryQuery(
            Interpretation({"C": rel("C")}), TupleIn("C", ("a",))
        )
        result = evaluate_inflationary_exact(query, db)
        assert result.probability == 1
        assert result.states_explored == 1
