"""Unit tests for first-passage and full-distribution query APIs."""

from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    evaluate_inflationary_exact,
    event_expected_hitting_time,
    event_hitting_probability,
    event_hitting_time_distribution,
    forever_state_distribution,
    inflationary_fixpoint_distribution,
)
from repro.relational import Database, Relation, join, project, rel, rename, repair_key
from repro.workloads import (
    cycle_graph,
    example_36_graph,
    random_walk_query,
    reachability_query,
)


class TestHittingQueries:
    def test_irreducible_walk_hits_surely(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        assert event_hitting_probability(query, db) == 1

    def test_expected_time_on_lazy_cycle(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        # two forward steps, each geometric with success 1/2
        assert event_expected_hitting_time(query, db) == 4

    def test_absorbing_walk_partial_hitting(self):
        db = Database(
            {
                "C": Relation(("I",), [("a",)]),
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", 1), ("a", "c", 3), ("b", "b", 1), ("c", "c", 1)],
                ),
            }
        )
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        query = ForeverQuery(Interpretation({"C": step}), TupleIn("C", ("b",)))
        assert event_hitting_probability(query, db) == Fraction(1, 4)

    def test_hitting_vs_long_run_divergence(self):
        """A transient event: hit almost surely, long-run probability 0."""
        db = Database(
            {
                "C": Relation(("I",), [("s",)]),
                "E": Relation(
                    ("I", "J", "P"), [("s", "t", 1), ("t", "u", 1), ("u", "u", 1)]
                ),
            }
        )
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        query = ForeverQuery(Interpretation({"C": step}), TupleIn("C", ("t",)))
        assert event_hitting_probability(query, db) == 1
        assert evaluate_forever_exact(query, db).probability == 0

    def test_hitting_time_distribution(self):
        query, db = random_walk_query(cycle_graph(3), "n0", "n1")
        dist = event_hitting_time_distribution(query, db, horizon=5)
        # forward step with probability 1/2 each tick: geometric
        assert dist.probability(1) == Fraction(1, 2)
        assert dist.probability(2) == Fraction(1, 4)


class TestForeverStateDistribution:
    def test_matches_scalar_evaluator(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        distribution = forever_state_distribution(query, db)
        scalar = evaluate_forever_exact(query, db).probability
        assert distribution.probability_of(query.event.holds) == scalar

    def test_transients_dropped(self):
        db = Database(
            {
                "C": Relation(("I",), [("s",)]),
                "E": Relation(
                    ("I", "J", "P"), [("s", "t", 1), ("t", "t", 1)]
                ),
            }
        )
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        query = ForeverQuery(Interpretation({"C": step}), TupleIn("C", ("t",)))
        distribution = forever_state_distribution(query, db)
        assert len(distribution) == 1
        assert sum(p for _s, p in distribution.items()) == 1


class TestFixpointDistribution:
    def test_example_35_two_worlds(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        finals = inflationary_fixpoint_distribution(query, db)
        assert len(finals) == 2
        assert all(p == Fraction(1, 2) for _w, p in finals.items())
        reached = {
            frozenset(v[0] for v in world["C"]) for world in finals.support()
        }
        assert reached == {frozenset({"a", "b"}), frozenset({"a", "c"})}

    def test_scalar_consistency(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        finals = inflationary_fixpoint_distribution(query, db)
        scalar = evaluate_inflationary_exact(query, db).probability
        assert finals.probability_of(query.event.holds) == scalar

    def test_pc_table_mixture(self):
        from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
        from repro.core import InflationaryQuery

        pc = PCDatabase(
            {"A": CTable(("L",), [(("t",), var_eq("x", 1))])},
            {"x": boolean_variable(Fraction(1, 3))},
        )
        kernel = Interpretation({}, pc_tables=pc)
        db = Database({"A": Relation(("L",), [])})
        query = InflationaryQuery(kernel, TupleIn("A", ("t",)))
        finals = inflationary_fixpoint_distribution(query, db)
        assert len(finals) == 2
        assert finals.probability_of(lambda w: ("t",) in w["A"]) == Fraction(1, 3)
