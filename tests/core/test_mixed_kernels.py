"""Tests for kernels combining algebra queries *and* pc-tables.

The Theorem 5.1 construction is the paper's canonical instance of this
shape (IDB queries + a per-step-resampled c-table); these tests pin the
interaction down in isolation.
"""

import random
from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    build_state_chain,
    evaluate_forever_exact,
)
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.relational import Database, Relation, rel


def mixed_kernel():
    """``H := A`` (copy last step's sample) while ``A`` is re-sampled."""
    pc = PCDatabase(
        {
            "A": CTable(
                ("L",),
                [(("t",), var_eq("x", 1)), (("f",), var_eq("x", 0))],
            )
        },
        {"x": boolean_variable(Fraction(1, 4))},
    )
    return Interpretation({"H": rel("A")}, pc_tables=pc)


def initial_db():
    return Database(
        {
            "A": Relation(("L",), [("f",)]),
            "H": Relation(("L",), []),
        }
    )


class TestMixedTransition:
    def test_exact_transition_worlds(self):
        kernel = mixed_kernel()
        worlds = kernel.transition(initial_db())
        # H deterministically copies old A = {f}; A branches two ways.
        assert len(worlds) == 2
        for world in worlds.support():
            assert world["H"].rows == frozenset({("f",)})
        p_true = worlds.probability_of(lambda w: ("t",) in w["A"])
        assert p_true == Fraction(1, 4)

    def test_query_reads_old_pc_state(self):
        """Parallel firing: H sees the A of the *previous* step."""
        kernel = mixed_kernel()
        rng = random.Random(5)
        state = initial_db()
        for _ in range(30):
            nxt = kernel.sample_transition(state, rng)
            assert nxt["H"] == state["A"]
            state = nxt

    def test_long_run_probability(self):
        kernel = mixed_kernel()
        query = ForeverQuery(kernel, TupleIn("H", ("t",)))
        result = evaluate_forever_exact(query, initial_db())
        # H lags A by one step; long-run Pr[H = t] = Pr[x = 1] = 1/4
        assert result.probability == Fraction(1, 4)

    def test_chain_size(self):
        chain = build_state_chain(mixed_kernel(), initial_db())
        # the transient initial state (H empty) plus (A, H) ∈ {t, f}²
        assert chain.size == 5

    def test_sample_matches_enumeration(self):
        kernel = mixed_kernel()
        worlds = kernel.transition(initial_db())
        rng = random.Random(11)
        counts = {}
        trials = 2000
        for _ in range(trials):
            world = kernel.sample_transition(initial_db(), rng)
            counts[world] = counts.get(world, 0) + 1
        for world, probability in worlds.items():
            assert abs(counts.get(world, 0) / trials - float(probability)) < 0.04


class TestCorrelatedPcTables:
    def test_shared_variable_across_tables_stays_correlated(self):
        """Two c-tables driven by one variable: worlds never disagree —
        precisely what the algebraic macro compilation cannot express."""
        pc = PCDatabase(
            {
                "A": CTable(("L",), [(("a1",), var_eq("x", 1))]),
                "B": CTable(("L",), [(("b1",), var_eq("x", 1))]),
            },
            {"x": boolean_variable()},
        )
        kernel = Interpretation({}, pc_tables=pc)
        db = Database(
            {"A": Relation(("L",), []), "B": Relation(("L",), [])}
        )
        worlds = kernel.transition(db)
        assert len(worlds) == 2
        for world in worlds.support():
            assert (len(world["A"]) == 1) == (len(world["B"]) == 1)
