"""Unit tests for provenance tracking (Section 5.1 pre-processing)."""

from repro.core.evaluation import evaluate_with_provenance, initial_provenance
from repro.relational import (
    Database,
    Relation,
    ValueEq,
    difference,
    extended_project,
    join,
    literal,
    product,
    project,
    rel,
    rename,
    repair_key,
    select,
    union,
)


DB = Database(
    {
        "R": Relation(("A", "B"), [(1, "x"), (2, "y")]),
        "S": Relation(("B", "C"), [("x", 10)]),
    }
)
PROV = initial_provenance(DB)


def ids(prov, row):
    return set(prov[row])


class TestLeaves:
    def test_initial_singletons(self):
        assert PROV["R"][(1, "x")] == frozenset({("R", (1, "x"))})

    def test_relation_ref(self):
        relation, prov = evaluate_with_provenance(rel("R"), DB, PROV)
        assert relation == DB["R"]
        assert ids(prov, (1, "x")) == {("R", (1, "x"))}

    def test_literal_has_empty_provenance(self):
        _relation, prov = evaluate_with_provenance(literal(("A",), [(5,)]), DB, PROV)
        assert prov[(5,)] == frozenset()


class TestOperators:
    def test_select_preserves(self):
        _r, prov = evaluate_with_provenance(
            select(rel("R"), ValueEq("B", "x")), DB, PROV
        )
        assert set(prov) == {(1, "x")}
        assert ids(prov, (1, "x")) == {("R", (1, "x"))}

    def test_project_unions_collisions(self):
        db = Database({"R": Relation(("A", "B"), [(1, "x"), (2, "x")])})
        prov = initial_provenance(db)
        _r, out = evaluate_with_provenance(project(rel("R"), "B"), db, prov)
        assert ids(out, ("x",)) == {("R", (1, "x")), ("R", (2, "x"))}

    def test_join_unions_both_sides(self):
        _r, prov = evaluate_with_provenance(join(rel("R"), rel("S")), DB, PROV)
        assert ids(prov, (1, "x", 10)) == {("R", (1, "x")), ("S", ("x", 10))}

    def test_product_unions_both_sides(self):
        left = project(rel("R"), "A")
        right = project(rel("S"), "C")
        _r, prov = evaluate_with_provenance(product(left, right), DB, PROV)
        assert ("R", (1, "x")) in prov[(1, 10)]
        assert ("S", ("x", 10)) in prov[(1, 10)]

    def test_union_merges(self):
        expr = union(project(rel("R"), "B"), project(rel("S"), "B"))
        _r, prov = evaluate_with_provenance(expr, DB, PROV)
        assert ("R", (1, "x")) in prov[("x",)]
        assert ("S", ("x", 10)) in prov[("x",)]

    def test_difference_adds_negative_dependencies(self):
        expr = difference(project(rel("R"), "B"), project(rel("S"), "B"))
        _r, prov = evaluate_with_provenance(expr, DB, PROV)
        # surviving row depends on its own source AND the subtracted side
        assert ("R", (2, "y")) in prov[("y",)]
        assert ("S", ("x", 10)) in prov[("y",)]

    def test_rename_and_extended_project(self):
        expr = rename(rel("R"), A="X")
        _r, prov = evaluate_with_provenance(expr, DB, PROV)
        assert ids(prov, (1, "x")) == {("R", (1, "x"))}
        expr2 = extended_project(rel("R"), [("Z", ("col", "A"))])
        _r2, prov2 = evaluate_with_provenance(expr2, DB, PROV)
        assert ids(prov2, (1,)) == {("R", (1, "x"))}


class TestRepairKey:
    def test_keeps_all_rows(self):
        db = Database(
            {"E": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 1)])}
        )
        prov = initial_provenance(db)
        relation, _out = evaluate_with_provenance(
            repair_key(rel("E"), ("I",), "P"), db, prov
        )
        assert relation == db["E"]

    def test_group_members_coupled(self):
        db = Database(
            {
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", 1), ("a", "c", 1), ("z", "z", 1)],
                )
            }
        )
        prov = initial_provenance(db)
        _r, out = evaluate_with_provenance(repair_key(rel("E"), ("I",), "P"), db, prov)
        # same group ("a") -> merged identifiers
        assert out[("a", "b", 1)] == out[("a", "c", 1)]
        assert len(out[("a", "b", 1)]) == 2
        # different group stays separate
        assert out[("z", "z", 1)] == frozenset({("E", ("z", "z", 1))})
