"""Unit tests for the Theorem 5.6 mixing-time sampler."""

import pytest

from repro.core import (
    adaptive_burn_in,
    computed_burn_in,
    evaluate_forever_exact,
    evaluate_forever_mcmc,
)
from repro.errors import EvaluationError, MarkovChainError
from repro.markov import mixing_time
from repro.workloads import complete_graph, cycle_graph, random_walk_query


class TestComputedBurnIn:
    def test_matches_chain_mixing_time(self):
        graph = cycle_graph(5)
        query, db = random_walk_query(graph, "n0", "n2")
        burn = computed_burn_in(query, db, mixing_epsilon=0.1, max_states=100)
        assert burn == mixing_time(graph.to_markov_chain(), epsilon=0.1)

    def test_periodic_chain_rejected(self):
        # pure 2-cycle is periodic -> mixing undefined
        from repro.workloads import WeightedGraph

        graph = WeightedGraph(("a", "b"), (("a", "b", 1), ("b", "a", 1)))
        query, db = random_walk_query(graph, "a", "b")
        with pytest.raises(MarkovChainError):
            computed_burn_in(query, db, mixing_epsilon=0.1, max_states=100)


class TestEvaluator:
    def test_estimate_close_to_exact(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        exact = float(evaluate_forever_exact(query, db).probability)
        result = evaluate_forever_mcmc(
            query, db, epsilon=0.1, delta=0.1, samples=1200, burn_in=40, rng=2
        )
        assert abs(result.estimate - exact) < 0.07

    def test_automatic_burn_in_used(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        result = evaluate_forever_mcmc(
            query, db, epsilon=0.2, delta=0.2, samples=300, rng=4
        )
        assert result.details["burn_in"] >= 1
        assert result.method == "thm-5.6"

    def test_insufficient_burn_in_biases_estimate(self):
        """With burn-in 0 every sample sits at the start state — the
        failure mode Theorem 5.6's mixing requirement exists to avoid."""
        query, db = random_walk_query(cycle_graph(8), "n0", "n4")
        biased = evaluate_forever_mcmc(
            query, db, samples=300, burn_in=0, rng=6
        )
        assert biased.estimate == 0.0  # never left n0

    def test_epsilon_delta_recorded(self):
        query, db = random_walk_query(complete_graph(3), "n0", "n1")
        result = evaluate_forever_mcmc(query, db, epsilon=0.2, delta=0.25, rng=3)
        assert result.epsilon == 0.2
        assert result.delta == 0.25


class TestAdaptiveBurnIn:
    def test_fast_chain_stabilises_quickly(self):
        query, db = random_walk_query(complete_graph(4), "n0", "n1")
        steps = adaptive_burn_in(
            query, db, rng=1, walkers=64, window=10, tolerance=0.12
        )
        assert steps <= 30

    def test_slow_chain_needs_longer(self):
        fast_query, fast_db = random_walk_query(complete_graph(8), "n0", "n1")
        slow_query, slow_db = random_walk_query(cycle_graph(8), "n0", "n4")
        fast = adaptive_burn_in(
            fast_query, fast_db, rng=2, walkers=64, window=12, tolerance=0.12
        )
        slow = adaptive_burn_in(
            slow_query, slow_db, rng=2, walkers=64, window=12, tolerance=0.12
        )
        assert slow >= fast

    def test_max_steps_raises(self):
        query, db = random_walk_query(cycle_graph(12), "n0", "n6")
        with pytest.raises(EvaluationError):
            adaptive_burn_in(
                query, db, rng=3, walkers=8, window=50, tolerance=0.0, max_steps=60
            )
