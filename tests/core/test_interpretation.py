"""Unit tests for probabilistic first-order interpretations (Def 3.1)."""

import random
from fractions import Fraction

import pytest

from repro.core import Interpretation, identity_interpretation
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.errors import SchemaError
from repro.relational import (
    Database,
    Relation,
    join,
    project,
    rel,
    rename,
    repair_key,
    union,
)


def walk_kernel() -> Interpretation:
    step = rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )
    return Interpretation({"C": step})


@pytest.fixture
def db(walk_db) -> Database:
    return walk_db


class TestSchemaChecks:
    def test_valid(self, db):
        walk_kernel().check_schema(db)

    def test_missing_relation(self):
        with pytest.raises(SchemaError):
            walk_kernel().check_schema(Database({"C": Relation(("I",), [])}))

    def test_result_schema_mismatch(self, db):
        bad = Interpretation({"C": rel("E")})
        with pytest.raises(SchemaError):
            bad.check_schema(db)

    def test_pc_clash_with_query(self):
        pc = PCDatabase(
            {"C": CTable(("I",), [(("a",), var_eq("x", 1))])},
            {"x": boolean_variable()},
        )
        with pytest.raises(SchemaError):
            Interpretation({"C": rel("C")}, pc_tables=pc)

    def test_pc_certain_rejected(self):
        pc = PCDatabase(
            {"A": CTable(("I",), [(("a",), var_eq("x", 1))])},
            {"x": boolean_variable()},
            certain={"E": Relation(("I",), [])},
        )
        with pytest.raises(SchemaError):
            Interpretation({}, pc_tables=pc)

    def test_pc_relation_must_be_in_db(self, db):
        pc = PCDatabase(
            {"A": CTable(("I",), [(("a",), var_eq("x", 1))])},
            {"x": boolean_variable()},
        )
        kernel = Interpretation({}, pc_tables=pc)
        with pytest.raises(SchemaError):
            kernel.check_schema(db)


class TestTransition:
    def test_unqueried_relations_unchanged(self, db):
        for world in walk_kernel().transition(db).support():
            assert world["E"] == db["E"]

    def test_branching(self, db):
        worlds = walk_kernel().transition(db)
        positions = {next(iter(w["C"]))[0] for w in worlds.support()}
        assert positions == {"a", "b"}
        assert sum(p for _w, p in worlds.items()) == 1

    def test_identity_interpretation(self, db):
        worlds = identity_interpretation().transition(db)
        assert worlds.probability(db) == 1

    def test_sample_matches_support(self, db):
        kernel = walk_kernel()
        support = kernel.transition(db).support()
        rng = random.Random(1)
        for _ in range(20):
            assert kernel.sample_transition(db, rng) in support

    def test_sample_frequencies(self, db):
        kernel = walk_kernel()
        rng = random.Random(9)
        stays = sum(
            next(iter(kernel.sample_transition(db, rng)["C"]))[0] == "a"
            for _ in range(2000)
        )
        assert abs(stays / 2000 - 0.5) < 0.04


class TestPcTables:
    def _pc_kernel(self):
        pc = PCDatabase(
            {
                "A": CTable(
                    ("L",),
                    [(("t",), var_eq("x", 1)), (("f",), var_eq("x", 0))],
                )
            },
            {"x": boolean_variable(Fraction(1, 4))},
        )
        return Interpretation({}, pc_tables=pc)

    def _pc_db(self):
        return Database({"A": Relation(("L",), [("f",)])})

    def test_pc_resampled_each_transition(self):
        kernel = self._pc_kernel()
        worlds = kernel.transition(self._pc_db())
        assert len(worlds) == 2
        true_world = next(
            w for w in worlds.support() if ("t",) in w["A"]
        )
        assert worlds.probability(true_world) == Fraction(1, 4)

    def test_without_pc_tables(self):
        kernel = self._pc_kernel()
        stripped = kernel.without_pc_tables()
        worlds = stripped.transition(self._pc_db())
        assert worlds.probability(self._pc_db()) == 1

    def test_updated_relations(self):
        kernel = self._pc_kernel()
        assert kernel.updated_relations() == ["A"]
        assert kernel.pc_relation_names() == ["A"]

    def test_is_deterministic(self, db):
        assert identity_interpretation().is_deterministic()
        assert Interpretation({"C": rel("C")}).is_deterministic()
        assert not walk_kernel().is_deterministic()
        assert not self._pc_kernel().is_deterministic()
