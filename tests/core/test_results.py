"""Unit tests for the evaluator result types and error hierarchy."""

from fractions import Fraction

import pytest

from repro.core.evaluation import ExactResult, NumericResult, SamplingResult
from repro.errors import (
    AlgebraError,
    ConditionError,
    DatalogError,
    DatalogParseError,
    EvaluationError,
    MarkovChainError,
    NotInflationaryError,
    ProbabilityError,
    ReproError,
    SchemaError,
    StateSpaceLimitExceeded,
)


class TestExactResult:
    def test_fields(self):
        result = ExactResult(Fraction(1, 2), 10, "prop-4.4", {"pc_worlds": 2})
        assert result.probability == Fraction(1, 2)
        assert result.details["pc_worlds"] == 2

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ExactResult(Fraction(3, 2), 1, "x")
        with pytest.raises(ValueError):
            ExactResult(Fraction(-1, 2), 1, "x")

    def test_frozen(self):
        result = ExactResult(Fraction(0), 1, "x")
        with pytest.raises(AttributeError):
            result.probability = Fraction(1)


class TestSamplingResult:
    def test_fields(self):
        result = SamplingResult(0.5, 100, 50, 0.1, 0.05, "thm-4.3")
        assert result.estimate == 0.5

    def test_sample_count_validated(self):
        with pytest.raises(ValueError):
            SamplingResult(0.5, 0, 0, None, None, "x")

    def test_positive_count_validated(self):
        with pytest.raises(ValueError):
            SamplingResult(0.5, 10, 11, None, None, "x")


class TestNumericResult:
    def test_validation(self):
        NumericResult(0.25, 4, "prop-5.4-float")
        with pytest.raises(ValueError):
            NumericResult(-0.1, 1, "x")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            SchemaError,
            AlgebraError,
            ProbabilityError,
            ConditionError,
            DatalogError,
            DatalogParseError,
            MarkovChainError,
            EvaluationError,
            StateSpaceLimitExceeded,
            NotInflationaryError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)

    def test_specialisations(self):
        assert issubclass(AlgebraError, SchemaError)
        assert issubclass(DatalogParseError, DatalogError)
        assert issubclass(StateSpaceLimitExceeded, EvaluationError)
        assert issubclass(NotInflationaryError, EvaluationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise StateSpaceLimitExceeded("boom")
