"""Unit tests for the finite-horizon series and one-shot pc queries."""

from fractions import Fraction

import pytest

from repro.core import (
    evaluate_forever_exact,
    event_occupancy_series,
    event_probability_series,
    query_pc_database,
)
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.errors import EvaluationError
from repro.relational import Relation, project, rel, repair_key
from repro.workloads import complete_graph, cycle_graph, random_walk_query


class TestEventProbabilitySeries:
    def test_starts_at_initial_value(self):
        query, db = random_walk_query(cycle_graph(3), "n0", "n0")
        series = event_probability_series(query, db, 0)
        assert series == [Fraction(1)]

    def test_lazy_cycle_first_steps(self):
        query, db = random_walk_query(cycle_graph(3), "n0", "n1")
        series = event_probability_series(query, db, 2)
        # step 1: at n1 with probability 1/2 (advance) else n0
        assert series[:2] == [Fraction(0), Fraction(1, 2)]

    def test_converges_to_long_run_value(self):
        query, db = random_walk_query(complete_graph(4), "n0", "n2")
        limit = evaluate_forever_exact(query, db).probability
        series = event_probability_series(query, db, 20)
        assert abs(series[-1] - limit) < Fraction(1, 10**6)

    def test_horizon_validated(self):
        query, db = random_walk_query(cycle_graph(3), "n0", "n1")
        with pytest.raises(EvaluationError):
            event_probability_series(query, db, -1)


class TestOccupancySeries:
    def test_running_average_of_pointwise(self):
        query, db = random_walk_query(cycle_graph(3), "n0", "n1")
        pointwise = event_probability_series(query, db, 5)
        occupancy = event_occupancy_series(query, db, 5)
        running = Fraction(0)
        for t, value in enumerate(pointwise[1:], start=1):
            running += value
            assert occupancy[t - 1] == running / t

    def test_cesaro_converges_to_definition_32(self):
        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        limit = evaluate_forever_exact(query, db).probability
        occupancy = event_occupancy_series(query, db, 300)
        assert abs(occupancy[-1] - limit) < Fraction(1, 50)

    def test_needs_a_step(self):
        query, db = random_walk_query(cycle_graph(3), "n0", "n1")
        with pytest.raises(EvaluationError):
            event_occupancy_series(query, db, 0)


class TestQueryPcDatabase:
    def _pcdb(self):
        return PCDatabase(
            {
                "A": CTable(
                    ("L", "P"),
                    [
                        (("t", 3), var_eq("x", 1)),
                        (("u", 1), var_eq("x", 1)),
                        (("f", 1), var_eq("x", 0)),
                    ],
                )
            },
            {"x": boolean_variable(Fraction(1, 2))},
        )

    def test_deterministic_query(self):
        worlds = query_pc_database(project(rel("A"), "L"), self._pcdb())
        assert len(worlds) == 2
        assert worlds.probability_of(lambda r: ("t",) in r) == Fraction(1, 2)

    def test_repair_key_composes_with_pc_choice(self):
        expr = project(repair_key(rel("A"), key=(), weight="P"), "L")
        worlds = query_pc_database(expr, self._pcdb())
        # x=1 (1/2): pick t w.p. 3/4 or u w.p. 1/4;  x=0 (1/2): f surely
        assert worlds.probability(Relation(("L",), [("t",)])) == Fraction(3, 8)
        assert worlds.probability(Relation(("L",), [("u",)])) == Fraction(1, 8)
        assert worlds.probability(Relation(("L",), [("f",)])) == Fraction(1, 2)

    def test_total_probability(self):
        expr = project(repair_key(rel("A"), key=(), weight="P"), "L")
        worlds = query_pc_database(expr, self._pcdb())
        assert sum(p for _w, p in worlds.items()) == 1


class TestCycleDetection:
    def test_oscillating_kernel_rejected_by_inflationary_evaluator(self):
        """A non-inflationary kernel fed to the Prop 4.4 traversal must
        fail loudly (cycle detection), not loop or silently mis-answer."""
        from repro.core import InflationaryQuery, Interpretation, TupleIn
        from repro.core.evaluation import absorption_event_probability
        from repro.probability import Distribution

        def oscillate(state):
            return Distribution.point("b" if state == "a" else "a")

        with pytest.raises(EvaluationError):
            absorption_event_probability(oscillate, lambda s: False, "a")
