"""Unit tests for query events (Definition 3.2)."""

from repro.core import RelationNonEmpty, TupleIn
from repro.relational import Database, Relation


DB = Database(
    {
        "C": Relation(("I",), [("a",), ("b",)]),
        "Empty": Relation(("I",), []),
    }
)


class TestTupleIn:
    def test_holds(self):
        assert TupleIn("C", ("a",)).holds(DB)

    def test_missing_tuple(self):
        assert not TupleIn("C", ("z",)).holds(DB)

    def test_missing_relation_is_false(self):
        assert not TupleIn("nope", ("a",)).holds(DB)

    def test_callable(self):
        assert TupleIn("C", ("a",))(DB)

    def test_repr(self):
        assert "C" in repr(TupleIn("C", ("a",)))


class TestRelationNonEmpty:
    def test_nonempty(self):
        assert RelationNonEmpty("C").holds(DB)

    def test_empty(self):
        assert not RelationNonEmpty("Empty").holds(DB)

    def test_missing_relation(self):
        assert not RelationNonEmpty("nope").holds(DB)


class TestCombinators:
    def test_and(self):
        event = TupleIn("C", ("a",)) & TupleIn("C", ("b",))
        assert event.holds(DB)
        assert not (TupleIn("C", ("a",)) & TupleIn("C", ("z",))).holds(DB)

    def test_or(self):
        assert (TupleIn("C", ("z",)) | TupleIn("C", ("b",))).holds(DB)
        assert not (TupleIn("C", ("z",)) | TupleIn("C", ("y",))).holds(DB)

    def test_not(self):
        assert (~TupleIn("C", ("z",))).holds(DB)
        assert not (~TupleIn("C", ("a",))).holds(DB)

    def test_nested(self):
        event = (TupleIn("C", ("a",)) | RelationNonEmpty("Empty")) & ~TupleIn(
            "C", ("z",)
        )
        assert event.holds(DB)


class TestExpressionEvent:
    def test_boolean_query(self):
        from repro.core import ExpressionEvent
        from repro.relational import ValueEq, project, rel, select

        event = ExpressionEvent(project(select(rel("C"), ValueEq("I", "a"))))
        assert event.holds(DB)
        missing = ExpressionEvent(project(select(rel("C"), ValueEq("I", "zz"))))
        assert not missing.holds(DB)

    def test_join_condition_event(self):
        """An event no TupleIn can express: C and Empty share a value."""
        from repro.core import ExpressionEvent
        from repro.relational import join, project, rel

        event = ExpressionEvent(project(join(rel("C"), rel("Empty"))))
        assert not event.holds(DB)

    def test_probabilistic_expression_rejected(self):
        import pytest

        from repro.core import ExpressionEvent
        from repro.errors import AlgebraError
        from repro.relational import rel, repair_key

        with pytest.raises(AlgebraError):
            ExpressionEvent(repair_key(rel("C"), ("I",)))

    def test_usable_in_forever_query(self):
        from fractions import Fraction

        from repro.core import ExpressionEvent, evaluate_forever_exact
        from repro.relational import ValueEq, project, rel, select
        from repro.workloads import cycle_graph, random_walk_query

        query, db = random_walk_query(cycle_graph(4), "n0", "n2")
        query.event = ExpressionEvent(
            project(select(rel("C"), ValueEq("I", "n2")))
        )
        assert evaluate_forever_exact(query, db).probability == Fraction(1, 4)
