"""Unit tests for the database-state Markov chain builder."""

import pytest

from repro.core import Interpretation, build_state_chain, count_reachable_states
from repro.errors import SchemaError, StateSpaceLimitExceeded
from repro.markov import is_irreducible
from repro.relational import (
    Database,
    Relation,
    join,
    project,
    rel,
    rename,
    repair_key,
)


def walk_kernel() -> Interpretation:
    step = rename(
        project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
    )
    return Interpretation({"C": step})


class TestBuildStateChain:
    def test_states_are_databases(self, walk_db):
        chain = build_state_chain(walk_kernel(), walk_db)
        assert walk_db in chain
        assert chain.size == 3  # one state per walker position

    def test_rows_are_exact_kernel_transitions(self, walk_db):
        kernel = walk_kernel()
        chain = build_state_chain(kernel, walk_db)
        for state in chain.states:
            assert chain.successors(state) == kernel.transition(state)

    def test_closed_chain(self, walk_db):
        chain = build_state_chain(walk_kernel(), walk_db)
        for state in chain.states:
            assert chain.successors(state).support() <= frozenset(chain.states)

    def test_irreducible_walk(self, walk_db):
        assert is_irreducible(build_state_chain(walk_kernel(), walk_db))

    def test_max_states_enforced(self, walk_db):
        with pytest.raises(StateSpaceLimitExceeded):
            build_state_chain(walk_kernel(), walk_db, max_states=1)

    def test_schema_checked(self):
        with pytest.raises(SchemaError):
            build_state_chain(walk_kernel(), Database({"C": Relation(("I",), [])}))

    def test_count_reachable(self, walk_db):
        assert count_reachable_states(walk_kernel(), walk_db) == 3

    def test_deterministic_kernel_single_orbit(self, walk_db):
        identity = Interpretation({"C": rel("C")})
        chain = build_state_chain(identity, walk_db)
        assert chain.size == 1
        assert chain.probability(walk_db, walk_db) == 1
