"""Unit tests for the Theorem 4.3 sampling evaluator."""

import random
from fractions import Fraction

import pytest

from repro.core import (
    InflationaryQuery,
    Interpretation,
    TupleIn,
    evaluate_inflationary_exact,
    evaluate_inflationary_sampling,
)
from repro.core.evaluation import sample_fixpoint
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.errors import EvaluationError
from repro.probability import paper_sample_count
from repro.relational import Database, Relation, rel
from repro.workloads import (
    example_36_graph,
    layered_dag,
    reachability_query,
    unguarded_reachability_query,
)


class TestSampleFixpoint:
    def test_deterministic_progression(self):
        state, steps = sample_fixpoint(
            step=lambda s: min(s + 1, 5),
            is_fixpoint=lambda s: s == 5,
            initial=0,
        )
        assert state == 5
        assert steps == 5

    def test_verification_rejects_false_stall(self):
        """A sampled self-loop at a non-fixpoint must not terminate."""
        rng = random.Random(0)

        def step(s):
            if s == "s":
                return "s" if rng.random() < 0.5 else "t"
            return s

        state, _steps = sample_fixpoint(
            step, is_fixpoint=lambda s: s == "t", initial="s"
        )
        assert state == "t"

    def test_stall_threshold_mode(self):
        state, _steps = sample_fixpoint(
            step=lambda s: s,
            is_fixpoint=lambda s: (_ for _ in ()).throw(AssertionError),
            initial="x",
            stall_threshold=3,
        )
        assert state == "x"

    def test_max_steps(self):
        with pytest.raises(EvaluationError):
            sample_fixpoint(
                step=lambda s: s + 1,
                is_fixpoint=lambda s: False,
                initial=0,
                max_steps=10,
            )


class TestEvaluator:
    def test_matches_exact_on_example_35(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        exact = evaluate_inflationary_exact(query, db).probability
        sampled = evaluate_inflationary_sampling(query, db, samples=2000, rng=3)
        assert abs(sampled.estimate - float(exact)) < 0.05

    def test_unguarded_example_36_reaches_one(self):
        query, db = unguarded_reachability_query(example_36_graph(), "a", "b")
        sampled = evaluate_inflationary_sampling(query, db, samples=300, rng=5)
        assert sampled.estimate == 1.0

    def test_planned_sample_count_used(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        result = evaluate_inflationary_sampling(
            query, db, epsilon=0.2, delta=0.2, rng=1
        )
        assert result.samples == paper_sample_count(0.2, 0.2)
        assert result.epsilon == 0.2
        assert result.delta == 0.2

    def test_explicit_samples_clears_guarantee(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        result = evaluate_inflationary_sampling(query, db, samples=50, rng=1)
        assert result.samples == 50
        assert result.epsilon is None

    def test_epsilon_guarantee_holds_empirically(self):
        """Repeat (ε, δ)-runs; the failure rate stays ≲ δ."""
        query, db = reachability_query(example_36_graph(), "a", "b")
        exact = float(evaluate_inflationary_exact(query, db).probability)
        epsilon, delta = 0.1, 0.2
        failures = 0
        runs = 30
        rng = random.Random(7)
        for _ in range(runs):
            result = evaluate_inflationary_sampling(
                query, db, epsilon=epsilon, delta=delta, rng=rng
            )
            failures += abs(result.estimate - exact) > epsilon
        assert failures / runs <= delta + 0.1

    def test_larger_dag_agrees_with_exact(self):
        graph = layered_dag(3, 2, rng=4)
        query, db = reachability_query(graph, "v0_0", "v2_0")
        exact = float(evaluate_inflationary_exact(query, db).probability)
        sampled = evaluate_inflationary_sampling(query, db, samples=1500, rng=9)
        assert abs(sampled.estimate - exact) < 0.06

    def test_pc_table_sampled_once_per_run(self):
        pc = PCDatabase(
            {"A": CTable(("L",), [(("t",), var_eq("x", 1))])},
            {"x": boolean_variable(Fraction(1, 4))},
        )
        kernel = Interpretation({}, pc_tables=pc)
        db = Database({"A": Relation(("L",), [])})
        query = InflationaryQuery(kernel, TupleIn("A", ("t",)))
        result = evaluate_inflationary_sampling(query, db, samples=2000, rng=13)
        assert abs(result.estimate - 0.25) < 0.05

    def test_details_reported(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        result = evaluate_inflationary_sampling(query, db, samples=20, rng=2)
        assert result.method == "thm-4.3"
        assert result.details["mean_steps_per_sample"] >= 1
