"""Unit tests for exact forever-query evaluation (Prop 5.4 / Thm 5.5)."""

from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
)
from repro.errors import StateSpaceLimitExceeded
from repro.relational import (
    Database,
    Relation,
    join,
    project,
    rel,
    rename,
    repair_key,
)
from repro.workloads import (
    cycle_graph,
    erdos_renyi,
    random_walk_query,
)
from repro.markov import stationary_distribution


class TestIrreducibleCase:
    def test_cycle_uniform(self):
        query, db = random_walk_query(cycle_graph(5), "n0", "n3")
        result = evaluate_forever_exact(query, db)
        assert result.probability == Fraction(1, 5)
        assert result.method == "prop-5.4"
        assert result.details["irreducible"]

    def test_matches_direct_stationary(self):
        graph = erdos_renyi(5, 0.4, rng=8)
        query, db = random_walk_query(graph, "n0", "n2")
        result = evaluate_forever_exact(query, db)
        pi = stationary_distribution(graph.to_markov_chain())
        assert result.probability == pi.probability("n2")

    def test_result_independent_of_start(self):
        graph = erdos_renyi(4, 0.5, rng=2)
        r1 = evaluate_forever_exact(*random_walk_query(graph, "n0", "n3"))
        r2 = evaluate_forever_exact(*random_walk_query(graph, "n1", "n3"))
        assert r1.probability == r2.probability


class TestReducibleCase:
    def _absorbing_db(self):
        # a -> b or c; b, c absorbing.
        return Database(
            {
                "C": Relation(("I",), [("a",)]),
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", 1), ("a", "c", 3), ("b", "b", 1), ("c", "c", 1)],
                ),
            }
        )

    def _walk_query(self, target):
        step = rename(
            project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I"
        )
        return ForeverQuery(Interpretation({"C": step}), TupleIn("C", (target,)))

    def test_absorption_weights(self):
        db = self._absorbing_db()
        result_b = evaluate_forever_exact(self._walk_query("b"), db)
        result_c = evaluate_forever_exact(self._walk_query("c"), db)
        assert result_b.probability == Fraction(1, 4)
        assert result_c.probability == Fraction(3, 4)
        assert result_b.method == "thm-5.5"
        assert not result_b.details["irreducible"]

    def test_transient_state_probability_zero(self):
        db = self._absorbing_db()
        result = evaluate_forever_exact(self._walk_query("a"), db)
        assert result.probability == 0

    def test_periodic_leaf_uses_cesaro(self):
        """A 2-cycle leaf: the Definition 3.2 limit is 1/2 per state."""
        db = Database(
            {
                "C": Relation(("I",), [("s",)]),
                "E": Relation(
                    ("I", "J", "P"),
                    [("s", "x", 1), ("x", "y", 1), ("y", "x", 1)],
                ),
            }
        )
        result = evaluate_forever_exact(self._walk_query("x"), db)
        assert result.probability == Fraction(1, 2)


class TestLimits:
    def test_max_states(self):
        query, db = random_walk_query(cycle_graph(6), "n0", "n1")
        with pytest.raises(StateSpaceLimitExceeded):
            evaluate_forever_exact(query, db, max_states=2)

    def test_states_explored_reported(self):
        query, db = random_walk_query(cycle_graph(6), "n0", "n1")
        result = evaluate_forever_exact(query, db)
        assert result.states_explored == 6
