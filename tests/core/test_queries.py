"""Unit tests for ForeverQuery / InflationaryQuery wrappers."""

import pytest

from repro.core import (
    ForeverQuery,
    InflationaryQuery,
    Interpretation,
    TupleIn,
    inflationary_interpretation,
    simulate_trajectory,
)
from repro.errors import NotInflationaryError
from repro.relational import (
    Database,
    Relation,
    difference,
    join,
    project,
    rel,
    rename,
    repair_key,
)


def frontier_step():
    return rename(
        project(
            repair_key(join(difference(rel("C"), rel("Cold")), rel("E")), ("I",), "P"),
            "J",
        ),
        J="I",
    )


@pytest.fixture
def reach_db():
    return Database(
        {
            "C": Relation(("I",), [("a",)]),
            "Cold": Relation(("I",), []),
            "E": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 1)]),
        }
    )


class TestInflationaryInterpretation:
    def test_builds_union_queries(self, reach_db):
        kernel = inflationary_interpretation({"C": frontier_step()})
        for world in kernel.transition(reach_db).support():
            assert world.contains_database(
                reach_db.restrict(["C"])
            ) or reach_db["C"].issubset(world["C"])

    def test_every_world_contains_state(self, reach_db):
        kernel = inflationary_interpretation(
            {"C": frontier_step()},
        )
        kernel = Interpretation({**kernel.queries, "Cold": rel("C")})
        query = InflationaryQuery(kernel, TupleIn("C", ("b",)))
        for world in kernel.transition(reach_db).support():
            query.check_step(reach_db.restrict(["C", "E"]), world.restrict(["C", "E"]))

    def test_check_step_raises_on_shrink(self, reach_db):
        query = InflationaryQuery(
            Interpretation({"C": rel("C")}), TupleIn("C", ("b",))
        )
        shrunk = reach_db.with_relation("C", Relation(("I",), []))
        with pytest.raises(NotInflationaryError):
            query.check_step(reach_db, shrunk)


class TestSimulateTrajectory:
    def test_length_and_start(self, reach_db):
        kernel = Interpretation({"Cold": rel("C")})
        query = ForeverQuery(kernel, TupleIn("C", ("a",)))
        trajectory = simulate_trajectory(query, reach_db, 5, __import__("random").Random(0))
        assert len(trajectory) == 6
        assert trajectory[0] == reach_db

    def test_trajectory_respects_kernel(self, reach_db):
        import random

        kernel = Interpretation({"Cold": rel("C")})
        query = ForeverQuery(kernel, TupleIn("C", ("a",)))
        trajectory = simulate_trajectory(query, reach_db, 3, random.Random(1))
        # after one step Cold = C = {a} and stays there
        assert trajectory[1]["Cold"].rows == frozenset({("a",)})
        assert trajectory[3] == trajectory[1]

    def test_reprs(self, reach_db):
        query = ForeverQuery(Interpretation({}), TupleIn("C", ("a",)))
        assert "ForeverQuery" in repr(query)
