"""Unit tests for the seeded RNG helpers."""

import random

from repro.probability import make_rng, spawn


class TestMakeRng:
    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_seed_is_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_none_gives_fresh_generator(self):
        assert isinstance(make_rng(None), random.Random)


class TestSpawn:
    def test_child_is_deterministic_given_parent_seed(self):
        a = spawn(make_rng(5)).random()
        b = spawn(make_rng(5)).random()
        assert a == b

    def test_child_stream_differs_from_parent(self):
        parent = make_rng(5)
        child = spawn(parent)
        assert child.random() != parent.random()
