"""Unit tests for the exact Distribution type."""

import random
from fractions import Fraction

import pytest

from repro.errors import ProbabilityError
from repro.probability import Distribution, as_fraction, product_distribution


HALF = Fraction(1, 2)


class TestConstruction:
    def test_normalises_by_default(self):
        d = Distribution({"a": 1, "b": 3})
        assert d.probability("a") == Fraction(1, 4)
        assert d.probability("b") == Fraction(3, 4)

    def test_strict_mode_accepts_exact_one(self):
        d = Distribution({"a": HALF, "b": HALF}, normalise=False)
        assert d.probability("a") == HALF

    def test_strict_mode_rejects_bad_total(self):
        with pytest.raises(ProbabilityError):
            Distribution({"a": HALF}, normalise=False)

    def test_zero_weights_dropped(self):
        d = Distribution({"a": 1, "b": 0})
        assert "b" not in d
        assert d.probability("b") == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ProbabilityError):
            Distribution({"a": -1})

    def test_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            Distribution({})
        with pytest.raises(ProbabilityError):
            Distribution({"a": 0})

    def test_nan_rejected(self):
        with pytest.raises(ProbabilityError):
            Distribution({"a": float("nan")})

    def test_duplicate_outcomes_merge(self):
        d = Distribution([("a", 1), ("a", 1), ("b", 2)])
        assert d.probability("a") == HALF

    def test_float_weights_supported(self):
        d = Distribution({"a": 0.5, "b": 0.5}, normalise=False)
        assert d.probability("a") == 0.5

    def test_point(self):
        d = Distribution.point("x")
        assert d.probability("x") == 1
        assert len(d) == 1

    def test_uniform(self):
        d = Distribution.uniform(["a", "b", "c", "a"])
        assert d.probability("a") == HALF
        assert d.probability("b") == Fraction(1, 4)

    def test_uniform_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            Distribution.uniform([])

    def test_bernoulli(self):
        d = Distribution.bernoulli(Fraction(1, 3))
        assert d.probability(True) == Fraction(1, 3)
        assert d.probability(False) == Fraction(2, 3)

    def test_bernoulli_bad_parameter(self):
        with pytest.raises(ProbabilityError):
            Distribution.bernoulli(2)


class TestCombinators:
    def test_map_merges_collisions(self):
        d = Distribution({1: 1, -1: 1, 2: 2})
        squared = d.map(abs)
        assert squared.probability(1) == HALF
        assert squared.probability(2) == HALF

    def test_product_independence(self):
        d = Distribution({"a": 1, "b": 1})
        joint = d.product(Distribution({0: 1, 1: 3}))
        assert joint.probability(("a", 1)) == HALF * Fraction(3, 4)
        assert sum(p for _o, p in joint.items()) == 1

    def test_bind_is_one_probabilistic_step(self):
        start = Distribution({"s": 1})
        stepped = start.bind(lambda _s: Distribution({"x": 1, "y": 1}))
        assert stepped.probability("x") == HALF

    def test_bind_total_probability(self):
        d = Distribution({0: 1, 1: 1, 2: 2})
        stepped = d.bind(lambda k: Distribution({k: 1, k + 10: 1}))
        assert sum(p for _o, p in stepped.items()) == 1

    def test_condition(self):
        d = Distribution({1: 1, 2: 1, 3: 2})
        at_least_two = d.condition(lambda x: x >= 2)
        assert at_least_two.probability(2) == Fraction(1, 3)
        assert at_least_two.probability(3) == Fraction(2, 3)

    def test_condition_on_null_event(self):
        with pytest.raises(ProbabilityError):
            Distribution({1: 1}).condition(lambda x: x > 5)

    def test_expectation(self):
        d = Distribution({0: 1, 10: 1})
        assert d.expectation(lambda x: x) == 5

    def test_probability_of(self):
        d = Distribution({1: 1, 2: 1, 3: 2})
        assert d.probability_of(lambda x: x >= 2) == Fraction(3, 4)

    def test_total_variation(self):
        d1 = Distribution({"a": 1, "b": 1})
        d2 = Distribution({"a": 1})
        assert d1.total_variation(d2) == HALF
        assert d1.total_variation(d1) == 0

    def test_product_distribution_helper(self):
        parts = [Distribution({0: 1, 1: 1}) for _ in range(3)]
        joint = product_distribution(parts)
        assert len(joint) == 8
        assert joint.probability((0, 1, 0)) == Fraction(1, 8)

    def test_product_distribution_empty(self):
        joint = product_distribution([])
        assert joint.probability(()) == 1


class TestValueSemantics:
    def test_equality_and_hash(self):
        a = Distribution({"x": 1, "y": 1})
        b = Distribution({"y": HALF, "x": HALF}, normalise=False)
        assert a == b
        assert hash(a) == hash(b)

    def test_support_and_contains(self):
        d = Distribution({"x": 1, "y": 0.0})
        assert d.support() == frozenset({"x"})
        assert "x" in d

    def test_getitem(self):
        d = Distribution({"x": 1})
        assert d["x"] == 1
        assert d["missing"] == 0


class TestSampling:
    def test_sample_within_support(self):
        d = Distribution({"a": 1, "b": 2})
        rng = random.Random(0)
        assert all(d.sample(rng) in ("a", "b") for _ in range(100))

    def test_sample_frequencies(self):
        d = Distribution({"a": 1, "b": 3})
        rng = random.Random(7)
        draws = d.sample_many(rng, 4000)
        assert abs(draws.count("b") / 4000 - 0.75) < 0.03

    def test_point_sample_deterministic(self):
        d = Distribution.point("only")
        assert d.sample(random.Random(5)) == "only"

    def test_as_floats(self):
        d = Distribution({"a": 1, "b": 1})
        assert d.as_floats() == {"a": 0.5, "b": 0.5}


class TestAsFraction:
    def test_int(self):
        assert as_fraction(2) == 2

    def test_fraction_passthrough(self):
        assert as_fraction(HALF) is HALF

    def test_float_exact_binary(self):
        assert as_fraction(0.5) == HALF

    def test_infinite_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction(float("inf"))

    def test_bad_type_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction("0.5")
