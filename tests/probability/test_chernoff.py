"""Unit tests for Chernoff/Hoeffding sample-size planning."""

import math
import random

import pytest

from repro.errors import ProbabilityError
from repro.probability import (
    hoeffding_epsilon,
    hoeffding_failure_probability,
    hoeffding_sample_count,
    majority_vote_failure_probability,
    majority_vote_runs,
    paper_sample_count,
)


class TestPaperBound:
    def test_formula(self):
        # m >= ln(1/δ) / (4 ε²), Theorem 4.3.
        assert paper_sample_count(0.05, 0.05) == math.ceil(
            math.log(20) / (4 * 0.05**2)
        )

    def test_monotone_in_epsilon(self):
        assert paper_sample_count(0.01, 0.05) > paper_sample_count(0.1, 0.05)

    def test_logarithmic_in_delta(self):
        tight = paper_sample_count(0.1, 1e-6)
        loose = paper_sample_count(0.1, 1e-3)
        assert tight <= 2 * loose  # ln scaling

    def test_invalid_parameters(self):
        with pytest.raises(ProbabilityError):
            paper_sample_count(0, 0.1)
        with pytest.raises(ProbabilityError):
            paper_sample_count(0.1, 1.0)


class TestHoeffding:
    def test_failure_probability_bound_holds_empirically(self):
        """Empirical check of Pr(|p̂ − p| ≥ ε) ≤ 2 exp(−2ε²m)."""
        rng = random.Random(123)
        p, epsilon, m = 0.3, 0.1, hoeffding_sample_count(0.1, 0.05)
        failures = 0
        trials = 200
        for _ in range(trials):
            estimate = sum(rng.random() < p for _ in range(m)) / m
            failures += abs(estimate - p) >= epsilon
        assert failures / trials <= 0.05 + 0.03

    def test_count_round_trip(self):
        m = hoeffding_sample_count(0.05, 0.01)
        assert hoeffding_failure_probability(0.05, m) <= 0.01

    def test_epsilon_round_trip(self):
        m = 2000
        epsilon = hoeffding_epsilon(m, 0.05)
        assert hoeffding_sample_count(epsilon, 0.05) <= m + 1

    def test_invalid_inputs(self):
        with pytest.raises(ProbabilityError):
            hoeffding_failure_probability(0.1, 0)
        with pytest.raises(ProbabilityError):
            hoeffding_epsilon(0, 0.1)
        with pytest.raises(ProbabilityError):
            hoeffding_epsilon(10, 2.0)


class TestMajorityVote:
    def test_run_count_is_odd(self):
        assert majority_vote_runs(0.3, 0.01) % 2 == 1

    def test_amplification_logarithmic(self):
        n1 = majority_vote_runs(0.3, 1e-2)
        n2 = majority_vote_runs(0.3, 1e-4)
        assert n2 <= 2 * n1 + 2

    def test_bound_matches_run_count(self):
        runs = majority_vote_runs(0.3, 0.01)
        assert majority_vote_failure_probability(0.3, runs) <= 0.01

    def test_empirical_amplification(self):
        """A 30%-error decider amplified by majority vote."""
        rng = random.Random(9)
        per_run_error = 0.3
        runs = majority_vote_runs(per_run_error, 0.05)
        wrong = 0
        trials = 300
        for _ in range(trials):
            votes = sum(rng.random() >= per_run_error for _ in range(runs))
            wrong += votes <= runs // 2
        assert wrong / trials <= 0.05 + 0.03

    def test_rejects_error_at_half(self):
        with pytest.raises(ProbabilityError):
            majority_vote_runs(0.5, 0.1)
        with pytest.raises(ProbabilityError):
            majority_vote_failure_probability(0.6, 3)
