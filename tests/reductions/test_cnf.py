"""Unit tests for the CNF machinery."""

import pytest

from repro.reductions import (
    CNFFormula,
    random_3cnf,
    satisfiable_formula,
    unsatisfiable_formula,
)
from repro.reductions.cnf import CNFError


class TestFormula:
    def test_satisfied_by(self):
        f = CNFFormula(2, [(1, 2), (-1, 2)])
        assert f.satisfied_by([True, True])
        assert f.satisfied_by([False, True])
        assert not f.satisfied_by([True, False])

    def test_count_models(self):
        f = CNFFormula(2, [(1, 2), (-1, 2)])
        assert f.count_models() == 2

    def test_models_enumeration(self):
        f = CNFFormula(2, [(1,), (2,)])
        assert list(f.models()) == [(True, True)]

    def test_wrong_assignment_length(self):
        with pytest.raises(CNFError):
            CNFFormula(2, [(1,)]).satisfied_by([True])

    def test_validation(self):
        with pytest.raises(CNFError):
            CNFFormula(0, [(1,)])
        with pytest.raises(CNFError):
            CNFFormula(2, [])
        with pytest.raises(CNFError):
            CNFFormula(2, [()])
        with pytest.raises(CNFError):
            CNFFormula(2, [(3,)])
        with pytest.raises(CNFError):
            CNFFormula(2, [(0,)])

    def test_repr(self):
        assert "x1" in repr(CNFFormula(2, [(1, -2)]))
        assert "¬x2" in repr(CNFFormula(2, [(1, -2)]))


class TestDPLL:
    def test_agrees_with_brute_force_on_random_instances(self):
        for seed in range(20):
            f = random_3cnf(5, 12, rng=seed)
            assert f.is_satisfiable() == (f.count_models() > 0)

    def test_canonical_instances(self):
        assert satisfiable_formula(3).is_satisfiable()
        assert not unsatisfiable_formula(3).is_satisfiable()

    def test_unit_propagation_chain(self):
        f = CNFFormula(3, [(1,), (-1, 2), (-2, 3)])
        assert f.is_satisfiable()
        assert f.count_models() == 1

    def test_contradiction_found(self):
        f = CNFFormula(1, [(1,), (-1,)])
        assert not f.is_satisfiable()


class TestGenerators:
    def test_random_3cnf_shape(self):
        f = random_3cnf(6, 10, rng=1)
        assert f.num_variables == 6
        assert f.num_clauses == 10
        for clause in f.clauses:
            assert len(clause) == 3
            assert len({abs(l) for l in clause}) == 3

    def test_random_3cnf_deterministic_by_seed(self):
        assert random_3cnf(5, 8, rng=4).clauses == random_3cnf(5, 8, rng=4).clauses

    def test_random_3cnf_needs_3_variables(self):
        with pytest.raises(CNFError):
            random_3cnf(2, 3, rng=0)

    def test_satisfiable_formula_model_count(self):
        # x1=x2=x3=true forced; extra variables free
        assert satisfiable_formula(3).count_models() == 1
        assert satisfiable_formula(5).count_models() == 4

    def test_unsatisfiable_formula(self):
        assert unsatisfiable_formula(4).count_models() == 0
