"""Unit tests for the Theorem 5.1 reduction.

Exact chain evaluation on these instances is expensive (the hardness is
the point), so the formulas here are minimal: 2 variables, 1–2 clauses.
"""

import random

import pytest

from repro.core import simulate_trajectory
from repro.reductions import (
    CNFFormula,
    build_thm51_instance,
    decide_sat_via_absolute_approximation,
    simulated_probability,
    thm51_exact_probability,
)


SAT = CNFFormula(2, [(1, 2)])
UNSAT = CNFFormula(2, [(1,), (-1,)])


class TestLemma52:
    def test_satisfiable_gives_one(self):
        instance = build_thm51_instance(SAT)
        result = thm51_exact_probability(instance)
        assert result.probability == 1
        assert result.method == "thm-5.5"

    def test_unsatisfiable_gives_zero(self):
        instance = build_thm51_instance(UNSAT)
        result = thm51_exact_probability(instance)
        assert result.probability == 0

    def test_expected_probability_helper(self):
        assert build_thm51_instance(SAT).expected_probability() == 1
        assert build_thm51_instance(UNSAT).expected_probability() == 0


class TestSimulation:
    def test_satisfiable_converges_to_one(self):
        instance = build_thm51_instance(SAT)
        assert simulated_probability(instance, 800, rng=1) > 0.8

    def test_unsatisfiable_stays_zero(self):
        instance = build_thm51_instance(UNSAT)
        assert simulated_probability(instance, 800, rng=1) == 0.0

    def test_done_persists_once_reached(self):
        """The done(X) :- done(X) rule keeps the event absorbing."""
        instance = build_thm51_instance(SAT)
        trajectory = simulate_trajectory(
            instance.query, instance.initial, 120, random.Random(3)
        )
        seen = False
        for state in trajectory:
            holds = instance.event.holds(state)
            if seen:
                assert holds
            seen = seen or holds
        assert seen


class TestConstructionShape:
    def test_pc_table_attached(self):
        instance = build_thm51_instance(SAT)
        assert instance.query.kernel.pc_tables is not None
        assert "a" in instance.query.kernel.pc_tables.tables

    def test_assignment_resampled_each_step(self):
        """The non-inflationary pc-table semantics: ``a`` varies along a
        trajectory."""
        instance = build_thm51_instance(SAT)
        trajectory = simulate_trajectory(
            instance.query, instance.initial, 60, random.Random(7)
        )
        assignments = {state["a"] for state in trajectory}
        assert len(assignments) > 1

    def test_assignment_always_consistent(self):
        """Each sampled ``a`` holds exactly one literal per variable."""
        instance = build_thm51_instance(SAT)
        trajectory = simulate_trajectory(
            instance.query, instance.initial, 40, random.Random(5)
        )
        for state in trajectory:
            literals = {row[0] for row in state["a"]}
            for v in (1, 2):
                assert (f"v{v}" in literals) != (f"nv{v}" in literals)


class TestDecisionProcedure:
    def test_decides_sat(self):
        assert decide_sat_via_absolute_approximation(SAT, steps=800, rng=2)

    def test_decides_unsat(self):
        assert not decide_sat_via_absolute_approximation(UNSAT, steps=800, rng=2)

    def test_epsilon_validated(self):
        with pytest.raises(ValueError):
            decide_sat_via_absolute_approximation(SAT, epsilon=0.7, steps=10, rng=0)
