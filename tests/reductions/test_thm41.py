"""Unit tests for the Theorem 4.1 reduction."""

from fractions import Fraction

import pytest

from repro.reductions import (
    CNFFormula,
    build_thm41_instance,
    decide_sat_via_relative_approximation,
    random_3cnf,
    satisfiable_formula,
    thm41_exact_probability,
    thm41_sampled_probability,
    unsatisfiable_formula,
)


class TestLemma42:
    """p = ♯models / 2ⁿ — checked with exact equality."""

    @pytest.mark.parametrize("variant", ["2'", "2"])
    def test_satisfiable_probability(self, variant):
        f = satisfiable_formula(3)
        instance = build_thm41_instance(f, variant)
        result = thm41_exact_probability(instance)
        assert result.probability == Fraction(1, 8)
        assert result.probability == instance.expected_probability()

    @pytest.mark.parametrize("variant", ["2'", "2"])
    def test_unsatisfiable_probability_zero(self, variant):
        f = unsatisfiable_formula(3)
        instance = build_thm41_instance(f, variant)
        assert thm41_exact_probability(instance).probability == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances_count_models(self, seed):
        f = random_3cnf(4, 5, rng=seed)
        instance = build_thm41_instance(f)
        result = thm41_exact_probability(instance)
        assert result.probability == Fraction(f.count_models(), 2**4)

    def test_variants_agree(self):
        f = random_3cnf(3, 4, rng=9)
        p_ctable = thm41_exact_probability(build_thm41_instance(f, "2'")).probability
        p_repair = thm41_exact_probability(build_thm41_instance(f, "2")).probability
        assert p_ctable == p_repair

    def test_lower_bound_when_satisfiable(self):
        f = random_3cnf(4, 4, rng=3)
        instance = build_thm41_instance(f)
        p = thm41_exact_probability(instance).probability
        if f.is_satisfiable():
            assert p >= Fraction(1, 2**4)
        else:
            assert p == 0


class TestConstructionShape:
    def test_program_is_linear(self):
        instance = build_thm41_instance(satisfiable_formula(3))
        assert instance.program.is_linear()

    def test_pctable_variant_has_no_probabilistic_rules(self):
        instance = build_thm41_instance(satisfiable_formula(3), "2'")
        assert not instance.program.has_probabilistic_rules()
        assert instance.pc_tables is not None

    def test_repairkey_variant_has_probabilistic_rule(self):
        instance = build_thm41_instance(satisfiable_formula(3), "2")
        assert instance.program.has_probabilistic_rules()
        assert instance.pc_tables is None

    def test_chain_length(self):
        f = CNFFormula(3, [(1, 2, 3), (-1, -2, -3)])
        instance = build_thm41_instance(f)
        assert len(instance.edb["o"]) == f.num_clauses

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            build_thm41_instance(satisfiable_formula(3), "nope")


class TestDecisionProcedure:
    @pytest.mark.parametrize("variant", ["2'", "2"])
    def test_decides_sat_correctly(self, variant):
        assert decide_sat_via_relative_approximation(
            satisfiable_formula(3), variant
        )
        assert not decide_sat_via_relative_approximation(
            unsatisfiable_formula(3), variant
        )

    def test_agrees_with_dpll_on_random_instances(self):
        for seed in range(3):
            f = random_3cnf(3, 6, rng=seed + 100)
            assert (
                decide_sat_via_relative_approximation(f) == f.is_satisfiable()
            )


class TestSamplingCannotSeeTinyProbabilities:
    def test_absolute_sampler_misses_rare_event(self):
        """The Table 1 gap: with p = 2⁻ⁿ and few samples, an absolute
        approximation typically returns 0 — relative approximation is
        the hard column, absolute the easy one."""
        f = satisfiable_formula(6)  # p = 8/64 = 1/8
        instance = build_thm41_instance(f)
        expected = float(instance.expected_probability())
        result = thm41_sampled_probability(instance, samples=10, rng=5)
        # the estimate is a legal absolute approximation at eps ~ 0.3
        # even though it carries no relative information about p
        assert abs(result.estimate - expected) < 0.3
