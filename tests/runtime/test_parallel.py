"""Parallel trial execution: determinism, budgets, cancellation."""

import threading

import pytest

from repro.core import evaluate_forever_mcmc, evaluate_inflationary_sampling
from repro.errors import BudgetExceededError, EvaluationError, RunCancelledError
from repro.perf import ParallelConfig, prorated_budgets, split_trials, worker_seeds
from repro.probability.rng import make_rng
from repro.runtime import Budget, RunContext
from repro.workloads import (
    WeightedGraph,
    cycle_graph,
    random_walk_query,
    reachability_query,
)


@pytest.fixture(scope="module")
def walk():
    return random_walk_query(cycle_graph(6), "n0", "n3")


@pytest.fixture(scope="module")
def inflationary():
    """Example 3.5 reachability with a genuine coin flip: from ``s`` the
    walker claims exactly one of two successors, so P(reach ``a``) = 1/2."""
    graph = WeightedGraph(
        ("s", "a", "b"), [("s", "a", 1), ("s", "b", 1)]
    )
    return reachability_query(graph, "s", "a")


class TestHelpers:
    def test_split_trials_sums_exactly(self):
        assert split_trials(10, 4) == [3, 3, 2, 2]
        assert split_trials(3, 4) == [1, 1, 1, 0]
        assert sum(split_trials(997, 13)) == 997

    def test_worker_seeds_deterministic(self):
        assert worker_seeds(make_rng(5), 4) == worker_seeds(make_rng(5), 4)
        assert worker_seeds(make_rng(5), 4) != worker_seeds(make_rng(6), 4)

    def test_prorated_budget_shares_sum_to_remainder(self):
        context = RunContext(Budget(max_steps=100))
        context.tick_steps(10)
        budgets = prorated_budgets(context, 4)
        assert sum(b.max_steps for b in budgets) == 90

    def test_prorated_budget_unlimited(self):
        budgets = prorated_budgets(None, 3)
        assert all(b.is_unlimited for b in budgets)

    def test_rejects_zero_workers(self):
        with pytest.raises(EvaluationError):
            ParallelConfig(workers=0)


class TestMcmcDeterminism:
    def test_workers_1_bit_identical_to_sequential(self, walk):
        query, db = walk
        sequential = evaluate_forever_mcmc(query, db, samples=30, burn_in=6, rng=11)
        single = evaluate_forever_mcmc(
            query, db, samples=30, burn_in=6, rng=11, parallel=ParallelConfig(workers=1)
        )
        assert single.positive == sequential.positive
        assert single.estimate == sequential.estimate
        assert "workers" not in single.details

    def test_workers_4_seed_stable_across_runs(self, walk):
        query, db = walk
        config = ParallelConfig(workers=4)
        first = evaluate_forever_mcmc(
            query, db, samples=24, burn_in=5, rng=11, parallel=config
        )
        second = evaluate_forever_mcmc(
            query, db, samples=24, burn_in=5, rng=11, parallel=config
        )
        assert first.positive == second.positive
        assert first.samples == second.samples == 24
        assert first.details["workers"] == 4

    def test_worker_count_changes_stream_not_validity(self, walk):
        query, db = walk
        par2 = evaluate_forever_mcmc(
            query, db, samples=24, burn_in=5, rng=11, parallel=ParallelConfig(workers=2)
        )
        assert 0.0 <= par2.estimate <= 1.0
        assert par2.samples == 24

    def test_checkpoint_path_disables_pool(self, walk, tmp_path):
        query, db = walk
        context = RunContext()
        result = evaluate_forever_mcmc(
            query,
            db,
            samples=8,
            burn_in=3,
            rng=11,
            parallel=ParallelConfig(workers=4),
            checkpoint_path=tmp_path / "ck.json",
            context=context,
        )
        sequential = evaluate_forever_mcmc(query, db, samples=8, burn_in=3, rng=11)
        assert result.positive == sequential.positive
        assert any("sequential" in event for event in context.report().events)


class TestInflationaryDeterminism:
    def test_workers_1_bit_identical_to_sequential(self, inflationary):
        query, db = inflationary
        sequential = evaluate_inflationary_sampling(query, db, samples=40, rng=3)
        single = evaluate_inflationary_sampling(
            query, db, samples=40, rng=3, parallel=ParallelConfig(workers=1)
        )
        assert single.positive == sequential.positive

    def test_workers_4_seed_stable(self, inflationary):
        query, db = inflationary
        config = ParallelConfig(workers=4)
        first = evaluate_inflationary_sampling(
            query, db, samples=32, rng=3, parallel=config
        )
        second = evaluate_inflationary_sampling(
            query, db, samples=32, rng=3, parallel=config
        )
        assert first.positive == second.positive
        assert first.details["workers"] == 4
        # both outcomes are reachable, so a healthy estimate is interior
        assert 0.0 < first.estimate < 1.0


class TestBudgetsAndCancellation:
    def test_step_budget_propagates_into_workers(self, walk):
        query, db = walk
        context = RunContext(Budget(max_steps=20))
        with pytest.raises(BudgetExceededError) as excinfo:
            evaluate_forever_mcmc(
                query,
                db,
                samples=40,
                burn_in=50,
                rng=11,
                parallel=ParallelConfig(workers=2),
                context=context,
            )
        # details survive the process boundary (custom __reduce__)
        assert excinfo.value.details.get("resource") == "steps"
        # each worker got half of the 20-step allowance
        assert excinfo.value.details.get("limit") == 10

    def test_budget_respected_when_it_suffices(self, walk):
        query, db = walk
        context = RunContext(Budget(max_steps=2_000))
        result = evaluate_forever_mcmc(
            query,
            db,
            samples=20,
            burn_in=5,
            rng=11,
            parallel=ParallelConfig(workers=2),
            context=context,
        )
        assert result.samples == 20
        # workers' consumption is folded back into the parent counters
        assert context.steps_used == 100

    def test_cancellation_propagates_to_pool(self, walk):
        query, db = walk
        context = RunContext()
        timer = threading.Timer(0.2, context.cancel)
        timer.start()
        try:
            with pytest.raises(RunCancelledError):
                evaluate_forever_mcmc(
                    query,
                    db,
                    samples=100_000,
                    burn_in=50,
                    rng=11,
                    parallel=ParallelConfig(workers=2),
                    context=context,
                )
        finally:
            timer.cancel()
