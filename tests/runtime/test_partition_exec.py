"""Parity suite for partitioned evaluation (static-plan executor).

The load-bearing property: for every event shape the splitter accepts,
``evaluate_partitioned`` is **bit-identical** to whole-program exact
evaluation.  The recombination is only sound when the components are
independent — which the plan certifies — so any drift here means either
the planner or the recombination algebra is wrong.

The walkers are *lazy* (self-loops on every node), keeping each
component's chain aperiodic so its Cesàro limit exists — the standing
assumption of both this and the dynamic Section 5.1 partitioner.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis import analyze_kernel
from repro.analysis.partition import compute_partition_plan
from repro.core import ForeverQuery, Interpretation
from repro.core.evaluation import evaluate_forever_exact
from repro.core.evaluation.exact_inflationary import evaluate_inflationary_exact
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.core.events import (
    AndEvent,
    ExpressionEvent,
    NotEvent,
    OrEvent,
    RelationNonEmpty,
    TupleIn,
)
from repro.core.queries import InflationaryQuery
from repro.errors import EvaluationError
from repro.relational import (
    Database,
    Relation,
    join,
    project,
    rel,
    rename,
    repair_key,
    union,
)
from repro.runtime import (
    DegradationPolicy,
    RunContext,
    can_partition,
    evaluate_partitioned,
)


def walk_step(name: str):
    return rename(
        project(repair_key(join(rel(name), rel("E")), ("I",), "P"), "J"), J="I"
    )


@pytest.fixture
def two_walkers():
    """Two independent lazy walkers C and D on a shared static graph E."""
    kernel = Interpretation({"C": walk_step("C"), "D": walk_step("D")})
    db = Database(
        {
            "C": Relation(("I",), [("a",)]),
            "D": Relation(("I",), [("b",)]),
            "E": Relation(
                ("I", "J", "P"),
                [
                    ("a", "a", 1), ("a", "b", 1),
                    ("b", "b", 1), ("b", "a", 1),
                ],
            ),
        }
    )
    return kernel, db


def plan_for(kernel, db, event=None, semantics="forever"):
    plan = compute_partition_plan(
        kernel, database=db, event=event, semantics=semantics
    )
    assert plan.splittable
    return plan


EVENTS = {
    "single": TupleIn("C", ("b",)),
    "and": AndEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",))),
    "or": OrEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",))),
    "negated": AndEvent(TupleIn("C", ("b",)), NotEvent(TupleIn("D", ("a",)))),
    "static-and": AndEvent(TupleIn("C", ("b",)), RelationNonEmpty("E")),
    "static-or": OrEvent(TupleIn("C", ("b",)), NotEvent(RelationNonEmpty("E"))),
}


class TestForeverParity:
    @pytest.mark.parametrize("name", sorted(EVENTS), ids=sorted(EVENTS))
    def test_bit_identical_to_monolithic(self, two_walkers, name):
        kernel, db = two_walkers
        event = EVENTS[name]
        query = ForeverQuery(kernel, event)
        whole = evaluate_forever_exact(query, db)
        part = evaluate_partitioned(query, db, plan_for(kernel, db))
        assert isinstance(part, ExactResult)
        assert part.probability == whole.probability  # exact Fractions
        assert part.method == "partition-exact"

    def test_pruning_shrinks_the_state_space(self, two_walkers):
        kernel, db = two_walkers
        query = ForeverQuery(kernel, TupleIn("C", ("b",)))
        whole = evaluate_forever_exact(query, db)
        part = evaluate_partitioned(query, db, plan_for(kernel, db))
        assert part.details["pruned"]  # D's component never ran
        assert part.states_explored < whole.states_explored

    def test_known_value(self, two_walkers):
        kernel, db = two_walkers
        result = evaluate_partitioned(
            ForeverQuery(
                kernel, AndEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",)))
            ),
            db,
            plan_for(kernel, db),
        )
        # Symmetric lazy walkers: each is at either node with Cesàro
        # probability 1/2; independence gives 1/4.
        assert result.probability == Fraction(1, 4)

    def test_context_reports_partition_method(self, two_walkers):
        kernel, db = two_walkers
        context = RunContext()
        evaluate_partitioned(
            ForeverQuery(kernel, TupleIn("C", ("b",))),
            db,
            plan_for(kernel, db),
            context=context,
        )
        report = context.report()
        assert report.outcome == "ok"
        assert report.method == "partition-exact"


class TestInflationaryParity:
    def test_bit_identical_to_monolithic(self, two_walkers):
        _, db = two_walkers
        # Accumulating walkers (Definition 3.4 requires a growing world).
        kernel = Interpretation(
            {
                "C": union(rel("C"), walk_step("C")),
                "D": union(rel("D"), walk_step("D")),
            }
        )
        event = AndEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",)))
        query = InflationaryQuery(kernel, event)
        whole = evaluate_inflationary_exact(query, db)
        part = evaluate_partitioned(
            query, db, plan_for(kernel, db, semantics="inflationary")
        )
        assert isinstance(part, ExactResult)
        assert part.probability == whole.probability


class TestParallelParity:
    def test_pool_path_bit_identical_to_serial(self, two_walkers):
        kernel, db = two_walkers
        query = ForeverQuery(
            kernel, OrEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",)))
        )
        plan = plan_for(kernel, db)
        serial = evaluate_partitioned(query, db, plan, workers=1)
        pooled = evaluate_partitioned(query, db, plan, workers=2)
        assert pooled.probability == serial.probability
        assert pooled.details["components"] == serial.details["components"]

    def test_profiled_pool_run_stitches_component_spans(self, two_walkers):
        from repro.obs import MemorySink, Tracer

        kernel, db = two_walkers
        query = ForeverQuery(
            kernel, AndEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",)))
        )
        plan = plan_for(kernel, db)
        serial = evaluate_partitioned(query, db, plan, workers=1)
        context = RunContext(tracer=Tracer(MemorySink()))
        pooled = evaluate_partitioned(
            query, db, plan, workers=2, context=context
        )
        # Profiling never perturbs the answer — still bit-identical.
        assert pooled.probability == serial.probability
        records = context.tracer.sink.records
        spans = {r["span"]: r for r in records if r.get("type") == "span"}
        component_spans = [
            r for r in spans.values() if r["name"] == "component-solve"
        ]
        # One worker-attributed subtree per component, stitched under
        # the dispatching partition-solve span.
        assert {r["attrs"]["component"] for r in component_spans} == {
            "c0", "c1",
        }
        dispatch = next(
            r for r in spans.values() if r["name"] == "partition-solve"
        )
        for record in component_spans:
            assert record["parent"] == dispatch["span"]
            assert "worker_id" in record["attrs"]
            assert record["attrs"]["spawn_generation"] is not None
        # The worker's inner rung phases arrive too, as children.
        inner = {
            r["name"] for r in spans.values()
            if r.get("parent") in {c["span"] for c in component_spans}
        }
        assert "chain-build" in inner

    def test_profiled_pool_run_fills_the_ledger(self, two_walkers):
        from repro.obs import MemorySink, Tracer

        kernel, db = two_walkers
        query = ForeverQuery(kernel, TupleIn("C", ("b",)))
        plan = plan_for(kernel, db)
        context = RunContext(tracer=Tracer(MemorySink()))
        evaluate_partitioned(query, db, plan, workers=2, context=context)
        ledger = context.report().as_dict()["ledger"]
        rows = {
            (row["phase"], row["component"]): row["counters"]
            for row in ledger["rows"]
        }
        solve_rows = [
            key for key in rows if key[0] == "partition-solve"
        ]
        assert solve_rows  # one per evaluated component
        for key in solve_rows:
            assert rows[key]["states"] >= 1

    def test_serial_run_fills_the_ledger_identically(self, two_walkers):
        kernel, db = two_walkers
        query = ForeverQuery(
            kernel, AndEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",)))
        )
        plan = plan_for(kernel, db)
        serial_ctx = RunContext()
        evaluate_partitioned(query, db, plan, workers=1, context=serial_ctx)
        pooled_ctx = RunContext()
        evaluate_partitioned(query, db, plan, workers=2, context=pooled_ctx)
        assert (
            serial_ctx.ledger.as_dict()["rows"]
            == pooled_ctx.ledger.as_dict()["rows"]
        )


class TestRefusals:
    def test_cross_component_factor_is_refused(self, two_walkers):
        kernel, db = two_walkers
        joint = ExpressionEvent(join(rel("C"), rel("D")))
        plan = plan_for(kernel, db)
        assert not can_partition(plan, joint)
        with pytest.raises(EvaluationError, match="spans components"):
            evaluate_partitioned(ForeverQuery(kernel, joint), db, plan)

    def test_unsplittable_program_is_refused(self, two_walkers):
        _, db = two_walkers
        coupled = Interpretation(
            {"C": walk_step("C"), "D": join(rel("D"), project(rel("C"), "I"))}
        )
        plan = compute_partition_plan(coupled, database=db, semantics="forever")
        assert not plan.splittable
        event = TupleIn("C", ("b",))
        assert not can_partition(plan, event)
        with pytest.raises(EvaluationError, match="splittable"):
            evaluate_partitioned(ForeverQuery(coupled, event), db, plan)


class TestMixedRungs:
    def test_degraded_components_sum_error_bounds(self, two_walkers):
        kernel, db = two_walkers
        event = AndEvent(TupleIn("C", ("b",)), TupleIn("D", ("a",)))
        query = ForeverQuery(kernel, event)
        policy = DegradationPolicy(mode="mcmc", mcmc_epsilon=0.2, mcmc_delta=0.1)
        result = evaluate_partitioned(
            ForeverQuery(kernel, event),
            db,
            plan_for(kernel, db),
            max_states=1,  # exact rung cannot fit either component
            policy=policy,
            seed=7,
        )
        assert isinstance(result, SamplingResult)
        assert result.method == "partition-mixed"
        assert abs(result.estimate - 0.25) < 0.2
        # union bound over two degraded components
        assert result.epsilon == pytest.approx(0.4)
        assert result.delta == pytest.approx(0.2)

    def test_seeded_runs_are_reproducible(self, two_walkers):
        kernel, db = two_walkers
        event = TupleIn("C", ("b",))
        policy = DegradationPolicy(mode="mcmc", mcmc_samples=200)
        kwargs = dict(max_states=1, policy=policy, seed=11)
        plan = plan_for(kernel, db)
        first = evaluate_partitioned(ForeverQuery(kernel, event), db, plan, **kwargs)
        second = evaluate_partitioned(ForeverQuery(kernel, event), db, plan, **kwargs)
        assert first.estimate == second.estimate


class TestPlanIntegration:
    def test_analysis_plan_feeds_the_executor(self, two_walkers):
        """The plan lint/admission computes is the plan the executor runs."""
        kernel, db = two_walkers
        analysis = analyze_kernel(kernel, database=db, semantics="forever")
        assert analysis.partition is not None
        event = TupleIn("C", ("b",))
        assert can_partition(analysis.partition, event)
        result = evaluate_partitioned(
            ForeverQuery(kernel, event), db, analysis.partition
        )
        whole = evaluate_forever_exact(ForeverQuery(kernel, event), db)
        assert result.probability == whole.probability
