"""Graceful exact → sparse → lumped → MCMC degradation."""

import pytest

from fractions import Fraction

from repro.core.evaluation import evaluate_forever_exact
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.errors import (
    BudgetExceededError,
    EvaluationError,
    StateSpaceLimitExceeded,
)
from repro.runtime import Budget, DegradationPolicy, RunContext, evaluate_forever_resilient
from repro.workloads import cycle_graph, random_walk_query


@pytest.fixture
def small_walk():
    """4-state chain: exact fits in 4 states, not in 3."""
    return random_walk_query(cycle_graph(4), "n0", "n2")


@pytest.fixture
def larger_walk():
    """6-state chain, for forcing the MCMC rung."""
    return random_walk_query(cycle_graph(6), "n0", "n3")


class TestPolicy:
    def test_ladders(self):
        assert DegradationPolicy(mode="none").ladder == ("exact",)
        assert DegradationPolicy(mode="sparse").ladder == ("exact", "sparse")
        assert DegradationPolicy(mode="lumped").ladder == ("exact", "lumped")
        assert DegradationPolicy(mode="mcmc").ladder == ("exact", "mcmc")
        assert DegradationPolicy(mode="auto").ladder == (
            "exact", "sparse", "lumped", "mcmc"
        )

    def test_rejects_unknown_mode(self):
        with pytest.raises(EvaluationError):
            DegradationPolicy(mode="punt")

    def test_rejects_bad_factor(self):
        with pytest.raises(EvaluationError):
            DegradationPolicy(lumped_state_factor=0)

    def test_rejects_bad_sparse_knobs(self):
        with pytest.raises(EvaluationError):
            DegradationPolicy(sparse_epsilon=0.0)
        with pytest.raises(EvaluationError):
            DegradationPolicy(sparse_state_factor=0)
        with pytest.raises(EvaluationError):
            DegradationPolicy(sparse_max_iterations=0)


class TestDegradationLadder:
    def test_no_downgrade_when_exact_fits(self, small_walk):
        query, db = small_walk
        context = RunContext()
        result = evaluate_forever_resilient(query, db, context=context)
        assert isinstance(result, ExactResult)
        assert result.probability == Fraction(1, 4)
        report = context.report()
        assert report.outcome == "ok"
        assert report.downgrades == []

    def test_mode_none_raises_like_legacy(self, small_walk):
        query, db = small_walk
        with pytest.raises(StateSpaceLimitExceeded):
            evaluate_forever_resilient(
                query, db, max_states=3, policy=DegradationPolicy(mode="none")
            )

    def test_exact_falls_back_to_lumped_same_answer(self, small_walk):
        query, db = small_walk
        context = RunContext()
        result = evaluate_forever_resilient(
            query,
            db,
            max_states=3,
            policy=DegradationPolicy(mode="lumped"),
            context=context,
        )
        assert isinstance(result, ExactResult)
        assert result.method == "lumped"
        exact = evaluate_forever_exact(query, db)
        assert result.probability == exact.probability
        report = context.report()
        assert [(d.from_method, d.to_method) for d in report.downgrades] == [
            ("exact", "lumped")
        ]
        assert "max_states=3" in report.downgrades[0].reason

    def test_auto_falls_back_to_certified_sparse(self, small_walk):
        """The auto ladder's first fallback is now the certified solver."""
        from repro.sparse import CertifiedResult

        query, db = small_walk
        context = RunContext()
        result = evaluate_forever_resilient(
            query,
            db,
            max_states=3,
            policy=DegradationPolicy(mode="auto"),
            context=context,
        )
        assert isinstance(result, CertifiedResult)
        exact = evaluate_forever_exact(query, db)
        assert abs(result.probability - float(exact.probability)) <= (
            result.certificate.bound
        )
        report = context.report()
        assert [(d.from_method, d.to_method) for d in report.downgrades] == [
            ("exact", "sparse")
        ]

    def test_full_ladder_reaches_mcmc(self, larger_walk):
        """sparse_state_factor=1 makes the sparse rung overflow too, so
        the run walks every rung of the auto ladder."""
        query, db = larger_walk
        context = RunContext()
        result = evaluate_forever_resilient(
            query,
            db,
            max_states=1,
            policy=DegradationPolicy(
                mode="auto", sparse_state_factor=1,
                mcmc_samples=100, mcmc_burn_in=30,
            ),
            context=context,
            rng=7,
        )
        assert isinstance(result, SamplingResult)
        assert result.method == "thm-5.6"
        assert 0.0 <= result.estimate <= 1.0
        report = context.report()
        assert [(d.from_method, d.to_method) for d in report.downgrades] == [
            ("exact", "sparse"),
            ("sparse", "lumped"),
            ("lumped", "mcmc"),
        ]
        assert report.outcome == "ok"
        assert report.method == "thm-5.6"

    def test_mcmc_rung_uses_adaptive_burn_in(self, larger_walk):
        query, db = larger_walk
        context = RunContext()
        result = evaluate_forever_resilient(
            query,
            db,
            max_states=1,
            policy=DegradationPolicy(
                mode="mcmc", mcmc_samples=50, adaptive_tolerance=0.12
            ),
            context=context,
            rng=3,
        )
        assert isinstance(result, SamplingResult)
        assert result.details["burn_in"] >= 1
        assert any("adaptive burn-in" in event for event in context.report().events)

    def test_last_rung_overflow_propagates(self, small_walk):
        query, db = small_walk
        with pytest.raises(StateSpaceLimitExceeded):
            evaluate_forever_resilient(
                query,
                db,
                max_states=1,
                policy=DegradationPolicy(mode="lumped", lumped_state_factor=2),
            )

    def test_budget_exhaustion_is_not_degraded(self, small_walk):
        """Out of wall-clock/steps means out for the fallback too."""
        query, db = small_walk
        context = RunContext(Budget(max_states=1))
        with pytest.raises(BudgetExceededError):
            evaluate_forever_resilient(
                query,
                db,
                policy=DegradationPolicy(mode="auto"),
                context=context,
            )

    def test_resilient_checkpoint_resume_matches_uninterrupted(
        self, larger_walk, tmp_path
    ):
        """The acceptance-criterion path: auto fallback to MCMC with a
        mid-run kill, resumed to the same final estimate."""
        query, db = larger_walk
        policy = DegradationPolicy(
            mode="auto", sparse_state_factor=1,
            mcmc_samples=40, mcmc_burn_in=11,
        )

        full = evaluate_forever_resilient(
            query, db, max_states=1, policy=policy, rng=5
        )

        path = tmp_path / "resilient.ckpt"
        with pytest.raises(BudgetExceededError):
            evaluate_forever_resilient(
                query,
                db,
                max_states=1,
                policy=policy,
                rng=5,
                context=RunContext(Budget(max_steps=11 * 20 + 3)),
                checkpoint_path=path,
            )
        context = RunContext()
        resumed = evaluate_forever_resilient(
            query,
            db,
            max_states=1,
            policy=policy,
            rng=5,
            context=context,
            resume=path,
        )
        assert resumed.estimate == full.estimate
        assert resumed.positive == full.positive
        assert any("skipping to MCMC" in event for event in context.report().events)
