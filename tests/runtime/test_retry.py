"""RetryPolicy: jittered backoff, deadlines, hints, idempotency keys."""

from __future__ import annotations

import random

import pytest

from repro.errors import BudgetExceededError, ReproError, RunCancelledError
from repro.runtime.retry import (
    CHUNK_RETRY,
    HTTP_RETRY,
    RetryPolicy,
    idempotency_key,
    is_retryable,
    retry_after_hint,
)


def transient(message: str = "transient") -> ReproError:
    return ReproError(message, retryable=True)


class TestErrorIntrospection:
    def test_is_retryable_reads_the_error_attribute(self):
        assert is_retryable(transient())
        assert not is_retryable(ReproError("permanent"))
        assert not is_retryable(ValueError("no attribute at all"))

    def test_terminal_errors_are_never_retryable(self):
        assert not is_retryable(BudgetExceededError("out of budget"))
        assert not is_retryable(RunCancelledError("cancelled"))

    def test_retry_after_hint_from_attribute(self):
        error = ReproError("slow down")
        error.retry_after = 2.5
        assert retry_after_hint(error) == 2.5

    def test_retry_after_hint_from_details(self):
        error = ReproError("busy", details={"retry_after": 1.0}, retryable=True)
        assert retry_after_hint(error) == 1.0

    def test_retry_after_hint_invalid_values(self):
        assert retry_after_hint(ReproError("no hint")) is None
        error = ReproError("bad", details={"retry_after": "soonish"})
        assert retry_after_hint(error) is None
        negative = ReproError("bad", details={"retry_after": -3})
        assert retry_after_hint(negative) is None


class TestIdempotencyKey:
    def test_stable_for_equal_payloads(self):
        a = idempotency_key({"program": "C := E", "seed": 7})
        b = idempotency_key({"seed": 7, "program": "C := E"})
        assert a == b
        assert len(a) == 32

    def test_distinct_for_distinct_payloads(self):
        assert idempotency_key({"seed": 7}) != idempotency_key({"seed": 8})

    def test_random_without_payload(self):
        assert idempotency_key() != idempotency_key()


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ReproError):
            RetryPolicy(**kwargs)

    def test_stack_defaults_are_sane(self):
        assert CHUNK_RETRY.max_attempts == 3
        assert HTTP_RETRY.max_attempts == 4
        assert CHUNK_RETRY.max_delay <= HTTP_RETRY.max_delay


class TestDelays:
    def test_ceiling_grows_exponentially_then_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        assert policy.backoff_ceiling(0) == pytest.approx(0.1)
        assert policy.backoff_ceiling(1) == pytest.approx(0.2)
        assert policy.backoff_ceiling(2) == pytest.approx(0.4)
        assert policy.backoff_ceiling(3) == 0.5
        assert policy.backoff_ceiling(10) == 0.5

    def test_delay_is_full_jitter_within_ceiling(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        rng = random.Random(11)
        draws = [policy.delay(3, rng=rng) for _ in range(200)]
        assert all(0.0 <= d <= 0.5 for d in draws)
        assert min(draws) < 0.1 and max(draws) > 0.4  # actually jittered

    def test_delay_is_deterministic_under_a_seeded_rng(self):
        policy = RetryPolicy(base_delay=0.1)
        assert (
            policy.delay(2, rng=random.Random(3))
            == policy.delay(2, rng=random.Random(3))
        )

    def test_zero_base_delay_means_zero_delay(self):
        assert RetryPolicy(base_delay=0.0).delay(5) == 0.0


class TestCall:
    def make(self, **kwargs) -> RetryPolicy:
        kwargs.setdefault("max_attempts", 4)
        kwargs.setdefault("base_delay", 0.01)
        return RetryPolicy(**kwargs)

    def test_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise transient()
            return "ok"

        sleeps: list[float] = []
        result = self.make().call(
            flaky, sleep=sleeps.append, rng=random.Random(5)
        )
        assert result == "ok"
        assert len(calls) == 3
        assert len(sleeps) <= 2  # zero-length jitter draws skip the sleep

    def test_gives_up_after_max_attempts(self):
        calls = []

        def always_failing():
            calls.append(1)
            raise transient()

        with pytest.raises(ReproError):
            self.make(max_attempts=3).call(
                always_failing, sleep=lambda _: None, rng=random.Random(5)
            )
        assert len(calls) == 3

    def test_non_retryable_error_raises_immediately(self):
        calls = []

        def permanent():
            calls.append(1)
            raise ReproError("permanent")

        with pytest.raises(ReproError):
            self.make().call(permanent, sleep=lambda _: None)
        assert len(calls) == 1

    def test_deadline_abandons_retries(self):
        now = [0.0]

        def failing():
            raise transient()

        with pytest.raises(ReproError):
            self.make(base_delay=1.0, multiplier=1.0, max_delay=1.0).call(
                failing,
                deadline=0.5,
                clock=lambda: now[0],
                sleep=lambda _: None,
                # rng irrelevant: any draw crossing the deadline aborts;
                # force a full-length pause via retry_after below instead.
                rng=random.Random(1),
            )

    def test_retry_after_hint_overrides_computed_backoff(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                error = transient("throttled")
                error.retry_after = 0.75
                raise error
            return "ok"

        sleeps: list[float] = []
        self.make(base_delay=0.0).call(flaky, sleep=sleeps.append)
        assert sleeps == [0.75]

    def test_retry_after_hint_respects_the_deadline(self):
        def throttled():
            error = transient("throttled")
            error.retry_after = 10.0
            raise error

        with pytest.raises(ReproError):
            self.make().call(
                throttled, deadline=1.0, clock=lambda: 0.0,
                sleep=lambda _: pytest.fail("must not sleep past deadline"),
            )

    def test_on_retry_hook_sees_attempt_error_and_pause(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise transient()
            return "ok"

        self.make(base_delay=0.0).call(
            flaky,
            sleep=lambda _: None,
            on_retry=lambda attempt, error, pause: seen.append(
                (attempt, type(error).__name__, pause)
            ),
        )
        assert seen == [(1, "ReproError", 0.0), (2, "ReproError", 0.0)]

    def test_custom_retryable_predicate(self):
        calls = []

        def failing():
            calls.append(1)
            raise ValueError("not a ReproError")

        with pytest.raises(ValueError):
            self.make(max_attempts=3).call(
                failing,
                retryable=lambda error: isinstance(error, ValueError),
                sleep=lambda _: None,
                rng=random.Random(2),
            )
        assert len(calls) == 3
