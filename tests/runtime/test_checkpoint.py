"""Checkpoint round-trip determinism and format validation.

The load-bearing property: a seeded MCMC run interrupted at sample k
(or mid-burn-in within a sample) and resumed from its checkpoint must
produce estimates bit-identical to the same seeded run left
uninterrupted — which exercises the full RNG state capture from
:mod:`repro.probability.rng`'s generators.
"""

import json

import pytest

from repro.core.evaluation import evaluate_forever_mcmc
from repro.errors import BudgetExceededError, CheckpointError, RunCancelledError
from repro.runtime import (
    Budget,
    Checkpoint,
    KIND_FOREVER_MCMC,
    RunContext,
    load_checkpoint,
)
from repro.workloads import cycle_graph, random_walk_query

BURN_IN = 13
SAMPLES = 40
SEED = 11


@pytest.fixture
def walk():
    return random_walk_query(cycle_graph(4), "n0", "n2")


def uninterrupted(walk):
    query, db = walk
    return evaluate_forever_mcmc(
        query, db, burn_in=BURN_IN, samples=SAMPLES, rng=SEED
    )


class TestRoundTripDeterminism:
    @pytest.mark.parametrize(
        "max_steps",
        [
            BURN_IN * 10,      # interrupt exactly on a sample boundary
            BURN_IN * 10 + 7,  # interrupt mid-burn-in (walker snapshot)
            1,                 # interrupt before the first full step
        ],
    )
    def test_resumed_estimate_is_bit_identical(self, walk, tmp_path, max_steps):
        query, db = walk
        full = uninterrupted(walk)

        path = tmp_path / "run.ckpt"
        with pytest.raises(BudgetExceededError):
            evaluate_forever_mcmc(
                query,
                db,
                burn_in=BURN_IN,
                samples=SAMPLES,
                rng=SEED,
                context=RunContext(Budget(max_steps=max_steps)),
                checkpoint_path=path,
            )
        assert path.exists()

        resumed = evaluate_forever_mcmc(query, db, rng=999, resume=path)
        assert resumed.estimate == full.estimate
        assert resumed.positive == full.positive
        assert resumed.samples == full.samples

    def test_double_interruption_still_identical(self, walk, tmp_path):
        """Interrupt, resume, interrupt again, resume again."""
        query, db = walk
        full = uninterrupted(walk)

        first = tmp_path / "first.ckpt"
        with pytest.raises(BudgetExceededError):
            evaluate_forever_mcmc(
                query,
                db,
                burn_in=BURN_IN,
                samples=SAMPLES,
                rng=SEED,
                context=RunContext(Budget(max_steps=100)),
                checkpoint_path=first,
            )
        second = tmp_path / "second.ckpt"
        with pytest.raises(BudgetExceededError):
            evaluate_forever_mcmc(
                query,
                db,
                resume=first,
                context=RunContext(Budget(max_steps=150)),
                checkpoint_path=second,
            )
        resumed = evaluate_forever_mcmc(query, db, resume=second)
        assert resumed.estimate == full.estimate
        assert resumed.positive == full.positive

    def test_cancellation_also_checkpoints(self, walk, tmp_path):
        query, db = walk
        path = tmp_path / "cancelled.ckpt"
        context = RunContext()
        context.cancel()
        with pytest.raises(RunCancelledError):
            evaluate_forever_mcmc(
                query,
                db,
                burn_in=BURN_IN,
                samples=SAMPLES,
                rng=SEED,
                context=context,
                checkpoint_path=path,
            )
        resumed = evaluate_forever_mcmc(query, db, resume=path)
        assert resumed.estimate == uninterrupted(walk).estimate

    def test_completed_run_removes_stale_checkpoint(self, walk, tmp_path):
        query, db = walk
        path = tmp_path / "stale.ckpt"
        path.write_text("{}")
        evaluate_forever_mcmc(
            query,
            db,
            burn_in=2,
            samples=5,
            rng=SEED,
            checkpoint_path=path,
        )
        assert not path.exists()

    def test_checkpoint_tallies_are_partial(self, walk, tmp_path):
        query, db = walk
        path = tmp_path / "partial.ckpt"
        with pytest.raises(BudgetExceededError):
            evaluate_forever_mcmc(
                query,
                db,
                burn_in=BURN_IN,
                samples=SAMPLES,
                rng=SEED,
                context=RunContext(Budget(max_steps=BURN_IN * 10 + 7)),
                checkpoint_path=path,
            )
        checkpoint = load_checkpoint(path)
        assert checkpoint.kind == KIND_FOREVER_MCMC
        assert checkpoint.samples_done == 10
        assert checkpoint.planned == SAMPLES
        assert checkpoint.burn_in == BURN_IN
        walker = checkpoint.walker_state()
        assert walker is not None
        _, steps_done = walker
        assert steps_done == 7


class TestFormatValidation:
    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("not json {")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v99.ckpt"
        path.write_text(json.dumps({"version": 99, "kind": KIND_FOREVER_MCMC}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "partial.ckpt"
        path.write_text(json.dumps({"version": 1, "kind": KIND_FOREVER_MCMC}))
        with pytest.raises(CheckpointError, match="missing field"):
            load_checkpoint(path)

    def test_rejects_inconsistent_tallies(self):
        with pytest.raises(CheckpointError):
            Checkpoint(
                kind=KIND_FOREVER_MCMC,
                samples_done=3,
                positive=5,
                planned=10,
                burn_in=1,
                epsilon=None,
                delta=None,
                rng_state=(3, (0,) * 625, None),
            )

    def test_rejects_wrong_kind_on_resume(self, walk, tmp_path):
        query, db = walk
        checkpoint = Checkpoint(
            kind="something-else",
            samples_done=0,
            positive=0,
            planned=10,
            burn_in=1,
            epsilon=None,
            delta=None,
            rng_state=(3, (0,) * 625, None),
        )
        path = tmp_path / "wrong-kind.ckpt"
        checkpoint.save(path)
        with pytest.raises(CheckpointError, match="kind"):
            evaluate_forever_mcmc(query, db, resume=path)

    def test_rejects_fingerprint_mismatch(self, walk, tmp_path):
        query, db = walk
        path = tmp_path / "mismatch.ckpt"
        with pytest.raises(BudgetExceededError):
            evaluate_forever_mcmc(
                query,
                db,
                burn_in=BURN_IN,
                samples=SAMPLES,
                rng=SEED,
                context=RunContext(Budget(max_steps=50)),
                checkpoint_path=path,
            )
        other_query, other_db = random_walk_query(cycle_graph(6), "n0", "n3")
        with pytest.raises(CheckpointError, match="does not match"):
            evaluate_forever_mcmc(other_query, other_db, resume=path)

    def test_save_load_round_trip(self, tmp_path):
        checkpoint = Checkpoint(
            kind=KIND_FOREVER_MCMC,
            samples_done=4,
            positive=2,
            planned=10,
            burn_in=3,
            epsilon=0.1,
            delta=0.05,
            rng_state=(3, tuple(range(625)), None),
            fingerprint="abc",
        )
        path = tmp_path / "rt.ckpt"
        checkpoint.save(path)
        loaded = load_checkpoint(path)
        assert loaded == checkpoint
