"""Budgets, cooperative cancellation, and run reports."""

import pytest

from repro.errors import BudgetExceededError, ProbabilityError, RunCancelledError
from repro.runtime import Budget, RunContext, ensure_context


class FakeClock:
    """Deterministic monotonic clock for wall-clock budget tests."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class TestBudget:
    def test_unlimited_by_default(self):
        assert Budget().is_unlimited
        assert Budget.unlimited().is_unlimited

    def test_any_axis_makes_it_limited(self):
        assert not Budget(wall_clock=1.0).is_unlimited
        assert not Budget(max_steps=1).is_unlimited
        assert not Budget(max_states=1).is_unlimited

    @pytest.mark.parametrize(
        "kwargs",
        [{"wall_clock": -1.0}, {"max_steps": -1}, {"max_states": -5}],
    )
    def test_rejects_negative_limits(self, kwargs):
        with pytest.raises(ProbabilityError):
            Budget(**kwargs)

    def test_as_dict(self):
        assert Budget(max_steps=7).as_dict() == {
            "wall_clock": None,
            "max_steps": 7,
            "max_states": None,
        }


class TestStepAndStateBudgets:
    def test_steps_within_budget(self):
        context = RunContext(Budget(max_steps=3))
        for _ in range(3):
            context.tick_steps()
        assert context.steps_used == 3

    def test_steps_over_budget(self):
        context = RunContext(Budget(max_steps=3))
        for _ in range(3):
            context.tick_steps()
        with pytest.raises(BudgetExceededError) as info:
            context.tick_steps()
        assert info.value.details["resource"] == "steps"
        assert info.value.details["limit"] == 3
        assert info.value.details["spent"] == 4

    def test_states_over_budget(self):
        context = RunContext(Budget(max_states=2))
        context.tick_states(2)
        with pytest.raises(BudgetExceededError) as info:
            context.tick_states()
        assert info.value.details["resource"] == "states"

    def test_bulk_charge(self):
        context = RunContext(Budget(max_steps=10))
        with pytest.raises(BudgetExceededError):
            context.tick_steps(11)

    def test_unlimited_context_never_trips(self):
        context = RunContext()
        context.tick_steps(10**6)
        context.tick_states(10**6)
        context.check()


class TestWallClock:
    def test_deadline_enforced(self):
        clock = FakeClock()
        context = RunContext(Budget(wall_clock=5.0), clock=clock)
        context.check()
        clock.advance(4.9)
        context.check()
        clock.advance(0.2)
        with pytest.raises(BudgetExceededError) as info:
            context.check()
        assert info.value.details["resource"] == "wall_clock"

    def test_remaining_time(self):
        clock = FakeClock()
        context = RunContext(Budget(wall_clock=10.0), clock=clock)
        clock.advance(4.0)
        assert context.remaining_time() == pytest.approx(6.0)
        assert RunContext(clock=clock).remaining_time() is None


class TestCancellation:
    def test_cancel_trips_next_check(self):
        context = RunContext()
        assert not context.cancelled
        context.cancel()
        assert context.cancelled
        with pytest.raises(RunCancelledError):
            context.check()

    def test_cancel_trips_tick(self):
        context = RunContext()
        context.cancel()
        with pytest.raises(RunCancelledError):
            context.tick_steps()


class TestRunReport:
    def test_successful_run(self):
        context = RunContext(Budget(max_steps=100))
        context.tick_steps(7)
        context.tick_states(3)
        context.record_event("note")
        context.finish(method="prop-5.4")
        report = context.report()
        assert report.outcome == "ok"
        assert report.method == "prop-5.4"
        assert report.spent["steps"] == 7
        assert report.spent["states"] == 3
        assert report.events == ["note"]
        assert report.budget["max_steps"] == 100

    def test_downgrades_recorded_in_order(self):
        context = RunContext()
        context.record_downgrade("exact", "lumped", "too many states")
        context.record_downgrade("lumped", "mcmc", "still too many")
        report = context.report()
        assert [(d.from_method, d.to_method) for d in report.downgrades] == [
            ("exact", "lumped"),
            ("lumped", "mcmc"),
        ]
        payload = report.as_dict()
        assert payload["downgrades"][0] == {
            "from": "exact",
            "to": "lumped",
            "reason": "too many states",
        }

    def test_budget_exceeded_outcome(self):
        context = RunContext(Budget(max_steps=1))
        context.tick_steps()
        with pytest.raises(BudgetExceededError):
            context.tick_steps()
        assert context.report().outcome == "budget_exceeded"

    def test_cancelled_outcome(self):
        context = RunContext()
        context.cancel()
        with pytest.raises(RunCancelledError):
            context.check()
        assert context.report().outcome == "cancelled"


class TestEnsureContext:
    def test_passthrough(self):
        context = RunContext()
        assert ensure_context(context) is context

    def test_none_becomes_unlimited(self):
        context = ensure_context(None)
        assert context.budget.is_unlimited
