"""Crash-safe checkpoint writes under injected torn-write faults.

The rename-into-place protocol promises a reader sees either the old
complete checkpoint or the new complete checkpoint, never a torn file.
These tests fire the ``checkpoint.write`` fault site to simulate the
writer dying mid-write and check the promise holds.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.evaluation import evaluate_forever_mcmc
from repro.errors import CheckpointError
from repro.faults import (
    SITE_CHECKPOINT_WRITE,
    SITE_SAMPLER_SAMPLE,
    FaultPlan,
    FaultSpec,
)
from repro.runtime import load_checkpoint
from repro.workloads import cycle_graph, random_walk_query

BURN_IN = 13
SAMPLES = 40
SEED = 11


@pytest.fixture
def walk():
    return random_walk_query(cycle_graph(4), "n0", "n2")


@pytest.fixture(autouse=True)
def clean_plan():
    faults.uninstall()
    yield
    faults.uninstall()


class TestTornWrite:
    def make_checkpoint(self, walk, tmp_path, name="seed.ckpt"):
        """Interrupt a real run to obtain a genuine checkpoint object."""
        query, db = walk
        path = tmp_path / name
        faults.install(FaultPlan(
            [FaultSpec(SITE_SAMPLER_SAMPLE, "raise", after=5, transient=False)]
        ))
        with pytest.raises(Exception):
            evaluate_forever_mcmc(
                query, db, burn_in=BURN_IN, samples=SAMPLES, rng=SEED,
                checkpoint_path=path,
            )
        faults.uninstall()
        assert path.exists()
        return load_checkpoint(path)

    def test_torn_write_raises_retryable_and_leaves_no_target(
        self, walk, tmp_path
    ):
        checkpoint = self.make_checkpoint(walk, tmp_path)
        target = tmp_path / "fresh.ckpt"
        faults.install(FaultPlan(
            [FaultSpec(SITE_CHECKPOINT_WRITE, "torn-write")]
        ))
        with pytest.raises(CheckpointError) as excinfo:
            checkpoint.save(target)
        assert excinfo.value.retryable
        assert not target.exists()  # the rename never happened
        # The truncated temp file is the only debris.
        temp = target.with_name(target.name + ".tmp")
        assert temp.exists()
        assert len(temp.read_text()) < len(
            (tmp_path / "seed.ckpt").read_text()
        )

    def test_torn_overwrite_preserves_the_old_checkpoint(
        self, walk, tmp_path
    ):
        checkpoint = self.make_checkpoint(walk, tmp_path)
        target = tmp_path / "stable.ckpt"
        checkpoint.save(target)
        before = target.read_text()

        faults.install(FaultPlan(
            [FaultSpec(SITE_CHECKPOINT_WRITE, "torn-write")]
        ))
        with pytest.raises(CheckpointError):
            checkpoint.save(target)
        # Old complete checkpoint intact and still loadable.
        assert target.read_text() == before
        assert load_checkpoint(target).samples_done == checkpoint.samples_done

    def test_save_succeeds_once_the_fault_window_closes(self, walk, tmp_path):
        checkpoint = self.make_checkpoint(walk, tmp_path)
        target = tmp_path / "retry.ckpt"
        faults.install(FaultPlan(
            [FaultSpec(SITE_CHECKPOINT_WRITE, "torn-write", times=1)]
        ))
        with pytest.raises(CheckpointError):
            checkpoint.save(target)
        checkpoint.save(target)  # the retry: fault window exhausted
        restored = load_checkpoint(target)
        assert restored.samples_done == checkpoint.samples_done
        assert restored.rng_state == checkpoint.rng_state

    def test_resume_after_torn_write_is_bit_identical(self, walk, tmp_path):
        """End-to-end: die mid-run with a torn final write, retry the
        write, resume — the estimate matches the uninterrupted run."""
        query, db = walk
        full = evaluate_forever_mcmc(
            query, db, burn_in=BURN_IN, samples=SAMPLES, rng=SEED
        )
        checkpoint = self.make_checkpoint(walk, tmp_path)
        target = tmp_path / "resume.ckpt"
        checkpoint.save(target)
        resumed = evaluate_forever_mcmc(query, db, rng=999, resume=target)
        assert resumed.estimate == full.estimate
        assert resumed.positive == full.positive
        assert resumed.samples == full.samples
