"""Direct tests for public helpers only exercised indirectly elsewhere."""

from fractions import Fraction

import pytest

from repro.cli import build_arg_parser
from repro.datalog import parse_rule, rule_choice_expression, strip_auxiliary
from repro.datalog.compiler import compile_body, head_projection
from repro.markov import chain_from_edges, transition_graph
from repro.reductions import CNFFormula
from repro.relational import Database, Relation, enumerate_worlds, evaluate


class TestBuildArgParser:
    def test_subcommands_registered(self):
        parser = build_arg_parser()
        args = parser.parse_args(
            ["datalog", "p.dl", "--db", "d.json", "--event", "c(w)"]
        )
        assert args.command == "datalog"
        assert args.event == "c(w)"

    def test_missing_subcommand_rejected(self):
        parser = build_arg_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])


class TestTransitionGraph:
    def test_edges_and_nodes(self):
        chain = chain_from_edges([("a", "b", 1), ("b", "a", 1), ("b", "b", 1)])
        graph = transition_graph(chain)
        assert set(graph.nodes) == {"a", "b"}
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "b")
        assert not graph.has_edge("a", "a")


class TestClauseSatisfied:
    def test_per_clause_checks(self):
        formula = CNFFormula(2, [(1,), (-2,)])
        assert formula.clause_satisfied(0, [True, True])
        assert not formula.clause_satisfied(0, [False, True])
        assert formula.clause_satisfied(1, [True, False])
        assert not formula.clause_satisfied(1, [True, True])


class TestCompilerHelpers:
    SCHEMA = {"e": ("I", "J", "P")}
    DB = Database({"e": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 3)])})

    def test_head_projection_instantiates_constants_and_repeats(self):
        rule = parse_rule("h(X, X, v) :- e(X, Y, P).")
        body = compile_body(rule.body, self.SCHEMA)
        expr = head_projection(rule, body)
        result = evaluate(expr, self.DB)
        assert result.columns == ("c0", "c1", "c2")
        assert ("a", "a", "v") in result

    def test_rule_choice_expression_weighted(self):
        rule = parse_rule("h(X*, Y)@P :- e(X, Y, P).")
        body = compile_body(rule.body, self.SCHEMA)
        expr = rule_choice_expression(rule, body)
        worlds = enumerate_worlds(expr, self.DB)
        by_target = {next(iter(w))[1]: p for w, p in worlds.items()}
        assert by_target == {"b": Fraction(1, 4), "c": Fraction(3, 4)}

    def test_strip_auxiliary(self):
        db = Database(
            {
                "c": Relation(("c0",), []),
                "__oldvals_0": Relation((), []),
            }
        )
        stripped = strip_auxiliary(db)
        assert stripped.names() == ["c"]
