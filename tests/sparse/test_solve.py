"""Certified solves: values match the exact solvers within the bound."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import MarkovChainError
from repro.markov.absorption import long_run_event_probability
from repro.markov.chain import chain_from_edges
from repro.sparse import solve_long_run, sparse_chain_from_markov

import numpy as np
from scipy import sparse as sp

from repro.sparse.assemble import SparseChain


def _gamblers_ruin(n: int, p_down: Fraction):
    edges = []
    for i in range(1, n):
        edges.append((i, i - 1, p_down))
        edges.append((i, i + 1, 1 - p_down))
    edges.append((0, 0, Fraction(1)))
    edges.append((n, n, Fraction(1)))
    return chain_from_edges(edges)


class TestIrreducible:
    def test_cycle_stationary_event_mass(self):
        chain = chain_from_edges(
            [(i, (i + 1) % 4, Fraction(1, 2)) for i in range(4)]
            + [(i, (i + 3) % 4, Fraction(1, 2)) for i in range(4)]
        )
        sparse = sparse_chain_from_markov(chain, 0, event=lambda s: s == 2)
        value, certificate, structure = solve_long_run(sparse, epsilon=1e-9)
        assert structure["irreducible"]
        assert certificate.satisfies()
        assert abs(value - 0.25) <= certificate.bound <= 1e-9

    def test_periodic_block_converges_via_lazification(self):
        chain = chain_from_edges([(0, 1, Fraction(1)), (1, 0, Fraction(1))])
        sparse = sparse_chain_from_markov(chain, 0, event=lambda s: s == 1)
        value, certificate, _ = solve_long_run(sparse, epsilon=1e-9)
        assert abs(value - 0.5) <= certificate.bound <= 1e-9


class TestAbsorbing:
    def test_gamblers_ruin_matches_exact(self):
        chain = _gamblers_ruin(10, Fraction(45, 100))
        exact = long_run_event_probability(chain, 5, lambda s: s == 10)
        sparse = sparse_chain_from_markov(chain, 5, event=lambda s: s == 10)
        value, certificate, structure = solve_long_run(sparse, epsilon=1e-9)
        assert structure["leaf_sccs"] == 2
        assert certificate.satisfies()
        assert abs(value - float(exact)) <= certificate.bound

    def test_large_chain_exercises_krylov(self):
        """Above TINY_DIRECT_SIZE the transient block goes to Krylov."""
        chain = _gamblers_ruin(300, Fraction(55, 100))
        exact = long_run_event_probability(chain, 150, lambda s: s == 0)
        sparse = sparse_chain_from_markov(chain, 150, event=lambda s: s == 0)
        value, certificate, _ = solve_long_run(sparse, epsilon=1e-9)
        assert certificate.satisfies()
        assert abs(value - float(exact)) <= certificate.bound
        assert certificate.iterations > 0

    def test_start_interval_composes_absorption_and_stationary(self):
        # two leaf cycles with different event mass, reached 50/50
        edges = [
            ("t", "a0", Fraction(1, 2)), ("t", "b0", Fraction(1, 2)),
            ("a0", "a1", Fraction(1)), ("a1", "a0", Fraction(1)),
            ("b0", "b0", Fraction(1)),
        ]
        chain = chain_from_edges(edges)
        event = lambda s: s in ("a0", "b0")  # noqa: E731
        exact = long_run_event_probability(chain, "t", event)
        sparse = sparse_chain_from_markov(chain, "t", event=event)
        value, certificate, structure = solve_long_run(sparse, epsilon=1e-9)
        assert structure["leaf_sccs"] == 2
        assert structure["transient_states"] == 1
        assert abs(value - float(exact)) <= certificate.bound


class TestContract:
    def test_refusal_is_reported_not_raised(self):
        chain = _gamblers_ruin(10, Fraction(1, 2))
        sparse = sparse_chain_from_markov(chain, 5, event=lambda s: s == 10)
        value, certificate, _ = solve_long_run(sparse, epsilon=1e-300)
        assert not certificate.satisfies()
        exact = long_run_event_probability(chain, 5, lambda s: s == 10)
        # the answer is still within the (dissatisfied) bound
        assert abs(value - float(exact)) <= certificate.bound

    def test_nonstochastic_rows_raise_typed_error(self):
        matrix = sp.csr_matrix(
            np.array([[0.5, 0.2], [0.0, 1.0]])
        )
        broken = SparseChain(
            matrix=matrix,
            states=[0, 1],
            event_mask=np.array([False, True]),
        )
        with pytest.raises(MarkovChainError) as excinfo:
            solve_long_run(broken, epsilon=1e-6)
        assert excinfo.value.details["row"] == 0

    def test_bad_epsilon_raises(self):
        chain = chain_from_edges([(0, 0, Fraction(1))])
        sparse = sparse_chain_from_markov(chain, 0)
        with pytest.raises(MarkovChainError):
            solve_long_run(sparse, epsilon=0.0)

    def test_certificate_payload_round_trips(self):
        chain = _gamblers_ruin(6, Fraction(1, 3))
        sparse = sparse_chain_from_markov(chain, 3, event=lambda s: s == 6)
        _, certificate, _ = solve_long_run(sparse, epsilon=1e-9)
        payload = certificate.as_dict()
        assert payload["satisfied"] is True
        assert payload["epsilon"] == 1e-9
        assert payload["bound"] >= 0.0
        assert payload["solver"]
