"""The sparse rung as a forever-query evaluator: contract + telemetry."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core import evaluate_forever_exact
from repro.errors import SolveRefusedError, StateSpaceLimitExceeded
from repro.obs import MemorySink, MetricsRegistry, Tracer
from repro.runtime import RunContext
from repro.sparse import CertifiedResult, evaluate_forever_sparse
from repro.workloads import cycle_graph, random_walk_query


@pytest.fixture
def walk():
    return random_walk_query(cycle_graph(6), "n0", "n3")


class TestEvaluate:
    def test_certified_result_brackets_exact(self, walk):
        query, db = walk
        result = evaluate_forever_sparse(query, db, epsilon=1e-9)
        assert isinstance(result, CertifiedResult)
        exact = evaluate_forever_exact(query, db)
        assert exact.probability == Fraction(1, 6)
        lo, hi = result.interval
        assert lo <= float(exact.probability) <= hi
        assert result.certificate.satisfies()
        assert result.method == "sparse-prop-5.4"
        assert result.details["backend"] in ("columnar", "frozenset")

    def test_refusal_raises_with_details(self, walk):
        query, db = walk
        with pytest.raises(SolveRefusedError) as excinfo:
            evaluate_forever_sparse(query, db, epsilon=1e-300)
        details = excinfo.value.details
        assert details["epsilon"] == 1e-300
        assert details["certified_bound"] > 1e-300
        assert details["states"] == 6

    def test_state_limit_propagates(self, walk):
        query, db = walk
        with pytest.raises(StateSpaceLimitExceeded):
            evaluate_forever_sparse(query, db, max_states=2)

    def test_metrics_and_trace_spans_recorded(self, walk):
        query, db = walk
        sink = MemorySink()
        metrics = MetricsRegistry()
        context = RunContext(tracer=Tracer(sink), metrics=metrics)
        evaluate_forever_sparse(query, db, epsilon=1e-9, context=context)
        spans = [r.get("name") for r in sink.records if r.get("type") == "span"]
        assert "sparse-assemble" in spans
        assert "sparse-solve" in spans
        solves = metrics.counter("repro_sparse_solves_total", "")
        assert solves.value(outcome="ok") == 1.0

    def test_refusal_metric(self, walk):
        query, db = walk
        metrics = MetricsRegistry()
        context = RunContext(metrics=metrics)
        with pytest.raises(SolveRefusedError):
            evaluate_forever_sparse(
                query, db, epsilon=1e-300, context=context
            )
        refusals = metrics.counter("repro_sparse_refusals_total", "")
        assert refusals.total() == 1.0
        solves = metrics.counter("repro_sparse_solves_total", "")
        assert solves.value(outcome="refused") == 1.0

    def test_forced_frozenset_backend_same_answer(self, walk):
        query, db = walk
        columnar = evaluate_forever_sparse(query, db, epsilon=1e-9)
        frozen = evaluate_forever_sparse(
            query, db, epsilon=1e-9, backend="frozenset"
        )
        assert frozen.details["backend"] == "frozenset"
        assert abs(frozen.probability - columnar.probability) <= (
            frozen.certificate.bound + columnar.certificate.bound
        )
