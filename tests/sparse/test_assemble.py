"""Streaming CSR assembly off the transition kernel."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.errors import MarkovChainError, StateSpaceLimitExceeded
from repro.markov.chain import chain_from_edges
from repro.obs import MemorySink, Tracer
from repro.runtime import RunContext
from repro.sparse import assemble_sparse_chain, sparse_chain_from_markov
from repro.workloads import cycle_graph, random_walk_query


@pytest.fixture
def walk():
    return random_walk_query(cycle_graph(5), "n0", "n2")


class TestAssemble:
    def test_rows_are_stochastic_and_start_is_id_zero(self, walk):
        query, db = walk
        chain = assemble_sparse_chain(
            query.kernel, db, event=query.event.holds
        )
        assert chain.size == 5
        assert chain.initial_index == 0
        assert chain.states[0] == db
        sums = np.asarray(chain.matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0, atol=1e-12)

    def test_event_mask_evaluated_during_sweep(self, walk):
        query, db = walk
        chain = assemble_sparse_chain(
            query.kernel, db, event=query.event.holds
        )
        assert chain.event_mask.dtype == bool
        assert chain.event_mask.sum() == 1
        # mask agrees with a direct re-evaluation on the state table
        for state, flag in zip(chain.states, chain.event_mask):
            assert bool(query.event.holds(state)) == bool(flag)

    def test_no_event_means_all_false(self, walk):
        query, db = walk
        chain = assemble_sparse_chain(query.kernel, db)
        assert not chain.event_mask.any()

    def test_state_limit_raises_with_details(self, walk):
        query, db = walk
        with pytest.raises(StateSpaceLimitExceeded) as excinfo:
            assemble_sparse_chain(
                query.kernel, db, event=query.event.holds, max_states=2
            )
        details = excinfo.value.details
        assert details["max_states"] == 2
        assert details["states_discovered"] == 2

    def test_trace_events_emitted(self, walk):
        query, db = walk
        sink = MemorySink()
        context = RunContext(tracer=Tracer(sink))
        assemble_sparse_chain(
            query.kernel, db, event=query.event.holds, context=context
        )
        names = [r.get("name") for r in sink.records]
        assert "sparse-state" in names


class TestFromMarkov:
    def test_start_relabelled_to_zero(self):
        chain = chain_from_edges(
            [("a", "b", Fraction(1)), ("b", "a", Fraction(1))]
        )
        sparse = sparse_chain_from_markov(chain, "b", event=lambda s: s == "a")
        assert sparse.states[0] == "b"
        assert sparse.initial_index == 0
        assert sparse.event_mask.tolist() == [False, True]
        assert sparse.matrix[0, 1] == 1.0

    def test_unknown_start_raises(self):
        chain = chain_from_edges([("a", "a", Fraction(1))])
        with pytest.raises(MarkovChainError):
            sparse_chain_from_markov(chain, "zzz")

    def test_max_out_degree(self):
        chain = chain_from_edges(
            [(0, 1, Fraction(1, 2)), (0, 2, Fraction(1, 2)),
             (1, 1, Fraction(1)), (2, 2, Fraction(1))]
        )
        sparse = sparse_chain_from_markov(chain, 0)
        assert sparse.max_out_degree == 2
        assert sparse.nnz == 4
