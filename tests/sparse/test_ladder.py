"""The sparse rung threaded through ladder, service, and CLI surfaces."""

from __future__ import annotations

import json

import pytest

from repro.analysis import PlanHints
from repro.cli import main
from repro.errors import InvalidRequestError
from repro.runtime import DegradationPolicy, RunContext, evaluate_forever_resilient
from repro.service import EngineSession, QueryRequest
from repro.sparse import CertifiedResult
from repro.workloads import cycle_graph, random_walk_query

from tests.service.conftest import walk_body


@pytest.fixture
def walk():
    return random_walk_query(cycle_graph(6), "n0", "n3")


class TestLadder:
    def test_prefer_sparse_answers_without_overflow(self, walk):
        query, db = walk
        context = RunContext()
        result = evaluate_forever_resilient(
            query, db, policy=DegradationPolicy(mode="none"),
            context=context, prefer_sparse=True,
        )
        assert isinstance(result, CertifiedResult)
        assert context.report().downgrades == []

    def test_refusal_falls_through_with_reason(self, walk):
        query, db = walk
        context = RunContext()
        result = evaluate_forever_resilient(
            query, db, max_states=3,
            policy=DegradationPolicy(mode="auto", sparse_epsilon=1e-300),
            context=context,
        )
        # sparse refused; lumped answered exactly
        assert result.method == "lumped"
        downgrades = context.report().downgrades
        assert [(d.from_method, d.to_method) for d in downgrades] == [
            ("exact", "sparse"), ("sparse", "lumped"),
        ]
        assert "refusing" in downgrades[1].reason

    def test_ph006_hint_drops_sparse_rung(self, walk):
        query, db = walk
        hints = PlanHints(deterministic=False, sparse_eligible=False)
        context = RunContext()
        result = evaluate_forever_resilient(
            query, db, max_states=3,
            policy=DegradationPolicy(mode="auto"), context=context,
            hints=hints,
        )
        assert result.method == "lumped"
        assert any("PH006" in event for event in context.report().events)

    def test_sparse_eligible_hint_computed_for_kernels(self, walk):
        query, _ = walk
        hints = PlanHints.for_kernel(
            query.kernel, event=query.event, semantics="forever"
        )
        assert hints.sparse_eligible is True
        assert hints.as_dict()["sparse_eligible"] is True


class TestServiceSurface:
    def test_backend_sparse_payload_kind(self):
        request = QueryRequest.from_json(
            walk_body(params={"backend": "sparse"})
        )
        session = EngineSession.prepare(request)
        payload = session.evaluate(request)
        assert payload["kind"] == "sparse"
        assert payload["certificate"]["satisfied"] is True
        lo, hi = payload["interval"]
        assert lo <= payload["probability_float"] <= hi

    def test_fallback_sparse_param(self):
        request = QueryRequest.from_json(
            walk_body(params={"fallback": "sparse", "max_states": 1})
        )
        session = EngineSession.prepare(request)
        payload = session.evaluate(request)
        assert payload["kind"] == "sparse"

    def test_sparse_backend_rejected_for_inflationary(self):
        with pytest.raises(InvalidRequestError):
            QueryRequest.from_json(
                walk_body(
                    semantics="inflationary", params={"backend": "sparse"}
                )
            )

    def test_fallback_sparse_stays_cacheable_without_seed(self):
        request = QueryRequest.from_json(
            walk_body(params={"fallback": "sparse"})
        )
        assert request.is_cacheable()


class TestCliSurface:
    @pytest.fixture
    def workspace(self, tmp_path):
        db = tmp_path / "db.json"
        db.write_text(json.dumps({
            "relations": {
                "C": {"columns": ["I"], "rows": [["a"]]},
                "E": {"columns": ["I", "J", "P"],
                      "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]]},
            }
        }))
        walk = tmp_path / "walk.ra"
        walk.write_text(
            "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n"
        )
        return {"db": str(db), "walk": str(walk)}

    def test_backend_sparse_renders_certificate(self, workspace, capsys):
        code = main([
            "forever", workspace["walk"], "--db", workspace["db"],
            "--event", "C(b)", "--backend", "sparse", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"].startswith("sparse certified")
        assert payload["certificate"]["satisfied"] is True
        assert abs(payload["probability_float"] - 1 / 3) <= (
            payload["certificate"]["bound"]
        )

    def test_fallback_sparse_records_downgrade(self, workspace, capsys):
        code = main([
            "forever", workspace["walk"], "--db", workspace["db"],
            "--event", "C(b)", "--fallback", "sparse",
            "--max-states", "1", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["downgrades"] == [{
            "from": "exact", "to": "sparse",
            "reason": payload["downgrades"][0]["reason"],
        }]
        assert "max_states=1" in payload["downgrades"][0]["reason"]

    def test_epsilon_flag_sets_certificate_contract(self, workspace, capsys):
        code = main([
            "forever", workspace["walk"], "--db", workspace["db"],
            "--event", "C(b)", "--backend", "sparse",
            "--epsilon", "1e-10", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["certificate"]["epsilon"] == 1e-10
