"""Units for the diagnostic data model (codes, spans, report)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    CODES,
    ERROR,
    HINT,
    SEVERITIES,
    WARNING,
    DiagnosticReport,
    SourceSpan,
    severity_of,
)


class TestRegistry:
    def test_every_code_has_severity_and_description(self):
        for code, (severity, description) in CODES.items():
            assert severity in SEVERITIES
            assert description
            assert severity_of(code) == severity

    def test_code_families_match_severities(self):
        # Parse, arity/schema, safety, and repair-key shape problems are
        # errors; structural/dead-code findings warn; PH* are plan hints.
        for code in CODES:
            if code.startswith(("PE", "AR", "SF", "RK")):
                assert severity_of(code) == ERROR, code
            if code.startswith("PH"):
                assert severity_of(code) in (HINT, WARNING), code

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            severity_of("XX999")
        with pytest.raises(ValueError):
            DiagnosticReport().add("XX999", "nope")


class TestSourceSpan:
    def test_from_offsets_computes_line_and_column(self):
        source = "first\nsecond line\nthird"
        span = SourceSpan.from_offsets(source, source.index("second"), 17)
        assert (span.line, span.column) == (2, 1)
        span = SourceSpan.from_offsets(source, source.index("third"), 23)
        assert (span.line, span.column) == (3, 1)

    def test_as_dict_round_trips_offsets(self):
        span = SourceSpan.from_offsets("abc\ndef", 4, 7)
        payload = span.as_dict()
        assert payload["start"] == 4 and payload["end"] == 7
        assert payload["line"] == 2 and payload["column"] == 1


class TestReport:
    def make(self) -> DiagnosticReport:
        report = DiagnosticReport()
        report.add("PH001", "deterministic")
        report.add("SF001", "unsafe", subject="p")
        report.add("DD001", "dead rule", subject="q")
        report.add("SF001", "unsafe again", subject="r")
        return report

    def test_partitions_by_severity(self):
        report = self.make()
        assert [d.code for d in report.errors] == ["SF001", "SF001"]
        assert [d.code for d in report.warnings] == ["DD001"]
        assert [d.code for d in report.hints] == ["PH001"]
        assert report.has_errors and bool(report) and len(report) == 4

    def test_codes_deduplicate_in_first_appearance_order(self):
        report = self.make()
        assert list(report.codes()) == ["PH001", "SF001", "DD001"]
        assert list(report.error_codes()) == ["SF001"]

    def test_as_dict_counts(self):
        payload = self.make().as_dict()
        assert payload["errors"] == 2
        assert payload["warnings"] == 1
        assert payload["hints"] == 1
        assert len(payload["diagnostics"]) == 4

    def test_render_lines_name_and_position(self):
        report = DiagnosticReport()
        source = "C := repair-key[K@P](E)\n"
        span = SourceSpan.from_offsets(source, 0, len(source) - 1)
        report.add("RK001", "key column missing", span=span, suggestion="fix it")
        (line,) = report.render_lines("walk.ra")
        assert line.startswith("walk.ra:1:1: error RK001:")
        assert "(fix: fix it)" in line

    def test_extend_merges_reports(self):
        first = DiagnosticReport()
        first.add("PH001", "deterministic")
        second = DiagnosticReport()
        second.add("SF001", "unsafe")
        first.extend(second)
        assert [d.code for d in first] == ["PH001", "SF001"]
        assert first.has_errors
