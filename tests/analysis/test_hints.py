"""Plan hints and how the runtime consumes them."""

from __future__ import annotations

from repro.analysis import PlanHints, analyze_source
from repro.core import ForeverQuery
from repro.core.events import parse_event
from repro.io import database_from_json
from repro.relational.parser import parse_interpretation
from repro.runtime import DegradationPolicy, RunContext, evaluate_forever_resilient

WALK = "C := rename[J->I](project[J](repair-key[I@P](C join E)))"
DETERMINISTIC = "C := rename[J->I](project[J](C join E)) union C"

WALK_DB = {
    "relations": {
        "C": {"columns": ["I"], "rows": [["a"]]},
        "E": {
            "columns": ["I", "J", "P"],
            "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]],
        },
    }
}


class TestForKernel:
    def test_probabilistic_walk(self):
        kernel = parse_interpretation(WALK)
        hints = PlanHints.for_kernel(
            kernel, event=parse_event("C(b)"), semantics="forever"
        )
        assert not hints.deterministic
        assert hints.pc_free
        assert hints.possibly_non_absorbing

    def test_deterministic_accumulating_kernel(self):
        kernel = parse_interpretation(DETERMINISTIC)
        hints = PlanHints.for_kernel(kernel, semantics="inflationary")
        assert hints.deterministic
        assert hints.pc_free
        assert not hints.possibly_non_absorbing

    def test_as_dict_omits_unset_linear(self):
        kernel = parse_interpretation(WALK)
        hints = PlanHints.for_kernel(kernel)
        assert "linear" not in hints.as_dict()


class TestForProgram:
    def test_certain_program_is_deterministic(self):
        result = analyze_source("datalog", "t(X, Y) :- e(X, Y).\n")
        assert result.hints is not None
        assert result.hints.deterministic
        assert result.hints.linear is True

    def test_repair_key_program_is_not(self):
        result = analyze_source(
            "datalog", "c(a).\nc2(X*, Y)@P :- c(X), e(X, Y, P).\nc(Y) :- c2(X, Y).\n"
        )
        assert result.hints is not None
        assert not result.hints.deterministic


class TestDegradationShortcut:
    def evaluate(self, hints):
        query = ForeverQuery(
            parse_interpretation(DETERMINISTIC), parse_event("C(b)")
        )
        db = database_from_json(
            {
                "relations": {
                    "C": {"columns": ["I"], "rows": [["a"]]},
                    "E": {"columns": ["I", "J"], "rows": [["a", "b"]]},
                }
            }
        )
        context = RunContext()
        result = evaluate_forever_resilient(
            query,
            db,
            policy=DegradationPolicy(mode="auto"),
            context=context,
            hints=hints,
        )
        return result, context.report()

    def test_deterministic_hint_collapses_the_ladder(self):
        hints = PlanHints(deterministic=True)
        result, report = self.evaluate(hints)
        assert result.probability == 1
        assert any("PH001" in event for event in report.events)

    def test_without_hints_no_shortcut_event(self):
        result, report = self.evaluate(None)
        assert result.probability == 1
        assert not any("PH001" in event for event in report.events)
