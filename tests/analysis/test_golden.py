"""Golden-file tests for the static analyzer.

Every file under ``golden/`` is a program in one of the two languages
with ``%!`` directive comments (``%`` starts a comment in both
grammars) declaring what the analyzer must say about it::

    %! semantics: inflationary      -- optional; default from extension
    %! db: walk.db.json             -- optional database, relative path
    %! pc: pc_shared.json           -- optional pc-tables, relative path
    %! api: row-predicate C I       -- optional API-only construct wrap
    %! event: C(b)                  -- optional query event
    %! expect: RK001                -- this code must be reported
    %! absent: SF001                -- this code must NOT be reported

A ``pc:`` or ``api:`` directive marks a shape the textual grammars
cannot express (pc-tables attached to a kernel; an opaque
:class:`RowPredicate`): the harness parses the kernel, rebuilds the
:class:`Interpretation` accordingly, and analyzes via
:func:`analyze_kernel` instead of :func:`analyze_source`.

A file with no error-level ``expect`` directive must analyze without
error-level diagnostics, so every ``clean_*`` / ``ph*`` file doubles as
the non-triggering counterpart of the error codes.  A meta-test checks
the directory plus the two programmatically-tested codes cover the
whole registry.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import CODES, ERROR, analyze_source, severity_of
from repro.analysis.datalog import check_rules
from repro.datalog.ast import Atom, Rule, Var

GOLDEN = Path(__file__).parent / "golden"
PROGRAMS = sorted(GOLDEN.glob("*.ra")) + sorted(GOLDEN.glob("*.dl"))

#: Codes whose triggering shape the parsers reject, so no golden file
#: can express them; they are covered programmatically below.  (PH005
#: fires on opaque RowPredicate selections, an API-only escape hatch —
#: golden files reach it through the ``api:`` directive.)
PARSE_BLOCKED = {"SF003", "SF004"}


def load_case(path: Path) -> dict:
    source = path.read_text(encoding="utf-8")
    case = {
        "source": source,
        "semantics": "forever" if path.suffix == ".ra" else "datalog",
        "db": None,
        "pc": None,
        "api": None,
        "event": None,
        "expect": [],
        "absent": [],
    }
    for line in source.splitlines():
        if not line.startswith("%!"):
            continue
        key, _, value = line[2:].partition(":")
        key, value = key.strip(), value.strip()
        if key in ("expect", "absent"):
            case[key].append(value)
        elif key in ("semantics", "event", "api"):
            case[key] = value
        elif key in ("db", "pc"):
            case[key] = json.loads((GOLDEN / value).read_text(encoding="utf-8"))
        else:  # pragma: no cover - defensive
            raise ValueError(f"{path.name}: unknown directive {key!r}")
    return case


def _analyze_case(case: dict):
    """Analyze a golden case, routing through the kernel API when the
    case uses a shape the textual grammar cannot express."""
    if case["pc"] is None and case["api"] is None:
        return analyze_source(
            case["semantics"],
            case["source"],
            database=case["db"],
            event=case["event"],
        )

    from repro.analysis import analyze_kernel
    from repro.core.events import parse_event
    from repro.core.interpretation import Interpretation
    from repro.io import database_from_json, pc_database_from_json
    from repro.relational.algebra import Select
    from repro.relational.parser import parse_interpretation
    from repro.relational.predicates import RowPredicate

    kernel = parse_interpretation(case["source"])
    queries = dict(kernel.queries)
    if case["api"] is not None:
        action, relation, *columns = case["api"].split()
        assert action == "row-predicate", case["api"]
        queries[relation] = Select(
            queries[relation], RowPredicate(lambda row: True, tuple(columns))
        )
    pc_tables = pc_database_from_json(case["pc"]) if case["pc"] is not None else None
    kernel = Interpretation(queries, pc_tables=pc_tables)
    return analyze_kernel(
        kernel,
        database=database_from_json(case["db"]) if case["db"] is not None else None,
        event=parse_event(case["event"]) if case["event"] is not None else None,
        semantics=case["semantics"],
    )


@pytest.mark.parametrize("path", PROGRAMS, ids=lambda p: p.name)
def test_golden_program(path: Path):
    case = load_case(path)
    result = _analyze_case(case)
    reported = set(result.report.codes())
    for code in case["expect"]:
        assert code in reported, (
            f"{path.name}: expected {code}, got {sorted(reported)}"
        )
    for code in case["absent"]:
        assert code not in reported, f"{path.name}: {code} must not fire"
    expects_errors = any(severity_of(code) == ERROR for code in case["expect"])
    if not expects_errors:
        assert result.ok, (
            f"{path.name} should be error-free, got "
            f"{[d.render(path.name) for d in result.report.errors]}"
        )
        assert result.hints is not None


def test_every_code_has_a_triggering_case():
    covered = set(PARSE_BLOCKED)
    for path in PROGRAMS:
        covered.update(load_case(path)["expect"])
    assert covered == set(CODES)


def test_every_pp_ph_code_has_a_golden_file():
    """Partition (PP) and plan-hint (PH) codes must each be pinned by a
    golden file — not merely a programmatic test — so the human-readable
    corpus documents every planner diagnostic."""
    golden_expects = set()
    for path in PROGRAMS:
        golden_expects.update(load_case(path)["expect"])
    planner_codes = {c for c in CODES if c.startswith(("PP", "PH"))}
    missing = sorted(planner_codes - golden_expects)
    assert not missing, f"planner codes without a golden file: {missing}"


def test_error_spans_point_into_the_source():
    case = load_case(GOLDEN / "rk001_bad_key.ra")
    result = analyze_source(case["semantics"], case["source"], database=case["db"])
    (error,) = result.report.errors
    assert error.code == "RK001"
    assert error.span is not None
    assert 1 <= error.span.line <= case["source"].count("\n") + 1
    assert "RK001" in error.render("walk.ra")


# -- parse-blocked codes, triggered on hand-built ASTs ----------------------


def test_sf003_key_variable_not_in_head():
    rule = Rule(
        head=Atom("p", (Var("X"),)),
        body=(Atom("q", (Var("X"), Var("Y"))),),
        key_variables=("Y",),
    )
    report = check_rules([rule])
    assert "SF003" in report.codes()


def test_ph005_row_predicate_kernel():
    from repro.analysis.kernel import check_kernel
    from repro.core.interpretation import Interpretation
    from repro.relational import rel
    from repro.relational.algebra import Select
    from repro.relational.predicates import RowPredicate

    kernel = Interpretation(
        {"C": Select(rel("C"), RowPredicate(lambda row: True, ("I",)))}
    )
    report = check_kernel(kernel, semantics="forever")
    assert "PH005" in report.codes()


def test_ph005_absent_on_vectorizable_kernel():
    from repro.analysis.kernel import check_kernel
    from repro.core.interpretation import Interpretation
    from repro.relational import rel

    report = check_kernel(Interpretation({"C": rel("C")}), semantics="forever")
    assert "PH005" not in report.codes()


def test_sf004_anonymous_variable_in_head():
    from repro.datalog.ast import _ANON_PREFIX

    rule = Rule(
        head=Atom("p", (Var(_ANON_PREFIX + "0"),)),
        body=(Atom("q", (Var(_ANON_PREFIX + "0"),)),),
    )
    report = check_rules([rule])
    assert "SF004" in report.codes()
