"""Every program this repo ships or generates lints without errors.

Covers the bundled ``examples/programs/`` files (the same set CI lints)
and, property-style, the workload generators — whatever
:func:`~repro.workloads.random_program` produces must satisfy the
analyzer's error-level checks, since the generators only emit valid
programs by construction.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, strategies as st

from repro.analysis import analyze_kernel, analyze_program, analyze_source
from repro.workloads import (
    cycle_graph,
    random_walk_query,
    reachability_program,
    reachability_query,
)
from repro.workloads.programs import random_program

REPO = Path(__file__).resolve().parents[2]
EXAMPLES = REPO / "examples" / "programs"

EXAMPLE_CASES = [
    ("random_walk.ra", "forever", "random_walk.db.json", "C(b)"),
    ("reachability.dl", "datalog", "reachability.db.json", "c(c)"),
    ("deterministic_reach.ra", "inflationary", "deterministic_reach.db.json", "C(c)"),
    ("two_walkers.ra", "forever", "two_walkers.db.json", "C(b)"),
]


@pytest.mark.parametrize(
    "program, semantics, db, event", EXAMPLE_CASES, ids=lambda c: str(c)
)
def test_bundled_examples_lint_clean(program, semantics, db, event):
    source = (EXAMPLES / program).read_text(encoding="utf-8")
    database = json.loads((EXAMPLES / db).read_text(encoding="utf-8"))
    result = analyze_source(semantics, source, database=database, event=event)
    assert result.ok, [d.render(program) for d in result.report.errors]
    assert result.hints is not None


def test_examples_manifest_is_exhaustive():
    listed = {case[0] for case in EXAMPLE_CASES} | {
        case[2] for case in EXAMPLE_CASES
    }
    on_disk = {
        path.name
        for path in EXAMPLES.iterdir()
        if path.suffix in (".ra", ".dl", ".json")
    }
    assert on_disk == listed


@given(st.integers(min_value=0, max_value=200))
def test_random_programs_lint_clean(seed):
    program, edb = random_program(seed)
    result = analyze_program(program, database=edb)
    assert not result.report.has_errors, [
        d.render("random") for d in result.report.errors
    ]


@pytest.mark.parametrize("nodes", [3, 4, 5])
def test_workload_queries_lint_clean(nodes):
    graph = cycle_graph(nodes)
    walk, walk_db = random_walk_query(graph, "n0", "n1")
    result = analyze_kernel(
        walk.kernel, database=walk_db, event=walk.event, semantics="forever"
    )
    assert not result.report.has_errors

    reach, reach_db = reachability_query(graph, "n0", "n1")
    result = analyze_kernel(
        reach.kernel, database=reach_db, event=reach.event, semantics="inflationary"
    )
    assert not result.report.has_errors

    program, edb = reachability_program(graph, "n0")
    result = analyze_program(program, database=edb)
    assert not result.report.has_errors
