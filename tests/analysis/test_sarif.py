"""SARIF 2.1.0 output: structural validity, stable ids, CLI wiring.

The full OASIS schema is not vendored (no network in CI), so validation
here is two-layered: a hand-written subset schema capturing the
properties scanning UIs actually key on (checked with ``jsonschema``),
plus direct assertions for the contracts the subset schema cannot
express (rule-table completeness, id stability).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import CODES, analyze_source, sarif_report
from repro.cli import main

jsonschema = pytest.importorskip("jsonschema")

#: Subset of the SARIF 2.1.0 schema: the required skeleton plus the
#: fields GitHub code scanning requires of every result.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id", "shortDescription",
                                                "defaultConfiguration",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "level", "message"],
                            "properties": {
                                "level": {
                                    "enum": ["error", "warning", "note"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

WALK = "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n"
BAD = "C := rename[J->I](project[J](repair-key[K@P](C join E)))\n"
DB = {
    "relations": {
        "C": {"columns": ["I"], "rows": [["a"]]},
        "E": {
            "columns": ["I", "J", "P"],
            "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]],
        },
    }
}


def report_for(source: str) -> dict:
    result = analyze_source("forever", source, database=DB, event="C(b)")
    return sarif_report(result, artifact_uri="walk.ra", tool_version="0.0-test")


class TestDocumentShape:
    def test_validates_against_subset_schema(self):
        jsonschema.validate(report_for(WALK), SARIF_SUBSET_SCHEMA)
        jsonschema.validate(report_for(BAD), SARIF_SUBSET_SCHEMA)

    def test_rule_table_is_the_whole_registry_sorted(self):
        rules = report_for(WALK)["runs"][0]["tool"]["driver"]["rules"]
        ids = [rule["id"] for rule in rules]
        assert ids == sorted(CODES)
        assert len(ids) == len(set(ids))

    def test_every_result_references_a_listed_rule(self):
        doc = report_for(BAD)
        run = doc["runs"][0]
        listed = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert run["results"], "the RK001 program must produce results"
        for result in run["results"]:
            assert result["ruleId"] in listed

    def test_error_result_carries_level_and_region(self):
        run = report_for(BAD)["runs"][0]
        rk = [r for r in run["results"] if r["ruleId"] == "RK001"]
        assert rk and rk[0]["level"] == "error"
        region = rk[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_partition_hints_surface_as_notes(self):
        two = WALK + "D := rename[J->I](project[J](repair-key[I@P](D join E)))\n"
        db = {"relations": dict(DB["relations"],
                                D={"columns": ["I"], "rows": [["b"]]})}
        result = analyze_source("forever", two, database=db, event="C(b)")
        doc = sarif_report(result)
        fired = {r["ruleId"] for r in doc["runs"][0]["results"]}
        assert "PP001" in fired
        pp001 = next(
            r for r in doc["runs"][0]["results"] if r["ruleId"] == "PP001"
        )
        assert pp001["level"] == "note"


class TestCli:
    def test_lint_sarif_emits_valid_json(self, tmp_path, capsys):
        program = tmp_path / "walk.ra"
        program.write_text(WALK, encoding="utf-8")
        db = tmp_path / "db.json"
        db.write_text(json.dumps(DB), encoding="utf-8")
        assert main([
            "lint", str(program), "--db", str(db), "--event", "C(b)", "--sarif",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)
        assert doc["runs"][0]["artifacts"][0]["location"]["uri"] == str(program)

    def test_lint_sarif_keeps_the_error_exit_code(self, tmp_path, capsys):
        program = tmp_path / "bad.ra"
        program.write_text(BAD, encoding="utf-8")
        db = tmp_path / "db.json"
        db.write_text(json.dumps(DB), encoding="utf-8")
        assert main(["lint", str(program), "--db", str(db), "--sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert "error" in levels
