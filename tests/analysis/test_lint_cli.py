"""The ``repro lint`` subcommand: exit codes, rendering, JSON mode."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

WALK_DB = {
    "relations": {
        "C": {"columns": ["I"], "rows": [["a"]]},
        "E": {
            "columns": ["I", "J", "P"],
            "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]],
        },
    }
}


@pytest.fixture
def db_path(tmp_path):
    path = tmp_path / "db.json"
    path.write_text(json.dumps(WALK_DB), encoding="utf-8")
    return str(path)


def write(tmp_path, name: str, text: str) -> str:
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return str(path)


class TestExitCodes:
    def test_seeded_repair_key_bug_exits_1(self, tmp_path, db_path, capsys):
        bad = write(
            tmp_path, "bad.ra",
            "C := rename[J->I](project[J](repair-key[K@P](C join E)))\n",
        )
        assert main(["lint", bad, "--db", db_path, "--event", "C(b)"]) == 1
        out = capsys.readouterr().out
        assert "error RK001" in out
        assert "bad.ra:1:1" in out

    def test_unsafe_rule_exits_1(self, tmp_path, capsys):
        unsafe = write(tmp_path, "unsafe.dl", "p(X, Y) :- q(X).\n")
        assert main(["lint", unsafe]) == 1
        assert "error SF001" in capsys.readouterr().out

    def test_clean_program_with_warnings_exits_0(self, tmp_path, db_path, capsys):
        good = write(
            tmp_path, "good.ra",
            "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n",
        )
        assert main(["lint", good, "--db", db_path, "--event", "C(b)"]) == 0
        out = capsys.readouterr().out
        assert "warning PH003" in out

    def test_syntax_error_exits_1_with_position(self, tmp_path, capsys):
        broken = write(tmp_path, "broken.dl", "p(X :- q(X).\n")
        assert main(["lint", broken]) == 1
        assert "PE001" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.dl")]) == 2


class TestModes:
    def test_json_payload_carries_diagnostics_and_hints(
        self, tmp_path, db_path, capsys
    ):
        good = write(
            tmp_path, "good.ra",
            "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n",
        )
        assert main(["lint", good, "--db", db_path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["plan_hints"]["pc_free"] is True
        assert payload["program"] == good

    def test_semantics_inferred_from_extension(self, tmp_path, capsys):
        kernel = write(tmp_path, "k.ra", "C := C\n")
        assert main(["lint", kernel]) == 0
        assert "semantics: forever" in capsys.readouterr().out

    def test_semantics_override(self, tmp_path, capsys):
        kernel = write(tmp_path, "k.ra", "C := C union C\n")
        assert main(["lint", kernel, "--semantics", "inflationary"]) == 0
        assert "semantics: inflationary" in capsys.readouterr().out

    def test_other_commands_keep_exit_0(self, tmp_path, db_path, capsys):
        kernel = write(
            tmp_path, "walk.ra",
            "C := rename[J->I](project[J](repair-key[I@P](C join E)))\n",
        )
        code = main(["forever", kernel, "--db", db_path, "--event", "C(b)"])
        assert code == 0
        assert "probability" in capsys.readouterr().out
