"""FaultPlan mechanics: spec validation, matching, env propagation."""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import FaultInjectedError, ReproError
from repro.faults import FAULT_PLAN_ENV, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def clean_plan():
    """Every test starts and ends with no plan, generation 0."""
    faults.uninstall()
    faults.set_generation(0)
    faults.set_observer(None)
    yield
    faults.uninstall()
    faults.set_generation(0)
    faults.set_observer(None)


class TestFaultSpec:
    def test_rejects_unknown_action(self):
        with pytest.raises(ReproError, match="unknown fault action"):
            FaultSpec("s", "explode")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"after": 0},
            {"times": 0},
            {"probability": 1.5},
            {"seconds": -1.0},
            {"generation": -1},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ReproError):
            FaultSpec("s", "raise", **kwargs)

    def test_dict_round_trip(self):
        spec = FaultSpec(
            "s", "hang", after=3, times=2, seconds=1.5,
            transient=False, generation=1,
        )
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ReproError, match="unknown fault spec fields"):
            FaultSpec.from_dict({"site": "s", "action": "raise", "bogus": 1})


class TestFiring:
    def test_count_window(self):
        plan = FaultPlan([FaultSpec("s", "corrupt", after=2, times=2)])
        hits = [plan.fire("s") is not None for _ in range(5)]
        assert hits == [False, True, True, False, False]

    def test_raise_action_is_retryable_by_default(self):
        plan = FaultPlan([FaultSpec("s", "raise")])
        with pytest.raises(FaultInjectedError) as excinfo:
            plan.fire("s", extra="context")
        assert excinfo.value.retryable
        assert excinfo.value.details["site"] == "s"
        assert excinfo.value.details["extra"] == "context"

    def test_raise_action_permanent_when_not_transient(self):
        plan = FaultPlan([FaultSpec("s", "raise", transient=False)])
        with pytest.raises(FaultInjectedError) as excinfo:
            plan.fire("s")
        assert not excinfo.value.retryable

    def test_sites_count_independently(self):
        plan = FaultPlan([FaultSpec("a", "corrupt", after=2)])
        assert plan.fire("b") is None  # does not advance site "a"
        assert plan.fire("a") is None
        assert plan.fire("a") is not None

    def test_probability_stream_is_deterministic(self):
        def pattern(seed: int) -> list[bool]:
            plan = FaultPlan(
                [FaultSpec("s", "corrupt", probability=0.5)], seed=seed
            )
            return [plan.fire("s") is not None for _ in range(32)]

        assert pattern(7) == pattern(7)
        assert pattern(7) != pattern(8)
        assert any(pattern(7)) and not all(pattern(7))

    def test_generation_gates_specs(self):
        # Hit counters advance even when the generation filter skips the
        # spec, so the window must cover the post-switch hit.
        plan = FaultPlan([FaultSpec("s", "corrupt", times=5, generation=1)])
        assert plan.fire("s") is None  # this process is generation 0
        faults.set_generation(1)
        assert plan.fire("s") is not None

    def test_counts_and_fired_log(self):
        plan = FaultPlan([FaultSpec("s", "corrupt", times=2)])
        plan.fire("s")
        plan.fire("s")
        plan.fire("s")
        assert plan.counts() == {"s:corrupt": 2}
        assert [record["hit"] for record in plan.fired] == [1, 2]

    def test_observer_sees_every_firing(self):
        seen = []
        faults.set_observer(lambda site, spec: seen.append((site, spec.action)))
        plan = FaultPlan([FaultSpec("s", "corrupt")])
        plan.fire("s")
        plan.fire("s")  # outside the window: no firing, no observation
        assert seen == [("s", "corrupt")]


class TestInstallation:
    def test_maybe_fire_without_plan_is_noop(self):
        assert faults.maybe_fire("anything") is None

    def test_install_exports_env_and_uninstall_clears(self, monkeypatch):
        import os

        plan = FaultPlan([FaultSpec("s", "raise")], seed=3)
        faults.install(plan)
        assert faults.active() is plan
        exported = json.loads(os.environ[FAULT_PLAN_ENV])
        assert exported == plan.to_json()
        faults.uninstall()
        assert faults.active() is None
        assert FAULT_PLAN_ENV not in os.environ

    def test_load_from_env_inline_and_file(self, tmp_path):
        plan = FaultPlan([FaultSpec("s", "sleep", seconds=0.5)], seed=9)
        inline = faults.load_from_env({FAULT_PLAN_ENV: json.dumps(plan.to_json())})
        assert inline.to_json() == plan.to_json()
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json()))
        from_file = faults.load_from_env({FAULT_PLAN_ENV: f"@{path}"})
        assert from_file.to_json() == plan.to_json()
        assert faults.load_from_env({}) is None

    def test_load_from_env_rejects_garbage(self):
        with pytest.raises(ReproError, match="not valid JSON"):
            faults.load_from_env({FAULT_PLAN_ENV: "not json"})

    def test_install_from_env_gets_fresh_counters(self, monkeypatch):
        plan = FaultPlan([FaultSpec("s", "corrupt")])
        plan.fire("s")  # consume the firing locally
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(plan.to_json()))
        installed = faults.install_from_env()
        assert installed is not plan
        assert installed.fire("s") is not None  # fresh per-process counter
