"""Unit tests for strong lumping."""

from fractions import Fraction

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    chain_from_edges,
    coarsest_lumping,
    is_lumpable,
    long_run_event_probability,
    lumped_event_probability,
    quotient_chain,
    stationary_distribution,
)


def symmetric_fork():
    """s → a or b (uniform); a, b both → t; t → s.  {a, b} lumps."""
    return chain_from_edges(
        [("s", "a", 1), ("s", "b", 1), ("a", "t", 1), ("b", "t", 1), ("t", "s", 1)]
    )


class TestIsLumpable:
    def test_symmetric_block_lumpable(self):
        chain = symmetric_fork()
        assert is_lumpable(chain, [{"s"}, {"a", "b"}, {"t"}])

    def test_asymmetric_block_not_lumpable(self):
        chain = chain_from_edges(
            [("s", "a", 3), ("s", "b", 1), ("a", "s", 1), ("b", "b", 1), ("b", "s", 1)]
        )
        # a always returns to s; b returns only half the time
        assert not is_lumpable(chain, [{"s"}, {"a", "b"}])

    def test_trivial_partitions(self):
        chain = symmetric_fork()
        assert is_lumpable(chain, [{s} for s in chain.states])  # identity
        assert is_lumpable(chain, [set(chain.states)])  # everything

    def test_partition_validation(self):
        chain = symmetric_fork()
        with pytest.raises(MarkovChainError):
            is_lumpable(chain, [{"s", "ghost"}])
        with pytest.raises(MarkovChainError):
            is_lumpable(chain, [{"s"}, {"s", "a"}])
        with pytest.raises(MarkovChainError):
            is_lumpable(chain, [{"s"}])  # misses states


class TestCoarsestLumping:
    def test_trivial_seed_stays_trivial(self):
        """{all states} is always a strong lumping of itself."""
        chain = symmetric_fork()
        partition = coarsest_lumping(chain, [set(chain.states)])
        assert partition == [frozenset(chain.states)]

    def test_event_seed_refines_to_symmetric_blocks(self):
        chain = symmetric_fork()
        partition = coarsest_lumping(chain, [{"t"}, {"s", "a", "b"}])
        blocks = {frozenset(b) for b in partition}
        assert frozenset({"a", "b"}) in blocks
        assert len(partition) == 3

    def test_result_is_lumpable(self):
        chain = chain_from_edges(
            [("x", "y", 1), ("y", "x", 2), ("y", "y", 1), ("x", "x", 1)]
        )
        partition = coarsest_lumping(chain, [{"x"}, {"y"}])
        assert is_lumpable(chain, partition)

    def test_respects_initial_partition(self):
        chain = symmetric_fork()
        partition = coarsest_lumping(chain, [{"a"}, {"b"}, {"s", "t"}])
        # a and b start separated; they stay separated
        blocks = {frozenset(b) for b in partition}
        assert frozenset({"a"}) in blocks
        assert frozenset({"b"}) in blocks


class TestQuotient:
    def test_quotient_transitions(self):
        chain = symmetric_fork()
        quotient, index = quotient_chain(chain, [{"s"}, {"a", "b"}, {"t"}])
        assert quotient.size == 3
        assert quotient.probability(index["s"], index["a"]) == 1
        assert quotient.probability(index["a"], index["t"]) == 1

    def test_quotient_stationary_aggregates(self):
        chain = symmetric_fork()
        quotient, index = quotient_chain(chain, [{"s"}, {"a", "b"}, {"t"}])
        pi = stationary_distribution(chain)
        pi_q = stationary_distribution(quotient)
        assert pi_q.probability(index["a"]) == pi.probability("a") + pi.probability("b")

    def test_non_lumpable_rejected(self):
        chain = chain_from_edges(
            [("s", "a", 3), ("s", "b", 1), ("a", "s", 1), ("b", "b", 1), ("b", "s", 1)]
        )
        with pytest.raises(MarkovChainError):
            quotient_chain(chain, [{"s"}, {"a", "b"}])


class TestLumpedEventProbability:
    def test_matches_direct_on_symmetric_chain(self):
        chain = symmetric_fork()
        event = lambda s: s == "t"
        direct = long_run_event_probability(chain, "s", event)
        lumped, size = lumped_event_probability(chain, "s", event)
        assert lumped == direct
        assert size == 3

    def test_matches_direct_on_arbitrary_chain(self):
        chain = chain_from_edges(
            [("u", "v", 2), ("v", "w", 1), ("w", "u", 1), ("u", "u", 1), ("v", "u", 1)]
        )
        for target in ("u", "v", "w"):
            event = lambda s, target=target: s == target
            direct = long_run_event_probability(chain, "u", event)
            lumped, _size = lumped_event_probability(chain, "u", event)
            assert lumped == direct

    def test_event_blocks_never_mix(self):
        """The quotient event is well-defined (event constant per block)."""
        chain = symmetric_fork()
        probability, size = lumped_event_probability(
            chain, "s", lambda s: s in ("a", "b")
        )
        assert probability == Fraction(1, 3)
        assert size == 3
