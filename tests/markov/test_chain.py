"""Unit tests for the MarkovChain type."""

import random
from fractions import Fraction

import pytest

from repro.errors import MarkovChainError
from repro.markov import MarkovChain, chain_from_edges
from repro.probability import Distribution


HALF = Fraction(1, 2)


@pytest.fixture
def lazy_cycle() -> MarkovChain:
    return chain_from_edges(
        [("a", "a", 1), ("a", "b", 1), ("b", "c", 2), ("c", "a", 1)]
    )


class TestConstruction:
    def test_basic(self, lazy_cycle):
        assert lazy_cycle.size == 3
        assert lazy_cycle.probability("a", "b") == HALF
        assert lazy_cycle.probability("b", "c") == 1

    def test_empty_rejected(self):
        with pytest.raises(MarkovChainError):
            MarkovChain({})

    def test_unknown_successor_rejected(self):
        with pytest.raises(MarkovChainError):
            MarkovChain({"a": Distribution({"ghost": 1})})

    def test_chain_from_edges_merges_parallel(self):
        chain = chain_from_edges(
            [("a", "b", 1), ("a", "b", 1), ("a", "a", 2), ("b", "b", 1)]
        )
        assert chain.probability("a", "b") == HALF

    def test_chain_from_edges_requires_outgoing(self):
        with pytest.raises(MarkovChainError):
            chain_from_edges([("a", "b", 1)])  # b has no outgoing edge

    def test_index_of_unknown(self, lazy_cycle):
        with pytest.raises(MarkovChainError):
            lazy_cycle.index_of("zz")

    def test_contains(self, lazy_cycle):
        assert "a" in lazy_cycle
        assert "z" not in lazy_cycle


class TestMatrices:
    def test_transition_matrix_rows_sum_to_one(self, lazy_cycle):
        matrix = lazy_cycle.transition_matrix()
        assert matrix.shape == (3, 3)
        assert all(abs(row.sum() - 1.0) < 1e-12 for row in matrix)

    def test_exact_matrix(self, lazy_cycle):
        matrix = lazy_cycle.exact_matrix()
        i, j = lazy_cycle.index_of("a"), lazy_cycle.index_of("b")
        assert matrix[i][j] == HALF
        assert all(sum(row) == 1 for row in matrix)


class TestEvolution:
    def test_step_distribution(self, lazy_cycle):
        mu = Distribution.point("a")
        stepped = lazy_cycle.step_distribution(mu)
        assert stepped.probability("a") == HALF
        assert stepped.probability("b") == HALF

    def test_distribution_after(self, lazy_cycle):
        after2 = lazy_cycle.distribution_after("a", 2)
        # a->a->a (1/4), a->a->b (1/4), a->b->c (1/2)
        assert after2.probability("a") == Fraction(1, 4)
        assert after2.probability("b") == Fraction(1, 4)
        assert after2.probability("c") == HALF

    def test_walk_length_and_membership(self, lazy_cycle):
        rng = random.Random(0)
        steps = list(lazy_cycle.walk("a", 25, rng))
        assert len(steps) == 25
        assert all(s in lazy_cycle for s in steps)

    def test_walk_unknown_start(self, lazy_cycle):
        with pytest.raises(MarkovChainError):
            list(lazy_cycle.walk("zz", 1, random.Random(0)))

    def test_walk_respects_transitions(self, lazy_cycle):
        rng = random.Random(5)
        previous = "a"
        for state in lazy_cycle.walk("a", 50, rng):
            assert lazy_cycle.probability(previous, state) > 0
            previous = state


class TestTransforms:
    def test_restricted_to_closed_subset(self):
        chain = chain_from_edges(
            [("s", "a", 1), ("a", "b", 1), ("b", "a", 1), ("s", "s", 1)]
        )
        sub = chain.restricted_to({"a", "b"})
        assert sub.size == 2
        assert sub.probability("a", "b") == 1

    def test_restricted_to_open_subset_rejected(self, lazy_cycle):
        with pytest.raises(MarkovChainError):
            lazy_cycle.restricted_to({"a", "b"})  # b -> c leaves

    def test_restricted_to_unknown_states(self, lazy_cycle):
        with pytest.raises(MarkovChainError):
            lazy_cycle.restricted_to({"a", "zz"})

    def test_relabelled(self, lazy_cycle):
        renamed = lazy_cycle.relabelled(str.upper)
        assert renamed.probability("A", "B") == HALF

    def test_relabelled_requires_injective(self, lazy_cycle):
        with pytest.raises(MarkovChainError):
            lazy_cycle.relabelled(lambda _s: "same")

    def test_edges_iterates_all(self, lazy_cycle):
        assert len(list(lazy_cycle.edges())) == 4
