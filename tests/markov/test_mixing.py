"""Unit tests for mixing times and spectral bounds."""

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    chain_from_edges,
    eigenvalue_gap,
    mixing_time,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    relaxation_time,
    tv_distance_curve,
    tv_from_stationary,
)
from repro.workloads import barbell_graph, complete_graph, cycle_graph


def fast_chain(n=6):
    return complete_graph(n).to_markov_chain()


def slow_chain(n=12):
    return cycle_graph(n).to_markov_chain()


class TestMixingTime:
    def test_complete_graph_mixes_in_one_step(self):
        # uniform rows: TV distance is 0 after one step
        assert mixing_time(fast_chain(), epsilon=0.25) == 1

    def test_definition_holds_at_t(self):
        chain = slow_chain(8)
        t = mixing_time(chain, epsilon=0.25)
        assert tv_from_stationary(chain, t) < 0.25
        if t > 1:
            assert tv_from_stationary(chain, t - 1) >= 0.25

    def test_monotone_in_epsilon(self):
        chain = slow_chain(10)
        assert mixing_time(chain, epsilon=0.01) >= mixing_time(chain, epsilon=0.3)

    def test_cycle_slower_than_complete(self):
        assert mixing_time(slow_chain(12), epsilon=0.1) > mixing_time(
            fast_chain(12), epsilon=0.1
        )

    def test_barbell_slower_than_complete_of_same_size(self):
        barbell = barbell_graph(6).to_markov_chain()  # 12 states
        complete = fast_chain(12)
        assert mixing_time(barbell, epsilon=0.1) > 10 * mixing_time(
            complete, epsilon=0.1
        )

    def test_periodic_chain_rejected(self):
        chain = chain_from_edges([("a", "b", 1), ("b", "a", 1)])
        with pytest.raises(MarkovChainError):
            mixing_time(chain)

    def test_reducible_chain_rejected(self):
        chain = chain_from_edges([("a", "a", 1), ("b", "b", 1)])
        with pytest.raises(MarkovChainError):
            mixing_time(chain)

    def test_bad_epsilon(self):
        with pytest.raises(MarkovChainError):
            mixing_time(fast_chain(), epsilon=1.5)

    def test_step_limit_respected(self):
        chain = slow_chain(30)
        with pytest.raises(MarkovChainError):
            mixing_time(chain, epsilon=1e-9, step_limit=2)


class TestTvCurve:
    def test_curve_nonincreasing(self):
        curve = tv_distance_curve(slow_chain(8), 60)
        assert all(a >= b - 1e-12 for a, b in zip(curve, curve[1:]))

    def test_curve_starts_near_one(self):
        curve = tv_distance_curve(slow_chain(8), 1)
        assert curve[0] > 0.5

    def test_curve_tends_to_zero(self):
        curve = tv_distance_curve(fast_chain(), 5)
        assert curve[-1] < 1e-10


class TestSpectral:
    def test_gap_in_unit_interval(self):
        gap = eigenvalue_gap(slow_chain(8))
        assert 0 < gap < 1

    def test_complete_graph_gap_is_one(self):
        assert abs(eigenvalue_gap(fast_chain()) - 1.0) < 1e-9

    def test_relaxation_time_inverse(self):
        chain = slow_chain(8)
        assert abs(relaxation_time(chain) * eigenvalue_gap(chain) - 1.0) < 1e-9

    def test_bounds_bracket_measured_time(self):
        chain = slow_chain(10)
        measured = mixing_time(chain, epsilon=0.1)
        assert mixing_time_lower_bound(chain, 0.1) <= measured
        assert measured <= mixing_time_upper_bound(chain, 0.1) + 1

    def test_lower_bound_epsilon_range(self):
        with pytest.raises(MarkovChainError):
            mixing_time_lower_bound(fast_chain(), 0.7)
