"""Unit tests for absorption analysis (Theorem 5.5 machinery)."""

from fractions import Fraction

from repro.markov import (
    absorption_probabilities,
    chain_from_edges,
    expected_absorption_time,
    long_run_event_probability,
    long_run_state_distribution,
)


def two_leaf_chain():
    """s → l1 (1/3) or → t → l2 (2/3); l2 is a 2-cycle."""
    return chain_from_edges(
        [
            ("s", "l1", 1),
            ("s", "t", 2),
            ("t", "l2a", 1),
            ("l1", "l1", 1),
            ("l2a", "l2b", 1),
            ("l2b", "l2a", 1),
        ]
    )


class TestAbsorptionProbabilities:
    def test_basic_split(self):
        probabilities = absorption_probabilities(two_leaf_chain(), "s")
        by_member = {min(leaf, key=repr): p for leaf, p in probabilities.items()}
        assert by_member["l1"] == Fraction(1, 3)
        assert by_member["l2a"] == Fraction(2, 3)

    def test_sums_to_one(self):
        assert sum(absorption_probabilities(two_leaf_chain(), "s").values()) == 1

    def test_start_in_leaf(self):
        probabilities = absorption_probabilities(two_leaf_chain(), "l2a")
        for leaf, p in probabilities.items():
            assert p == (1 if "l2a" in leaf else 0)

    def test_transient_cycle_before_absorption(self):
        """A transient 2-cycle with escape: probability still sums to 1."""
        chain = chain_from_edges(
            [
                ("u", "v", 9),
                ("v", "u", 9),
                ("u", "x", 1),
                ("v", "y", 1),
                ("x", "x", 1),
                ("y", "y", 1),
            ]
        )
        probabilities = absorption_probabilities(chain, "u")
        total = sum(probabilities.values())
        assert total == 1
        by_member = {min(leaf): p for leaf, p in probabilities.items()}
        # symmetric apart from first-move advantage of u
        assert by_member["x"] > by_member["y"]
        assert by_member["x"] == Fraction(10, 19)


class TestLongRunEvent:
    def test_event_in_one_leaf(self):
        p = long_run_event_probability(two_leaf_chain(), "s", lambda s: s == "l2a")
        # reach leaf2 w.p. 2/3, then stationary weight of l2a is 1/2
        assert p == Fraction(1, 3)

    def test_event_true_everywhere(self):
        p = long_run_event_probability(two_leaf_chain(), "s", lambda _s: True)
        assert p == 1

    def test_transient_event_has_probability_zero(self):
        p = long_run_event_probability(two_leaf_chain(), "s", lambda s: s in ("s", "t"))
        assert p == 0

    def test_irreducible_chain_equals_stationary(self):
        chain = chain_from_edges(
            [("a", "a", 1), ("a", "b", 1), ("b", "a", 1)]
        )
        p = long_run_event_probability(chain, "a", lambda s: s == "a")
        assert p == Fraction(2, 3)


class TestLongRunDistribution:
    def test_values(self):
        occupancy = long_run_state_distribution(two_leaf_chain(), "s")
        assert occupancy["s"] == 0
        assert occupancy["t"] == 0
        assert occupancy["l1"] == Fraction(1, 3)
        assert occupancy["l2a"] == Fraction(1, 3)
        assert occupancy["l2b"] == Fraction(1, 3)
        assert sum(occupancy.values()) == 1


class TestExpectedAbsorptionTime:
    def test_zero_when_recurrent(self):
        assert expected_absorption_time(two_leaf_chain(), "l1") == 0

    def test_simple_chain(self):
        assert expected_absorption_time(two_leaf_chain(), "t") == 1
        # from s: 1 step to l1 (1/3) or 1 + 1 steps via t (2/3)
        assert expected_absorption_time(two_leaf_chain(), "s") == Fraction(5, 3)

    def test_geometric_escape(self):
        # stay with 1/2, leave with 1/2 -> expected 2 steps
        chain = chain_from_edges([("u", "u", 1), ("u", "x", 1), ("x", "x", 1)])
        assert expected_absorption_time(chain, "u") == 2
