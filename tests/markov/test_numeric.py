"""Unit tests for the float64 chain solvers."""

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    absorption_probabilities,
    absorption_probabilities_float,
    chain_from_edges,
    long_run_event_probability,
    long_run_event_probability_float,
    long_run_state_distribution,
    long_run_state_distribution_float,
)


def two_leaf_chain():
    return chain_from_edges(
        [
            ("s", "l1", 1),
            ("s", "t", 2),
            ("t", "l2a", 1),
            ("l1", "l1", 1),
            ("l2a", "l2b", 1),
            ("l2b", "l2a", 1),
        ]
    )


class TestFloatAbsorption:
    def test_matches_exact(self):
        chain = two_leaf_chain()
        exact = absorption_probabilities(chain, "s")
        floats = absorption_probabilities_float(chain, "s")
        for leaf, probability in exact.items():
            assert abs(floats[leaf] - float(probability)) < 1e-12

    def test_start_in_leaf(self):
        floats = absorption_probabilities_float(two_leaf_chain(), "l1")
        assert sum(floats.values()) == pytest.approx(1.0)
        assert max(floats.values()) == 1.0

    def test_sums_to_one(self):
        floats = absorption_probabilities_float(two_leaf_chain(), "s")
        assert sum(floats.values()) == pytest.approx(1.0)


class TestFloatLongRun:
    def test_event_probability_matches_exact(self):
        chain = two_leaf_chain()
        for event in (lambda s: s == "l2a", lambda s: s == "l1", lambda _s: True):
            exact = long_run_event_probability(chain, "s", event)
            numeric = long_run_event_probability_float(chain, "s", event)
            assert abs(numeric - float(exact)) < 1e-12

    def test_distribution_matches_exact(self):
        chain = two_leaf_chain()
        exact = long_run_state_distribution(chain, "s")
        numeric = long_run_state_distribution_float(chain, "s")
        for state in chain.states:
            assert abs(numeric[state] - float(exact[state])) < 1e-12

    def test_clipped_to_unit_interval(self):
        chain = chain_from_edges([("a", "a", 1)])
        assert long_run_event_probability_float(chain, "a", lambda _s: True) == 1.0
        assert long_run_event_probability_float(chain, "a", lambda _s: False) == 0.0


class TestLargerChainAgreement:
    def test_random_chain_agreement(self):
        import random

        rng = random.Random(12)
        n = 14
        edges = []
        for i in range(n):
            for _ in range(3):
                edges.append((i, rng.randrange(n), rng.randint(1, 5)))
            edges.append((i, i, 1))
        chain = chain_from_edges(edges)
        event = lambda s: s % 3 == 0
        exact = long_run_event_probability(chain, 0, event)
        numeric = long_run_event_probability_float(chain, 0, event)
        assert abs(numeric - float(exact)) < 1e-9
