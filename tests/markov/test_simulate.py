"""Unit tests for random-walk simulation."""

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    chain_from_edges,
    event_frequency,
    occupancy_frequencies,
    state_after,
    stationary_distribution,
    walk_states,
)


def biased_chain():
    return chain_from_edges([("a", "a", 2), ("a", "b", 1), ("b", "a", 1)])


class TestWalks:
    def test_walk_states_includes_start(self):
        trajectory = walk_states(biased_chain(), "a", 10, rng=0)
        assert trajectory[0] == "a"
        assert len(trajectory) == 11

    def test_deterministic_with_seed(self):
        a = walk_states(biased_chain(), "a", 20, rng=42)
        b = walk_states(biased_chain(), "a", 20, rng=42)
        assert a == b

    def test_state_after(self):
        final = state_after(biased_chain(), "a", 7, rng=1)
        assert final in ("a", "b")
        assert final == walk_states(biased_chain(), "a", 7, rng=1)[-1]


class TestOccupancy:
    def test_converges_to_stationary(self):
        chain = biased_chain()
        pi = stationary_distribution(chain)
        frequencies = occupancy_frequencies(chain, "a", 50_000, rng=3)
        for state in chain.states:
            assert abs(frequencies.get(state, 0.0) - float(pi.probability(state))) < 0.02

    def test_event_frequency_matches(self):
        chain = biased_chain()
        frequency = event_frequency(chain, "a", lambda s: s == "b", 50_000, rng=5)
        assert abs(frequency - 0.25) < 0.02

    def test_zero_steps_rejected(self):
        with pytest.raises(MarkovChainError):
            occupancy_frequencies(biased_chain(), "a", 0)
        with pytest.raises(MarkovChainError):
            event_frequency(biased_chain(), "a", lambda s: True, 0)
