"""Unit tests for stationary distributions."""

from fractions import Fraction

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    cesaro_average,
    chain_from_edges,
    is_stationary,
    power_iteration,
    stationary_distribution,
    stationary_distribution_float,
)


def biased_two_state():
    # a -> b with 1/3, stays 2/3; b -> a with 1.  pi = (3/4, 1/4).
    return chain_from_edges([("a", "a", 2), ("a", "b", 1), ("b", "a", 1)])


class TestExactStationary:
    def test_two_state_exact(self):
        pi = stationary_distribution(biased_two_state())
        assert pi.probability("a") == Fraction(3, 4)
        assert pi.probability("b") == Fraction(1, 4)

    def test_balance_equations_hold(self):
        chain = chain_from_edges(
            [("a", "b", 1), ("b", "c", 2), ("b", "a", 1), ("c", "a", 1), ("a", "a", 3)]
        )
        pi = stationary_distribution(chain)
        assert is_stationary(chain, pi)

    def test_uniform_on_doubly_stochastic(self):
        # symmetric random walk on a 4-cycle (periodic but irreducible):
        # stationary (Cesàro) distribution is uniform.
        chain = chain_from_edges(
            [(i, (i + 1) % 4, 1) for i in range(4)]
            + [(i, (i - 1) % 4, 1) for i in range(4)]
        )
        pi = stationary_distribution(chain)
        assert all(pi.probability(i) == Fraction(1, 4) for i in range(4))

    def test_reducible_rejected(self):
        chain = chain_from_edges([("a", "a", 1), ("b", "b", 1)])
        with pytest.raises(MarkovChainError):
            stationary_distribution(chain)


class TestFloatStationary:
    def test_matches_exact(self):
        chain = biased_two_state()
        exact = stationary_distribution(chain)
        floats = stationary_distribution_float(chain)
        for state in chain.states:
            assert abs(floats[state] - float(exact.probability(state))) < 1e-12

    def test_reducible_rejected(self):
        chain = chain_from_edges([("a", "a", 1), ("b", "b", 1)])
        with pytest.raises(MarkovChainError):
            stationary_distribution_float(chain)


class TestIterativeMethods:
    def test_power_iteration_matches_exact(self):
        chain = biased_two_state()
        result = power_iteration(chain, "b")
        assert abs(result["a"] - 0.75) < 1e-9

    def test_power_iteration_periodic_fails(self):
        chain = chain_from_edges([("a", "b", 1), ("b", "a", 1)])
        with pytest.raises(MarkovChainError):
            power_iteration(chain, "a", max_steps=500)

    def test_cesaro_converges_even_when_periodic(self):
        """The Definition 3.2 Cesàro limit exists for periodic chains."""
        chain = chain_from_edges([("a", "b", 1), ("b", "a", 1)])
        average = cesaro_average(chain, "a", 10_000)
        assert abs(average["a"] - 0.5) < 1e-3

    def test_cesaro_matches_stationary(self):
        chain = biased_two_state()
        average = cesaro_average(chain, "b", 20_000)
        assert abs(average["a"] - 0.75) < 1e-3

    def test_cesaro_needs_steps(self):
        with pytest.raises(MarkovChainError):
            cesaro_average(biased_two_state(), "a", 0)
