"""Unit tests for first-passage analysis."""

from fractions import Fraction

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    chain_from_edges,
    expected_hitting_time,
    hitting_probability,
    hitting_time_distribution,
)


def branch_chain():
    """s → good (1/3) or bad (2/3); both absorbing."""
    return chain_from_edges(
        [("s", "good", 1), ("s", "bad", 2), ("good", "good", 1), ("bad", "bad", 1)]
    )


def lazy_line():
    """a → a (1/2) or → b (1/2); b absorbing."""
    return chain_from_edges([("a", "a", 1), ("a", "b", 1), ("b", "b", 1)])


class TestHittingProbability:
    def test_branching(self):
        chain = branch_chain()
        assert hitting_probability(chain, "s", lambda s: s == "good") == Fraction(1, 3)
        assert hitting_probability(chain, "s", lambda s: s == "bad") == Fraction(2, 3)

    def test_start_in_target(self):
        assert hitting_probability(branch_chain(), "good", lambda s: s == "good") == 1

    def test_unreachable_target(self):
        assert hitting_probability(branch_chain(), "good", lambda s: s == "bad") == 0

    def test_empty_target(self):
        assert hitting_probability(branch_chain(), "s", lambda _s: False) == 0

    def test_geometric_escape_hits_surely(self):
        assert hitting_probability(lazy_line(), "a", lambda s: s == "b") == 1

    def test_transient_cycle(self):
        chain = chain_from_edges(
            [("u", "v", 1), ("v", "u", 1), ("u", "x", 1), ("x", "x", 1)]
        )
        # from u: 1/2 to x, 1/2 to v which returns to u
        p = hitting_probability(chain, "u", lambda s: s == "x")
        assert p == 1


class TestExpectedHittingTime:
    def test_zero_when_started_there(self):
        assert expected_hitting_time(branch_chain(), "good", lambda s: s == "good") == 0

    def test_geometric(self):
        # success probability 1/2 per step -> expectation 2
        assert expected_hitting_time(lazy_line(), "a", lambda s: s == "b") == 2

    def test_chain_of_two_geometrics(self):
        chain = chain_from_edges(
            [
                ("a", "a", 1),
                ("a", "b", 1),
                ("b", "b", 2),
                ("b", "c", 1),
                ("c", "c", 1),
            ]
        )
        # E = 2 (leave a) + 3 (leave b at rate 1/3)
        assert expected_hitting_time(chain, "a", lambda s: s == "c") == 5

    def test_infinite_expectation_rejected(self):
        chain = branch_chain()
        with pytest.raises(MarkovChainError):
            expected_hitting_time(chain, "s", lambda s: s == "good")


class TestHittingTimeDistribution:
    def test_geometric_law(self):
        dist = hitting_time_distribution(lazy_line(), "a", lambda s: s == "b", 6)
        for k in range(1, 7):
            assert dist.probability(k) == Fraction(1, 2**k)
        assert dist.probability(7) == Fraction(1, 64)  # "not yet" mass

    def test_point_mass_at_zero(self):
        dist = hitting_time_distribution(lazy_line(), "b", lambda s: s == "b", 5)
        assert dist.probability(0) == 1

    def test_total_mass_one(self):
        dist = hitting_time_distribution(branch_chain(), "s", lambda s: s == "good", 4)
        assert sum(p for _k, p in dist.items()) == 1

    def test_never_hit_mass(self):
        dist = hitting_time_distribution(branch_chain(), "s", lambda s: s == "good", 4)
        # after step 1 the walk is absorbed; mass 2/3 never hits
        assert dist.probability(1) == Fraction(1, 3)
        assert dist.probability(5) == Fraction(2, 3)

    def test_expectation_consistency(self):
        dist = hitting_time_distribution(lazy_line(), "a", lambda s: s == "b", 40)
        truncated_mean = sum(k * p for k, p in dist.items() if k <= 40)
        assert abs(float(truncated_mean) - 2.0) < 1e-9

    def test_negative_horizon(self):
        with pytest.raises(MarkovChainError):
            hitting_time_distribution(lazy_line(), "a", lambda s: s == "b", -1)
