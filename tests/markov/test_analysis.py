"""Unit tests for Markov-chain structural analysis (Section 2.3)."""

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    chain_from_edges,
    classify,
    is_absorbing_state,
    is_aperiodic,
    is_ergodic,
    is_irreducible,
    is_positively_recurrent,
    leaf_components,
    period,
    reachable_states,
    strongly_connected_components,
)


def lazy_cycle(n: int):
    edges = []
    for i in range(n):
        edges.append((i, i, 1))
        edges.append((i, (i + 1) % n, 1))
    return chain_from_edges(edges)


def pure_cycle(n: int):
    return chain_from_edges([(i, (i + 1) % n, 1) for i in range(n)])


class TestIrreducibility:
    def test_cycle_irreducible(self):
        assert is_irreducible(pure_cycle(4))

    def test_two_components_not_irreducible(self):
        chain = chain_from_edges([("a", "b", 1), ("b", "a", 1), ("x", "x", 1)])
        assert not is_irreducible(chain)

    def test_sccs_topologically_ordered(self):
        chain = chain_from_edges(
            [("s", "a", 1), ("a", "b", 1), ("b", "a", 1), ("s", "s", 1)]
        )
        components = strongly_connected_components(chain)
        # every edge goes forward in the order
        position = {}
        for index, component in enumerate(components):
            for state in component:
                position[state] = index
        for source, target, _w in chain.edges():
            assert position[source] <= position[target]


class TestPeriodicity:
    def test_pure_cycle_period(self):
        chain = pure_cycle(4)
        assert period(chain, 0) == 4
        assert not is_aperiodic(chain)

    def test_lazy_cycle_aperiodic(self):
        assert is_aperiodic(lazy_cycle(4))

    def test_two_cycle_period_two(self):
        chain = chain_from_edges([("a", "b", 1), ("b", "a", 1)])
        assert period(chain, "a") == 2

    def test_mixed_cycle_lengths_gcd(self):
        # cycles of lengths 2 and 3 share states -> period 1
        chain = chain_from_edges(
            [("a", "b", 1), ("b", "a", 1), ("b", "c", 1), ("c", "a", 1)]
        )
        assert period(chain, "a") == 1

    def test_transient_singleton_period_undefined(self):
        chain = chain_from_edges([("s", "a", 1), ("a", "a", 1)])
        with pytest.raises(MarkovChainError):
            period(chain, "s")

    def test_period_unknown_state(self):
        with pytest.raises(MarkovChainError):
            period(pure_cycle(3), "nope")

    def test_aperiodicity_ignores_transient_states(self):
        chain = chain_from_edges([("s", "a", 1), ("a", "a", 1)])
        assert is_aperiodic(chain)


class TestRecurrenceAndErgodicity:
    def test_leaf_components(self):
        chain = chain_from_edges(
            [("s", "l1", 1), ("s", "l2", 1), ("l1", "l1", 1), ("l2", "l2", 1)]
        )
        leaves = leaf_components(chain)
        assert {frozenset({"l1"}), frozenset({"l2"})} == set(leaves)

    def test_positive_recurrence(self):
        assert is_positively_recurrent(pure_cycle(3))
        chain = chain_from_edges([("s", "a", 1), ("a", "a", 1)])
        assert not is_positively_recurrent(chain)

    def test_ergodic(self):
        assert is_ergodic(lazy_cycle(3))
        assert not is_ergodic(pure_cycle(3))  # periodic

    def test_absorbing_state(self):
        chain = chain_from_edges([("s", "a", 1), ("a", "a", 1)])
        assert is_absorbing_state(chain, "a")
        assert not is_absorbing_state(chain, "s")

    def test_reachable_states(self):
        chain = chain_from_edges(
            [("a", "b", 1), ("b", "b", 1), ("x", "a", 1), ("x", "x", 1)]
        )
        assert reachable_states(chain, "a") == frozenset({"a", "b"})
        assert reachable_states(chain, "x") == frozenset({"a", "b", "x"})

    def test_classify_summary(self):
        summary = classify(lazy_cycle(3))
        assert summary["irreducible"]
        assert summary["ergodic"]
        assert summary["states"] == 3
        assert summary["leaf_sccs"] == 1
