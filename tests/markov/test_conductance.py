"""Unit tests for conductance and the Cheeger bounds."""

import pytest

from repro.errors import MarkovChainError
from repro.markov import (
    chain_from_edges,
    cheeger_bounds,
    conductance,
    eigenvalue_gap,
    is_reversible,
    mixing_time,
    set_conductance,
)
from repro.workloads import barbell_graph, complete_graph, cycle_graph


class TestReversibility:
    def test_symmetric_walk_reversible(self):
        assert is_reversible(barbell_graph(3).to_markov_chain())
        assert is_reversible(complete_graph(4).to_markov_chain())

    def test_directed_cycle_not_reversible(self):
        assert not is_reversible(cycle_graph(5).to_markov_chain())


class TestSetConductance:
    def test_known_two_state_value(self):
        # a <-> b uniformly; pi = (1/2, 1/2); Phi({a}) = (1/2 * 1/2) / (1/2) = 1/2
        chain = chain_from_edges(
            [("a", "a", 1), ("a", "b", 1), ("b", "b", 1), ("b", "a", 1)]
        )
        assert set_conductance(chain, frozenset({"a"})) == pytest.approx(0.5)

    def test_large_set_rejected(self):
        chain = complete_graph(4).to_markov_chain()
        with pytest.raises(MarkovChainError):
            set_conductance(chain, frozenset(chain.states))


class TestConductance:
    def test_complete_graph_high(self):
        phi, _set = conductance(complete_graph(6).to_markov_chain())
        assert phi >= 0.4

    def test_barbell_bottleneck_found(self):
        chain = barbell_graph(4).to_markov_chain()
        phi, witness = conductance(chain)
        # the minimising cut separates the two cliques
        sides = {state[0] for state in witness}
        assert sides in ({"l"}, {"r"})
        assert phi < 0.15

    def test_barbell_narrower_than_complete(self):
        barbell_phi, _w = conductance(barbell_graph(4).to_markov_chain())
        complete_phi, _w = conductance(complete_graph(8).to_markov_chain())
        assert barbell_phi < complete_phi / 3

    def test_size_limit(self):
        with pytest.raises(MarkovChainError):
            conductance(complete_graph(25).to_markov_chain())


class TestCheeger:
    @pytest.mark.parametrize(
        "graph",
        [complete_graph(5), barbell_graph(3), cycle_graph(6)],
        ids=["complete", "barbell", "cycle"],
    )
    def test_sandwich(self, graph):
        chain = graph.to_markov_chain()
        bounds = cheeger_bounds(chain)
        assert bounds["cheeger_lower"] <= bounds["gap"] + 1e-9
        if bounds["reversible"]:
            assert bounds["gap"] <= bounds["cheeger_upper"] + 1e-9

    def test_low_conductance_implies_slow_mixing(self):
        """The Section 5.1 connection: small Φ → large mixing time."""
        barbell = barbell_graph(4).to_markov_chain()
        complete = complete_graph(8).to_markov_chain()
        phi_barbell, _w = conductance(barbell)
        phi_complete, _w = conductance(complete)
        assert phi_barbell < phi_complete
        assert mixing_time(barbell, 0.1) > mixing_time(complete, 0.1)

    def test_gap_consistency(self):
        chain = complete_graph(5).to_markov_chain()
        assert cheeger_bounds(chain)["gap"] == pytest.approx(eigenvalue_gap(chain))
