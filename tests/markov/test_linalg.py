"""Unit tests for exact rational linear algebra."""

from fractions import Fraction

import pytest

from repro.errors import MarkovChainError
from repro.markov import identity, solve_exact, solve_exact_gauss, solve_exact_vector


F = Fraction


class TestSolveExact:
    def test_identity_system(self):
        a = identity(3)
        b = [[F(1)], [F(2)], [F(3)]]
        assert solve_exact(a, b) == b

    def test_known_2x2(self):
        a = [[F(2), F(1)], [F(1), F(3)]]
        b = [[F(5)], [F(10)]]
        x = solve_exact_vector(a, [F(5), F(10)])
        assert x == [F(1), F(3)]
        assert solve_exact(a, b) == [[F(1)], [F(3)]]

    def test_exactness_no_rounding(self):
        a = [[F(1, 3), F(1, 7)], [F(1, 11), F(1, 13)]]
        b = [F(1), F(2)]
        x = solve_exact_vector(a, b)
        # verify by substitution, exactly
        assert a[0][0] * x[0] + a[0][1] * x[1] == b[0]
        assert a[1][0] * x[0] + a[1][1] * x[1] == b[1]

    def test_pivoting_handles_zero_leading_entry(self):
        a = [[F(0), F(1)], [F(1), F(0)]]
        x = solve_exact_vector(a, [F(3), F(4)])
        assert x == [F(4), F(3)]

    def test_multiple_right_hand_sides(self):
        a = [[F(1), F(1)], [F(0), F(1)]]
        b = [[F(3), F(0)], [F(1), F(2)]]
        x = solve_exact(a, b)
        assert x == [[F(2), F(-2)], [F(1), F(2)]]

    def test_singular_rejected(self):
        a = [[F(1), F(2)], [F(2), F(4)]]
        with pytest.raises(MarkovChainError):
            solve_exact_vector(a, [F(1), F(1)])

    def test_shape_validation(self):
        with pytest.raises(MarkovChainError):
            solve_exact([[F(1), F(2)]], [[F(1)]])
        with pytest.raises(MarkovChainError):
            solve_exact([[F(1)]], [[F(1)], [F(2)]])
        with pytest.raises(MarkovChainError):
            solve_exact([[F(1)], [F(2)]], [[F(1)], [F(2)]])

    def test_larger_random_system_verifies(self):
        import random

        rng = random.Random(3)
        n = 6
        a = [[F(rng.randint(-5, 5), rng.randint(1, 4)) for _ in range(n)] for _ in range(n)]
        # make strictly diagonally dominant -> nonsingular
        for i in range(n):
            a[i][i] = F(20)
        b = [F(rng.randint(-9, 9)) for _ in range(n)]
        x = solve_exact_vector(a, b)
        for i in range(n):
            assert sum(a[i][j] * x[j] for j in range(n)) == b[i]


class TestBareissAgainstGauss:
    """The fraction-free Bareiss path must reproduce the Gauss–Jordan
    reference solver exactly on every solvable system."""

    def test_random_fraction_systems(self):
        import random

        rng = random.Random(11)
        for trial in range(20):
            n = rng.randint(1, 5)
            a = [
                [F(rng.randint(-6, 6), rng.randint(1, 5)) for _ in range(n)]
                for _ in range(n)
            ]
            for i in range(n):
                a[i][i] += F(25)  # diagonally dominant -> nonsingular
            k = rng.randint(1, 3)
            b = [
                [F(rng.randint(-9, 9), rng.randint(1, 7)) for _ in range(k)]
                for _ in range(n)
            ]
            assert solve_exact(a, b) == solve_exact_gauss(a, b)

    def test_zero_pivot_requires_row_swap(self):
        a = [[F(0), F(1), F(2)], [F(1), F(0), F(1)], [F(2), F(1), F(0)]]
        b = [[F(3)], [F(2)], [F(3)]]
        assert solve_exact(a, b) == solve_exact_gauss(a, b)

    def test_results_are_fractions(self):
        x = solve_exact([[F(2)]], [[F(1)]])
        assert isinstance(x[0][0], Fraction)
        assert x == [[F(1, 2)]]


class TestErrorDiagnostics:
    def test_singular_error_names_dimensions_and_column(self):
        a = [[F(1), F(2)], [F(2), F(4)]]
        with pytest.raises(MarkovChainError) as excinfo:
            solve_exact(a, [[F(1)], [F(1)]])
        message = str(excinfo.value)
        assert "2x2" in message
        assert "column" in message
        assert excinfo.value.details["rows"] == 2
        assert excinfo.value.details["column"] == 1

    def test_shape_error_reports_dimensions(self):
        with pytest.raises(MarkovChainError) as excinfo:
            solve_exact([[F(1), F(2)]], [[F(1)]])
        assert "1" in str(excinfo.value) and "2" in str(excinfo.value)

    def test_rhs_length_mismatch_reports_dimensions(self):
        with pytest.raises(MarkovChainError) as excinfo:
            solve_exact([[F(1)]], [[F(1)], [F(2)]])
        assert excinfo.value.details.get("rows") == 1


class TestIdentity:
    def test_identity_shape(self):
        eye = identity(2)
        assert eye == [[F(1), F(0)], [F(0), F(1)]]
