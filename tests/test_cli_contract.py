"""The CLI's exit-code and version contracts, as a parametrised matrix.

Exit codes are part of the tool's scripting interface (docs/cli
docstring): 0 success, 2 any library/input error, 130 interrupted.
These tests pin the contract across every subcommand so a new
subcommand cannot silently ship a different convention.
"""

from __future__ import annotations

import json
import tomllib
from pathlib import Path

import pytest

import repro
from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    db = tmp_path / "db.json"
    db.write_text(json.dumps({
        "relations": {
            "e": {"columns": ["I", "J"], "rows": [["v", "w"]]},
            "C": {"columns": ["I"], "rows": [["a"]]},
            "E": {
                "columns": ["I", "J", "P"],
                "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]],
            },
            "Cold": {"columns": ["I"], "rows": []},
        }
    }))
    datalog = tmp_path / "reach.dl"
    datalog.write_text("c(v).\nc(Y) :- c(X), e(X, Y).\n")
    walk = tmp_path / "walk.ra"
    walk.write_text("C := rename[J->I](project[J](repair-key[I@P](C join E)))\n")
    reach = tmp_path / "reach.ra"
    reach.write_text(
        "Cold := C\n"
        "C := C union rename[J->I](project[J]("
        "repair-key[I@P]((C minus Cold) join E)))\n"
    )
    return {
        "db": str(db), "datalog": str(datalog),
        "walk": str(walk), "reach": str(reach),
    }


class TestVersion:
    def test_version_flag_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_version_matches_pyproject(self, capsys):
        pyproject = Path(__file__).resolve().parent.parent / "pyproject.toml"
        declared = tomllib.loads(pyproject.read_text())["project"]["version"]
        with pytest.raises(SystemExit):
            main(["--version"])
        printed = capsys.readouterr().out.strip()
        assert printed == f"repro {declared}"
        assert repro.__version__ == declared


class TestExitZero:
    """Every evaluating subcommand returns 0 on a well-formed run."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["datalog", "{datalog}", "--db", "{db}", "--event", "c(w)"],
            ["forever", "{walk}", "--db", "{db}", "--event", "C(b)"],
            ["forever", "{walk}", "--db", "{db}", "--event", "C(b)", "--lumped"],
            [
                "forever", "{walk}", "--db", "{db}", "--event", "C(b)",
                "--mcmc", "--samples", "50", "--seed", "3", "--burn-in", "8",
            ],
            ["inflationary", "{reach}", "--db", "{db}", "--event", "C(b)"],
            ["chain", "{walk}", "--db", "{db}"],
        ],
        ids=["datalog", "forever", "forever-lumped", "forever-mcmc",
             "inflationary", "chain"],
    )
    def test_success(self, workspace, capsys, argv):
        resolved = [part.format(**workspace) for part in argv]
        assert main(resolved) == 0
        assert capsys.readouterr().out


class TestExitTwo:
    """Library and input errors are exit 2 with a one-line message."""

    @pytest.mark.parametrize(
        "argv",
        [
            # missing file -> OSError
            ["datalog", "/nonexistent.dl", "--db", "{db}", "--event", "c(w)"],
            ["forever", "/nonexistent.ra", "--db", "{db}", "--event", "C(b)"],
            # malformed event -> ReproError
            ["forever", "{walk}", "--db", "{db}", "--event", "not an event"],
            # malformed database JSON -> JSONDecodeError
            ["chain", "{walk}", "--db", "{broken_db}"],
            # budget exhaustion -> BudgetExceededError (a ReproError)
            [
                "forever", "{walk}", "--db", "{db}", "--event", "C(b)",
                "--mcmc", "--samples", "50", "--seed", "3", "--max-steps", "1",
            ],
            # client cannot reach a server -> ServiceError
            ["jobs", "--health", "--url", "http://127.0.0.1:9"],
        ],
        ids=["missing-program", "missing-kernel", "bad-event",
             "broken-db-json", "budget-exhausted", "unreachable-service"],
    )
    def test_error(self, workspace, tmp_path, capsys, argv):
        broken_db = tmp_path / "broken.json"
        broken_db.write_text("{not json")
        workspace = dict(workspace, broken_db=str(broken_db))
        resolved = [part.format(**workspace) for part in argv]
        assert main(resolved) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")


class TestExitOneThirty:
    """Ctrl-C is exit 130; with --checkpoint the message names the file."""

    @pytest.mark.parametrize(
        ("target", "argv"),
        [
            (
                "evaluate_datalog_exact",
                ["datalog", "{datalog}", "--db", "{db}", "--event", "c(w)"],
            ),
            (
                "evaluate_forever_exact",
                ["forever", "{walk}", "--db", "{db}", "--event", "C(b)"],
            ),
            (
                "evaluate_inflationary_exact",
                ["inflationary", "{reach}", "--db", "{db}", "--event", "C(b)"],
            ),
            (
                "build_state_chain",
                ["chain", "{walk}", "--db", "{db}"],
            ),
        ],
        ids=["datalog", "forever", "inflationary", "chain"],
    )
    def test_interrupt(self, workspace, capsys, monkeypatch, target, argv):
        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(f"repro.cli.{target}", interrupt)
        resolved = [part.format(**workspace) for part in argv]
        assert main(resolved) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_interrupt_after_checkpoint_names_the_file(
        self, workspace, tmp_path, capsys, monkeypatch
    ):
        checkpoint = tmp_path / "run.ckpt"

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr("repro.cli.evaluate_forever_mcmc", interrupt)
        assert main([
            "forever", workspace["walk"], "--db", workspace["db"],
            "--event", "C(b)", "--mcmc", "--checkpoint", str(checkpoint),
        ]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert str(checkpoint) in err


class TestSubmitBody:
    """``repro submit`` forwards optional params only when given."""

    def _args(self, workspace, *extra):
        import argparse

        from repro.cli import build_arg_parser

        parser: argparse.ArgumentParser = build_arg_parser()
        return parser.parse_args([
            "submit", "forever", workspace["walk"],
            "--db", workspace["db"], "--event", "C(b)", *extra,
        ])

    def test_partition_auto_lands_in_params(self, workspace):
        from repro.cli import _submit_body

        body = _submit_body(self._args(workspace, "--partition", "auto"))
        assert body["params"]["partition"] == "auto"

    def test_partition_omitted_by_default(self, workspace):
        from repro.cli import _submit_body

        body = _submit_body(self._args(workspace))
        assert "partition" not in body.get("params", {})
