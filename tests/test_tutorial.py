"""Execute every Python snippet in docs/tutorial.md.

The tutorial is executable documentation; this test keeps it that way.
Snippets share one namespace, in order, exactly as a reader would run
them.
"""

import re
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "tutorial.md"


def test_tutorial_snippets_run():
    text = TUTORIAL.read_text(encoding="utf-8")
    snippets = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(snippets) >= 8, "tutorial lost its code snippets"
    namespace: dict = {}
    for index, snippet in enumerate(snippets):
        code = compile(snippet, f"<tutorial-snippet-{index}>", "exec")
        exec(code, namespace)  # noqa: S102 - the point of the test


def test_readme_quickstart_snippet_runs():
    readme = (TUTORIAL.parent.parent / "README.md").read_text(encoding="utf-8")
    snippets = re.findall(r"```python\n(.*?)```", readme, re.S)
    assert snippets, "README lost its quickstart snippet"
    namespace: dict = {}
    for index, snippet in enumerate(snippets):
        code = compile(snippet, f"<readme-snippet-{index}>", "exec")
        exec(code, namespace)  # noqa: S102
