"""Unit tests for pc-table JSON decoding."""

import json
from fractions import Fraction

import pytest

from repro.ctables import TRUE
from repro.errors import SchemaError
from repro.io import condition_from_json, load_pc_database, pc_database_from_json


def spec(**overrides):
    base = {
        "variables": {"x1": {"values": [0, 1], "weights": [1, 3]}},
        "tables": {
            "a": {
                "columns": ["L"],
                "entries": [
                    {"row": ["v1"], "condition": {"var": "x1", "equals": 1}},
                    {"row": ["nv1"], "condition": {"var": "x1", "not_equals": 1}},
                ],
            }
        },
    }
    base.update(overrides)
    return base


class TestConditions:
    def test_atoms(self):
        eq = condition_from_json({"var": "x", "equals": 1})
        assert eq.evaluate({"x": 1})
        assert not eq.evaluate({"x": 0})
        ne = condition_from_json({"var": "x", "not_equals": 1})
        assert ne.evaluate({"x": 0})

    def test_true_and_missing(self):
        assert condition_from_json(True) is TRUE
        assert condition_from_json(None) is TRUE
        assert condition_from_json({"and": []}) is TRUE

    def test_combinators(self):
        condition = condition_from_json(
            {
                "and": [
                    {"or": [{"var": "x", "equals": 1}, {"var": "y", "equals": 1}]},
                    {"not": {"var": "z", "equals": 1}},
                ]
            }
        )
        assert condition.evaluate({"x": 1, "y": 0, "z": 0})
        assert not condition.evaluate({"x": 1, "y": 0, "z": 1})

    def test_values_decoded(self):
        condition = condition_from_json({"var": "x", "equals": "1/2"})
        assert condition.evaluate({"x": Fraction(1, 2)})

    def test_bad_condition(self):
        with pytest.raises(SchemaError):
            condition_from_json({"weird": 1})
        with pytest.raises(SchemaError):
            condition_from_json("nope")
        with pytest.raises(SchemaError):
            condition_from_json({"or": []})


class TestPcDatabase:
    def test_round_trip_semantics(self):
        pcdb = pc_database_from_json(spec())
        worlds = pcdb.possible_worlds()
        assert len(worlds) == 2
        true_world = next(w for w in worlds.support() if ("v1",) in w["a"])
        assert worlds.probability(true_world) == Fraction(3, 4)

    def test_uniform_weights_default(self):
        data = spec()
        del data["variables"]["x1"]["weights"]
        pcdb = pc_database_from_json(data)
        assert pcdb.variables["x1"].probability(1) == Fraction(1, 2)

    def test_missing_sections(self):
        with pytest.raises(SchemaError):
            pc_database_from_json({"variables": {}})
        with pytest.raises(SchemaError):
            pc_database_from_json({"tables": {}})

    def test_length_mismatch(self):
        data = spec()
        data["variables"]["x1"]["weights"] = [1]
        with pytest.raises(SchemaError):
            pc_database_from_json(data)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "pc.json"
        path.write_text(json.dumps(spec()))
        pcdb = load_pc_database(path)
        assert sorted(pcdb.tables) == ["a"]


class TestCliIntegration:
    def test_thm41_style_instance(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "pc.json").write_text(json.dumps(spec()))
        (tmp_path / "db.json").write_text(
            json.dumps(
                {
                    "relations": {
                        "o": {"columns": ["C1", "C2"], "rows": [["q0", "q1"]]},
                        "cl": {"columns": ["C", "L"], "rows": [["q1", "v1"]]},
                    }
                }
            )
        )
        (tmp_path / "prog.dl").write_text(
            "r(q0).\nr(Y) :- r(X), o(X, Y), cl(Y, L), a(L).\ndone(x) :- r(q1).\n"
        )
        code = main(
            [
                "datalog",
                str(tmp_path / "prog.dl"),
                "--db",
                str(tmp_path / "db.json"),
                "--pc",
                str(tmp_path / "pc.json"),
                "--event",
                "done(x)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "probability: 3/4" in out
        assert "pc_worlds: 2" in out
