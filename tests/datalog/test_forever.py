"""Unit tests for non-inflationary probabilistic datalog."""

from fractions import Fraction

import pytest

from repro.core import TupleIn, simulate_trajectory
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.datalog import (
    datalog_forever_query,
    evaluate_datalog_forever,
    parse_program,
)
from repro.errors import DatalogError
from repro.relational import Database, Relation


class TestStatelessChoice:
    def test_weighted_choice_stationary(self):
        """A single choice rule re-fires every step: the long-run
        probability is the per-step choice probability."""
        program = parse_program("h(X*, Y)@P :- e(X, Y, P).")
        edb = Database(
            {"e": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 3)])}
        )
        result = evaluate_datalog_forever(program, edb, TupleIn("h", ("a", "c")))
        assert result.probability == Fraction(3, 4)
        result_b = evaluate_datalog_forever(program, edb, TupleIn("h", ("a", "b")))
        assert result_b.probability == Fraction(1, 4)

    def test_deterministic_program_reaches_certain_state(self):
        program = parse_program("h(X, Y) :- e(X, Y).")
        edb = Database({"e": Relation(("I", "J"), [("a", "b")])})
        result = evaluate_datalog_forever(program, edb, TupleIn("h", ("a", "b")))
        assert result.probability == 1


class TestPipelines:
    def test_two_level_pipeline(self):
        """Level-2 relations hold the choice made one step earlier."""
        program = parse_program(
            """
            h(X*, Y)@P :- e(X, Y, P).
            g(Y) :- h(X, Y).
            """
        )
        edb = Database(
            {"e": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 1)])}
        )
        result = evaluate_datalog_forever(program, edb, TupleIn("g", ("b",)))
        assert result.probability == Fraction(1, 2)

    def test_persistence_rule(self):
        """The Theorem 5.1 idiom done(X) :- done(X) makes an event
        absorbing: once set, the long-run probability is 1."""
        program = parse_program(
            """
            h(X*, Y)@P :- e(X, Y, P).
            done(a) :- h(a, b).
            done(X) :- done(X).
            """
        )
        edb = Database(
            {"e": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 1)])}
        )
        result = evaluate_datalog_forever(program, edb, TupleIn("done", ("a",)))
        assert result.probability == 1


class TestPcTables:
    def _pc(self):
        return PCDatabase(
            {
                "A": CTable(
                    ("L",),
                    [(("t",), var_eq("x", 1)), (("f",), var_eq("x", 0))],
                )
            },
            {"x": boolean_variable(Fraction(1, 4))},
        )

    def test_pc_table_resampled_each_step(self):
        program = parse_program("h(X) :- a(X).")
        # rename c-table to lowercase 'a' (datalog predicates are lowercase)
        pc = PCDatabase(
            {"a": self._pc().tables["A"]}, self._pc().variables
        )
        edb = Database({})
        result = evaluate_datalog_forever(
            program, edb, TupleIn("h", ("t",)), pc_tables=pc
        )
        # h holds the previous step's sample: long-run Pr = Pr[x=1] = 1/4
        assert result.probability == Fraction(1, 4)

    def test_pc_relation_varies_along_trajectory(self):
        import random

        program = parse_program("h(X) :- a(X).")
        pc = PCDatabase({"a": self._pc().tables["A"]}, self._pc().variables)
        query, initial = datalog_forever_query(
            program, Database({}), TupleIn("h", ("t",)), pc_tables=pc
        )
        trajectory = simulate_trajectory(query, initial, 40, random.Random(3))
        assert len({state["a"] for state in trajectory}) == 2

    def test_pc_idb_clash_rejected(self):
        program = parse_program("a(X) :- e(X).")
        pc = PCDatabase({"a": self._pc().tables["A"]}, self._pc().variables)
        with pytest.raises(DatalogError):
            datalog_forever_query(
                program,
                Database({"e": Relation(("I",), [("t",)])}),
                TupleIn("a", ("t",)),
                pc_tables=pc,
            )
