"""Unit tests for the datalog parser."""

from fractions import Fraction

import pytest

from repro.datalog import parse_program, parse_rule
from repro.datalog.ast import Const, Var
from repro.errors import DatalogParseError


class TestRuleParsing:
    def test_fact(self):
        rule = parse_rule("c(v).")
        assert rule.head.predicate == "c"
        assert rule.head.terms == (Const("v"),)
        assert rule.body == ()

    def test_arrow_variants(self):
        for arrow in (":-", "<-", "←"):
            rule = parse_rule(f"c(Y) {arrow} e(X, Y).")
            assert len(rule.body) == 1

    def test_fact_with_arrow_and_empty_body(self):
        """The paper writes fact rules as ``R(c0) ←``."""
        rule = parse_rule("r(q0) :- .")
        assert rule.body == ()

    def test_key_markers(self):
        rule = parse_rule("c2(X*, Y) :- c(X), e(X, Y).")
        assert rule.key_variables == frozenset({"X"})
        assert rule.is_probabilistic()

    def test_weight_annotation(self):
        rule = parse_rule("h(X*, Y)@P :- r(X, Y, P).")
        assert rule.weight_variable == "P"

    def test_example_37(self):
        """H(X, Y, Z)@P ← R(X, Y, Z, P, W) with X, Y underlined."""
        rule = parse_rule("h(X*, Y*, Z)@P :- r(X, Y, Z, P, W).")
        assert rule.key_variables == frozenset({"X", "Y"})
        assert rule.weight_variable == "P"
        assert rule.head.arity == 3

    def test_constants_numbers_and_strings(self):
        rule = parse_rule("h(X) :- r(X, 1, 0.5, -2, 'hello world', abc).")
        constants = [t.value for t in rule.body[0].terms if isinstance(t, Const)]
        assert constants == [1, Fraction(1, 2), -2, "hello world", "abc"]

    def test_anonymous_variables_are_fresh(self):
        rule = parse_rule("done(a) :- r(_, _).")
        names = {t.name for t in rule.body[0].terms}
        assert len(names) == 2  # two distinct fresh variables

    def test_anonymous_not_allowed_in_head(self):
        with pytest.raises(DatalogParseError):
            parse_rule("h(_) :- r(X).")

    def test_zero_arity_head(self):
        rule = parse_rule("q() :- v(x, 1).")
        assert rule.head.arity == 0

    def test_comments_skipped(self):
        program = parse_program(
            """
            % the seed fact
            c(v).   % trailing comment
            c(Y) :- c2(X, Y).
            """
        )
        assert len(program) == 2


class TestErrors:
    def test_uppercase_predicate_rejected(self):
        with pytest.raises(DatalogParseError):
            parse_rule("C(v).")
        with pytest.raises(DatalogParseError):
            parse_rule("h(X) :- Body(X).")

    def test_missing_dot(self):
        with pytest.raises(DatalogParseError):
            parse_rule("c(v)")

    def test_star_on_constant_rejected(self):
        with pytest.raises(DatalogParseError):
            parse_rule("c(v*).")

    def test_weight_must_be_variable(self):
        with pytest.raises(DatalogParseError):
            parse_rule("c(X)@p :- r(X, p).")

    def test_empty_program(self):
        with pytest.raises(DatalogParseError):
            parse_program("   % nothing but a comment\n")

    def test_garbage_character(self):
        with pytest.raises(DatalogParseError):
            parse_rule("c(v) & d(w).")

    def test_trailing_input_after_rule(self):
        with pytest.raises(DatalogParseError):
            parse_rule("c(v). extra")


class TestProgramParsing:
    def test_example_39_program(self):
        program = parse_program(
            """
            c(v).
            c2(X*, Y) :- c(X), e(X, Y).
            c(Y) :- c2(X, Y).
            """
        )
        assert len(program) == 3
        assert program.idb_predicates() == ["c", "c2"]
        assert program.edb_predicates() == ["e"]
        assert program.is_linear()

    def test_round_trip_via_repr(self):
        source = "c2(X*, Y)@P :- c(X), e(X, Y, P)."
        rule = parse_rule(source)
        reparsed = parse_rule(repr(rule))
        assert reparsed.key_variables == rule.key_variables
        assert reparsed.weight_variable == rule.weight_variable
        assert reparsed.head == rule.head
        assert reparsed.body == rule.body
