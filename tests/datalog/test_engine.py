"""Unit tests for the Section 3.3 inflationary datalog engine."""

import random
from fractions import Fraction

import pytest

from repro.core import TupleIn
from repro.datalog import (
    InflationaryDatalogEngine,
    evaluate_datalog_exact,
    evaluate_datalog_sampling,
    parse_program,
)
from repro.errors import DatalogError
from repro.relational import Database, Relation


HALF = Fraction(1, 2)


def reach_program():
    return parse_program(
        """
        c(v).
        c2(X*, Y) :- c(X), e(X, Y).
        c(Y) :- c2(X, Y).
        """
    )


def reach_edb():
    return Database({"e": Relation(("I", "J"), [("v", "w"), ("v", "u")])})


class TestEngineStepSemantics:
    def test_initial_state(self):
        engine = InflationaryDatalogEngine(reach_program(), reach_edb())
        state = engine.initial_state()
        assert len(state["c"]) == 0
        assert len(state["__oldvals_0"]) == 0

    def test_fact_fires_once_then_rules(self):
        """The Example 3.9 trace: v added first, then one of w/u chosen,
        then the chosen one forced by the deterministic third rule."""
        engine = InflationaryDatalogEngine(reach_program(), reach_edb())
        s0 = engine.initial_state()
        s1_dist = engine.transition(s0)
        assert len(s1_dist) == 1  # only the fact rule fires
        s1 = next(iter(s1_dist.support()))
        assert ("v",) in s1["c"]

        s2_dist = engine.transition(s1)
        assert len(s2_dist) == 2  # repair-key choice between (v,w), (v,u)
        for s2, p in s2_dist.items():
            assert p == HALF
            assert len(s2["c2"]) == 1

        s2 = next(iter(s2_dist.support()))
        s3_dist = engine.transition(s2)
        assert len(s3_dist) == 1  # third rule fires deterministically
        s3 = next(iter(s3_dist.support()))
        assert len(s3["c"]) == 2

    def test_valuation_used_only_once(self):
        """Example 3.9: after the choice, the other valuation is no
        longer 'new' — the repair-key does not re-fire."""
        engine = InflationaryDatalogEngine(reach_program(), reach_edb())
        state = engine.initial_state()
        # run to fixpoint deterministically picking first branch
        rng = random.Random(0)
        for _ in range(10):
            nxt = engine.sample_step(state, rng)
            if nxt == state:
                break
            state = nxt
        assert engine.is_fixpoint(state)
        # exactly one of w/u ended up in c
        assert len(state["c"]) == 2

    def test_is_fixpoint(self):
        engine = InflationaryDatalogEngine(reach_program(), reach_edb())
        assert not engine.is_fixpoint(engine.initial_state())

    def test_database_of_strips_bookkeeping(self):
        engine = InflationaryDatalogEngine(reach_program(), reach_edb())
        visible = engine.database_of(engine.initial_state())
        assert all(not name.startswith("__oldvals") for name in visible.names())

    def test_probabilistic_body_rejected(self):
        # bodies must be deterministic (repair-key only via heads)
        program = reach_program()
        engine = InflationaryDatalogEngine(program, reach_edb())
        assert engine is not None  # sanity: plain program accepted


class TestFixpointDistribution:
    def test_reachability_distribution(self):
        engine = InflationaryDatalogEngine(reach_program(), reach_edb())
        finals = engine.fixpoint_distribution()
        assert len(finals) == 2
        assert all(p == HALF for _w, p in finals.items())
        for final in finals.support():
            assert ("v",) in final["c"]
            assert len(final["c"]) == 2


class TestExactEvaluation:
    def test_reachability_half(self):
        result = evaluate_datalog_exact(reach_program(), reach_edb(), TupleIn("c", ("w",)))
        assert result.probability == HALF
        assert result.method == "datalog-exact"

    def test_event_always_true(self):
        result = evaluate_datalog_exact(reach_program(), reach_edb(), TupleIn("c", ("v",)))
        assert result.probability == 1

    def test_weighted_choice(self):
        program = parse_program(
            """
            c(v).
            c2(X*, Y)@P :- c(X), e(X, Y, P).
            c(Y) :- c2(X, Y).
            """
        )
        edb = Database({"e": Relation(("I", "J", "P"), [("v", "w", 1), ("v", "u", 3)])})
        result = evaluate_datalog_exact(program, edb, TupleIn("c", ("u",)))
        assert result.probability == Fraction(3, 4)

    def test_two_hop_chain(self):
        program = reach_program()
        edb = Database(
            {
                "e": Relation(
                    ("I", "J"),
                    [("v", "w"), ("v", "u"), ("w", "x"), ("u", "x")],
                )
            }
        )
        # both branches lead to x
        result = evaluate_datalog_exact(program, edb, TupleIn("c", ("x",)))
        assert result.probability == 1

    def test_transitive_closure_deterministic_program(self):
        program = parse_program("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).")
        edb = Database({"e": Relation(("I", "J"), [(1, 2), (2, 3), (3, 4)])})
        result = evaluate_datalog_exact(program, edb, TupleIn("t", (1, 4)))
        assert result.probability == 1


class TestSampling:
    def test_matches_exact(self):
        result = evaluate_datalog_sampling(
            reach_program(), reach_edb(), TupleIn("c", ("w",)), samples=2000, rng=7
        )
        assert abs(result.estimate - 0.5) < 0.04

    def test_planned_guarantee_recorded(self):
        result = evaluate_datalog_sampling(
            reach_program(),
            reach_edb(),
            TupleIn("c", ("w",)),
            epsilon=0.25,
            delta=0.25,
            rng=1,
        )
        assert result.epsilon == 0.25
        assert result.method == "datalog-thm-4.3"
