"""Unit tests for the datalog AST and program validation."""

import pytest

from repro.datalog import Program, Rule, parse_program, parse_rule
from repro.datalog.ast import Atom, Const, Var
from repro.errors import DatalogError


class TestAtoms:
    def test_arity_and_variables(self):
        atom = Atom("r", (Var("X"), Const(1), Var("X")))
        assert atom.arity == 3
        assert [v.name for v in atom.variables()] == ["X", "X"]

    def test_bad_term_rejected(self):
        with pytest.raises(DatalogError):
            Atom("r", ("not a term",))


class TestRuleViews:
    def test_head_and_body_variables_ordered(self):
        rule = parse_rule("h(Y, X) :- a(X, Z), b(Z, Y).")
        assert rule.head_variables() == ["Y", "X"]
        assert rule.body_variables() == ["X", "Z", "Y"]

    def test_anonymous_excluded_from_body_variables(self):
        rule = parse_rule("h(X) :- a(X, _).")
        assert rule.body_variables() == ["X"]

    def test_effective_key_defaults_to_all_head_vars(self):
        rule = parse_rule("h(X, Y) :- a(X, Y).")
        assert not rule.is_probabilistic()
        assert rule.effective_key_variables() == frozenset({"X", "Y"})

    def test_marked_rule_probabilistic(self):
        rule = parse_rule("h(X*, Y) :- a(X, Y).")
        assert rule.is_probabilistic()
        assert rule.effective_key_variables() == frozenset({"X"})

    def test_all_vars_keyed_uniform_is_deterministic(self):
        """All head variables underlined = essentially non-probabilistic."""
        rule = parse_rule("h(X*, Y*) :- a(X, Y).")
        assert not rule.is_probabilistic()

    def test_weighted_rule_probabilistic(self):
        rule = parse_rule("h(X*, Y*)@P :- a(X, Y, P).")
        assert rule.is_probabilistic()


class TestSafety:
    def test_unsafe_head_variable(self):
        with pytest.raises(DatalogError):
            parse_program("h(X, Y) :- a(X).")

    def test_key_variable_not_in_head(self):
        rule = Rule(
            Atom("h", (Var("X"),)),
            (Atom("a", (Var("X"), Var("Y"))),),
            key_variables={"Y"},
        )
        with pytest.raises(DatalogError):
            rule.validate()

    def test_weight_variable_not_in_body(self):
        with pytest.raises(DatalogError):
            parse_program("h(X)@P :- a(X).")


class TestProgram:
    def test_arity_conflict_rejected(self):
        with pytest.raises(DatalogError):
            parse_program("h(X) :- a(X). h(X, Y) :- a(X), a(Y).")

    def test_empty_program_rejected(self):
        with pytest.raises(DatalogError):
            Program([])

    def test_idb_edb_split(self):
        program = parse_program("h(X) :- a(X). g(X) :- h(X), b(X).")
        assert program.idb_predicates() == ["g", "h"]
        assert program.edb_predicates() == ["a", "b"]

    def test_rules_for(self):
        program = parse_program("h(X) :- a(X). h(X) :- b(X). g(X) :- h(X).")
        assert len(program.rules_for("h")) == 2
        assert len(program.rules_for("g")) == 1

    def test_arity_lookup(self):
        program = parse_program("h(X, Y) :- a(X, Y).")
        assert program.arity("h") == 2
        with pytest.raises(DatalogError):
            program.arity("zz")

    def test_linearity(self):
        linear = parse_program("h(Y) :- h(X), e(X, Y). h(v).")
        assert linear.is_linear()
        nonlinear = parse_program("h(X, Z) :- h(X, Y), h(Y, Z). h(a, b).")
        assert not nonlinear.is_linear()

    def test_has_probabilistic_rules(self):
        assert parse_program("h(X*, Y) :- a(X, Y).").has_probabilistic_rules()
        assert not parse_program("h(X) :- a(X).").has_probabilistic_rules()
