"""Unit tests for the datalog → algebra compiler."""

from fractions import Fraction

import pytest

from repro.core import (
    InflationaryQuery,
    Interpretation,
    TupleIn,
    evaluate_forever_exact,
    evaluate_inflationary_exact,
    ForeverQuery,
)
from repro.datalog import (
    compile_atom,
    compile_body,
    inflationary_initial_database,
    inflationary_interpretation_for_program,
    initial_database,
    noninflationary_interpretation,
    parse_program,
    parse_rule,
    program_schema,
)
from repro.datalog.ast import Atom, Const, Var
from repro.errors import DatalogError
from repro.relational import Database, Relation, evaluate


SCHEMA = {"e": ("I", "J"), "w": ("I", "J", "P")}
DB = Database(
    {
        "e": Relation(("I", "J"), [("a", "b"), ("b", "c"), ("a", "a")]),
        "w": Relation(("I", "J", "P"), [("a", "b", 1), ("a", "c", 3)]),
    }
)


class TestCompileAtom:
    def test_variable_columns(self):
        expr = compile_atom(Atom("e", (Var("X"), Var("Y"))), SCHEMA)
        result = evaluate(expr, DB)
        assert result.columns == ("X", "Y")
        assert ("a", "b") in result

    def test_constant_selects(self):
        expr = compile_atom(Atom("e", (Const("a"), Var("Y"))), SCHEMA)
        result = evaluate(expr, DB)
        assert result.columns == ("Y",)
        assert result.rows == frozenset({("b",), ("a",)})

    def test_repeated_variable_selects_equality(self):
        expr = compile_atom(Atom("e", (Var("X"), Var("X"))), SCHEMA)
        result = evaluate(expr, DB)
        assert result.rows == frozenset({("a",)})

    def test_unknown_predicate(self):
        with pytest.raises(DatalogError):
            compile_atom(Atom("zz", (Var("X"),)), SCHEMA)

    def test_arity_mismatch(self):
        with pytest.raises(DatalogError):
            compile_atom(Atom("e", (Var("X"),)), SCHEMA)


class TestCompileBody:
    def test_join_on_shared_variable(self):
        body = (
            Atom("e", (Var("X"), Var("Y"))),
            Atom("e", (Var("Y"), Var("Z"))),
        )
        result = evaluate(compile_body(body, SCHEMA), DB)
        assert result.columns == ("X", "Y", "Z")
        assert ("a", "b", "c") in result
        assert ("a", "a", "b") in result

    def test_empty_body_single_empty_valuation(self):
        result = evaluate(compile_body((), SCHEMA), DB)
        assert result.columns == ()
        assert result.rows == frozenset({()})

    def test_column_order_matches_rule_body_variables(self):
        rule = parse_rule("h(Z) :- e(X, Y), e(Y, Z).")
        expr = compile_body(rule.body, SCHEMA)
        assert evaluate(expr, DB).columns == tuple(rule.body_variables())


class TestProgramSchema:
    def test_idb_columns_generated(self):
        program = parse_program("h(X, Y) :- e(X, Y).")
        schema = program_schema(program, SCHEMA)
        assert schema["h"] == ("c0", "c1")

    def test_idb_clash_with_edb(self):
        program = parse_program("e(X, X) :- w(X, X, P).")
        with pytest.raises(DatalogError):
            program_schema(program, SCHEMA)

    def test_missing_edb(self):
        program = parse_program("h(X) :- nothere(X).")
        with pytest.raises(DatalogError):
            program_schema(program, {})

    def test_initial_database(self):
        program = parse_program("h(X) :- e(X, Y).")
        init = initial_database(program, DB)
        assert len(init["h"]) == 0
        assert init["e"] == DB["e"]


class TestNoninflationaryTranslation:
    def test_deterministic_program_reaches_transitive_closure_state(self):
        program = parse_program("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).")
        kernel = noninflationary_interpretation(program, {"e": ("I", "J")})
        db = initial_database(program, Database({"e": DB["e"]}))
        # iterate the kernel deterministically a few times
        state = db
        for _ in range(5):
            state = next(iter(kernel.transition(state).support()))
        assert ("a", "c") in state["t"]

    def test_noninflationary_relations_replaced_not_grown(self):
        # h is re-derived from e each step; removing nothing from e keeps
        # h stable, but h does NOT accumulate junk rows
        program = parse_program("h(X) :- e(X, Y).")
        kernel = noninflationary_interpretation(program, {"e": ("I", "J")})
        db = initial_database(program, Database({"e": DB["e"]}))
        state = db.with_relation("h", Relation(("c0",), [("junk",)]))
        nxt = next(iter(kernel.transition(state).support()))
        assert ("junk",) not in nxt["h"]

    def test_probabilistic_rule_branches_every_step(self):
        program = parse_program("h(X*, Y)@P :- w(X, Y, P).")
        kernel = noninflationary_interpretation(program, {"w": ("I", "J", "P")})
        db = initial_database(program, Database({"w": DB["w"]}))
        worlds = kernel.transition(db)
        assert len(worlds) == 2
        by_target = {
            next(iter(w["h"]))[1]: p for w, p in worlds.items()
        }
        assert by_target["b"] == Fraction(1, 4)
        assert by_target["c"] == Fraction(3, 4)


class TestProposition38:
    """The datalog → inflationary query compilation."""

    def test_reachability_agrees_with_dedicated_engine(self):
        from repro.datalog import evaluate_datalog_exact

        program = parse_program(
            """
            c(v).
            c2(X*, Y) :- c(X), e(X, Y).
            c(Y) :- c2(X, Y).
            """
        )
        edb = Database({"e": Relation(("I", "J"), [("v", "w"), ("v", "u")])})
        engine_result = evaluate_datalog_exact(program, edb, TupleIn("c", ("w",)))

        kernel = inflationary_interpretation_for_program(program, edb.schema())
        init = inflationary_initial_database(program, edb)
        compiled = evaluate_inflationary_exact(
            InflationaryQuery(kernel, TupleIn("c", ("w",))), init
        )
        assert compiled.probability == engine_result.probability == Fraction(1, 2)

    def test_oldvals_relations_created(self):
        program = parse_program("h(X) :- e(X, Y).")
        init = inflationary_initial_database(program, Database({"e": DB["e"]}))
        assert "__oldvals_0" in init
        assert init["__oldvals_0"].columns == ("X", "Y")

    def test_fact_rule_fires_once(self):
        program = parse_program("c(v).")
        kernel = inflationary_interpretation_for_program(program, {})
        init = inflationary_initial_database(program, Database({}))
        query = InflationaryQuery(kernel, TupleIn("c", ("v",)))
        result = evaluate_inflationary_exact(query, init)
        assert result.probability == 1
        # initial -> fired -> fixpoint: two distinct states
        assert result.states_explored == 2
