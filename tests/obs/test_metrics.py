"""The unified metrics registry: counters, gauges, histograms, export."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs import MetricsRegistry
from tests.obs.prom import parse_prometheus


def _parse_le(text: str) -> float:
    return math.inf if text == "+Inf" else float(text)


class TestCounter:
    def test_inc_and_total(self):
        counter = MetricsRegistry().counter("c_total", "help")
        counter.inc()
        counter.inc(2.0, outcome="done")
        assert counter.value() == 1.0
        assert counter.value(outcome="done") == 2.0
        assert counter.total() == 3.0

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g", "help")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value() == 4.0

    def test_callback_gauge_reads_at_scrape_time(self):
        box = {"value": 1.0}
        gauge = MetricsRegistry().gauge("g", fn=lambda: box["value"])
        assert gauge.value() == 1.0
        box["value"] = 7.0
        assert gauge.value() == 7.0

    def test_callback_gauge_rejects_set(self):
        gauge = MetricsRegistry().gauge("g", fn=lambda: 0.0)
        with pytest.raises(ValueError):
            gauge.set(1.0)

    def test_mapping_callback_renders_one_series_per_key(self):
        ages = {"0": 0.5, "1": 1.5}
        registry = MetricsRegistry()
        registry.gauge(
            "heartbeat_age_seconds", "per-worker heartbeat age",
            fn=lambda: ages, fn_label="worker",
        )
        samples = parse_prometheus(registry.render_prometheus())
        assert samples["heartbeat_age_seconds"] == [
            ({"worker": "0"}, 0.5),
            ({"worker": "1"}, 1.5),
        ]
        # The worker set changes between scrapes (supervisor restarts).
        ages.pop("1")
        ages["2"] = 0.25
        samples = parse_prometheus(registry.render_prometheus())
        assert {tuple(k.items())[0][1] for k, _ in
                samples["heartbeat_age_seconds"]} == {"0", "2"}

    def test_mapping_callback_value_lookup_and_sum(self):
        gauge = MetricsRegistry().gauge(
            "g", fn=lambda: {"a": 1.0, "b": 2.0}, fn_label="worker"
        )
        assert gauge.value(worker="b") == 2.0
        assert gauge.value() == 3.0


class TestHistogramEdgeCases:
    def test_empty_quantiles_are_none(self):
        histogram = MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(0.99) is None
        assert histogram.count() == 0
        assert histogram.as_dict()["mean"] is None

    def test_quantile_domain_checked(self):
        histogram = MetricsRegistry().histogram("h_seconds", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_single_observation_buckets(self):
        histogram = MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        view = histogram.as_dict()
        assert view["count"] == 1
        assert view["sum"] == 0.05
        # Cumulative: the one observation is in every bucket from 0.1 up.
        assert view["buckets"] == {"0.1": 1, "1": 1, "+Inf": 1}
        assert view["p50"] == 0.05
        assert view["p99"] == 0.05

    def test_overflow_observation_lands_in_inf_bucket(self):
        histogram = MetricsRegistry().histogram("h_seconds", buckets=(0.1,))
        histogram.observe(5.0)
        view = histogram.as_dict()
        assert view["buckets"] == {"0.1": 0, "+Inf": 1}

    def test_concurrent_observe_under_threads(self):
        histogram = MetricsRegistry().histogram(
            "h_seconds", buckets=(0.25, 0.75), keep_observations=False
        )
        per_thread = 1000

        def worker(offset: float) -> None:
            for index in range(per_thread):
                histogram.observe(offset + (index % 2) * 0.5)

        threads = [
            threading.Thread(target=worker, args=(offset,))
            for offset in (0.1, 0.1, 0.2, 0.2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = 4 * per_thread
        assert histogram.count() == total
        view = histogram.as_dict()
        # Exactly half the observations were <= 0.25 (0.1 / 0.2), the
        # rest (0.6 / 0.7) fell in the 0.75 bucket; none overflowed.
        assert view["buckets"]["0.25"] == total // 2
        assert view["buckets"]["0.75"] == total
        assert view["buckets"]["+Inf"] == total

    def test_bucket_quantile_when_observations_overflow(self):
        histogram = MetricsRegistry().histogram("h_seconds", buckets=(1.0, 2.0))
        histogram.max_observations = 0  # force the bucket-interpolation path
        for _ in range(10):
            histogram.observe(0.5)
        assert histogram.quantile(0.5) == 1.0


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", "help")
        b = registry.counter("x_total", "other help ignored")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_as_dict_shapes(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc(3)
        registry.counter("labelled_total").inc(2, kind="a")
        registry.gauge("g").set(1.5)
        view = registry.as_dict()
        assert view["plain_total"] == 3.0
        assert view["labelled_total"] == {'{kind="a"}': 2.0}
        assert view["g"] == 1.5


class TestPrometheusRendering:
    def test_render_parses_and_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "jobs").inc(4, outcome="done")
        registry.counter("jobs_total").inc(1, outcome="failed")
        registry.gauge("depth", "queue depth").set(2)
        histogram = registry.histogram("latency_seconds", "latency",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05, semantics="forever")
        histogram.observe(3.0, semantics="forever")
        samples = parse_prometheus(registry.render_prometheus())
        assert ({"outcome": "done"}, 4.0) in samples["jobs_total"]
        assert samples["depth"] == [({}, 2.0)]
        buckets = dict(
            (labels["le"], value)
            for labels, value in samples["latency_seconds_bucket"]
        )
        assert buckets == {"0.1": 1.0, "1": 1.0, "+Inf": 2.0}
        assert samples["latency_seconds_count"] == [
            ({"semantics": "forever"}, 2.0)
        ]
        assert samples["latency_seconds_sum"][0][1] == pytest.approx(3.05)

    def test_empty_families_render_zero(self):
        registry = MetricsRegistry()
        registry.counter("nothing_total", "never incremented")
        samples = parse_prometheus(registry.render_prometheus())
        assert samples["nothing_total"] == [({}, 0.0)]

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("esc_total").inc(1, reason='say "hi"\nbye\\now')
        samples = parse_prometheus(registry.render_prometheus())
        assert samples["esc_total"][0][0]["reason"] == 'say "hi"\nbye\\now'

    @pytest.mark.parametrize(
        "value",
        ["back\\slash", "new\nline", 'quo"te', '\\"\n', "\\n", ""],
        ids=["backslash", "newline", "quote", "mixed", "literal-backslash-n",
             "empty"],
    )
    def test_label_escaping_per_character(self, value):
        registry = MetricsRegistry()
        registry.counter("esc_total").inc(1, site=value)
        text = registry.render_prometheus()
        # Raw control characters never leak into the exposition.
        for line in text.splitlines():
            assert "\n" not in line  # splitlines guarantees it; belt+braces
        samples = parse_prometheus(text)
        assert samples["esc_total"] == [({"site": value}, 1.0)]

    def test_histogram_exposition_has_no_exemplars_and_is_stable(self):
        """0.0.4 text format under concurrent observes: every scrape is a
        parseable, exemplar-free, monotone-cumulative snapshot."""
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "h_seconds", buckets=(0.5, 1.0), keep_observations=False
        )
        stop = threading.Event()

        def observer() -> None:
            while not stop.is_set():
                histogram.observe(0.3)
                histogram.observe(1.7)

        threads = [threading.Thread(target=observer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(20):
                text = registry.render_prometheus()
                for line in text.splitlines():
                    if line.startswith("#"):
                        continue
                    # Exemplars (OpenMetrics '... # {trace_id=...}')
                    # never appear in the 0.0.4 exposition.
                    assert "#" not in line
                samples = parse_prometheus(text)
                by_le = {
                    _parse_le(labels["le"]): value
                    for labels, value in samples["h_seconds_bucket"]
                }
                cumulative = [by_le[0.5], by_le[1.0], by_le[math.inf]]
                assert cumulative == sorted(cumulative)
                assert samples["h_seconds_count"][0][1] == by_le[math.inf]
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_inf_formatting(self):
        assert math.isinf(float("inf"))  # sanity for the parser helper
        registry = MetricsRegistry()
        registry.histogram("h_seconds", buckets=(0.5,)).observe(9.0)
        text = registry.render_prometheus()
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
