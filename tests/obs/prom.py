"""A small strict Prometheus text-format (0.0.4) parser for the tests.

Parses ``# HELP`` / ``# TYPE`` comments and sample lines, returning the
samples grouped by metric name.  Validation is deliberately pedantic —
the acceptance criterion is that ``/v1/metrics?format=prometheus``
parses with a *real* text-format parser, so this one rejects anything
the official scrapers would.
"""

from __future__ import annotations

import math
import re

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(rf"^({_NAME})(\{{.*\}})? (\S+)$")
_LABEL_RE = re.compile(rf'({_NAME})="((?:[^"\\]|\\.)*)"')


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _unescape(text: str) -> str:
    # Single pass — chained str.replace would corrupt mixed escapes
    # like the literal backslash in 'bye\\now'.
    return re.sub(
        r"\\(.)",
        lambda m: {"n": "\n", '"': '"', "\\": "\\"}.get(m.group(1), m.group(0)),
        text,
    )


def _parse_labels(text: str | None) -> dict[str, str]:
    if not text:
        return {}
    body = text[1:-1]
    labels: dict[str, str] = {}
    matched = 0
    for match in _LABEL_RE.finditer(body):
        labels[match.group(1)] = _unescape(match.group(2))
        matched = match.end()
    rest = body[matched:].strip(", ")
    if rest:
        raise ValueError(f"unparseable label text: {rest!r}")
    return labels


def parse_prometheus(text: str) -> dict[str, list[tuple[dict[str, str], float]]]:
    """Parse exposition text into ``{name: [(labels, value), ...]}``.

    Raises :class:`ValueError` on any malformed line, on samples that
    precede their family's ``# TYPE``, and on non-monotone histogram
    buckets — the failures a real scraper would reject.
    """
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    types: dict[str, str] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                raise ValueError(f"line {number}: malformed comment: {line!r}")
            if parts[1] == "TYPE":
                if parts[3] not in ("counter", "gauge", "histogram", "summary",
                                    "untyped"):
                    raise ValueError(f"line {number}: unknown type {parts[3]!r}")
                types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: malformed sample: {line!r}")
        name, labels_text, value_text = match.groups()
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in types and family not in types:
            raise ValueError(f"line {number}: sample {name!r} precedes # TYPE")
        samples.setdefault(name, []).append(
            (_parse_labels(labels_text), _parse_value(value_text))
        )
    _check_histograms(samples, types)
    return samples


def _check_histograms(samples, types) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(f"{family}_bucket", [])
        series: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in buckets:
            le = labels["le"]
            rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            series.setdefault(rest, []).append((_parse_value(le), value))
        for rest, entries in series.items():
            entries.sort()
            counts = [count for _, count in entries]
            if counts != sorted(counts):
                raise ValueError(
                    f"{family}{dict(rest)}: bucket counts not cumulative"
                )
            count_samples = dict(
                (tuple(sorted(labels.items())), value)
                for labels, value in samples.get(f"{family}_count", [])
            )
            total = count_samples.get(rest)
            if total is not None and entries and entries[-1][1] != total:
                raise ValueError(
                    f"{family}{dict(rest)}: +Inf bucket != _count"
                )
