"""Tracer spans/events, the JSONL schema, and the report renderer."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    JsonlSink,
    MemorySink,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    TraceSchemaError,
    Tracer,
    render_summary,
    summarize,
    validate_trace_lines,
    validate_trace_records,
)


class TestTracer:
    def test_span_nesting_and_parents(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick", n=1)
        records = sink.records
        assert [r["type"] for r in records] == ["start", "event", "span", "span"]
        inner = records[2]
        outer = records[3]
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["span"]
        assert records[1]["parent"] == inner["span"]
        assert all(r["v"] == TRACE_SCHEMA_VERSION for r in records)

    def test_event_bound_counts_drops(self):
        sink = MemorySink()
        tracer = Tracer(sink, max_events=3)
        for index in range(10):
            tracer.event("tick", n=index)
        tracer.run_record(outcome="ok")
        run = sink.records[-1]
        assert run["events"] == 3
        assert run["dropped_events"] == 7
        assert sum(1 for r in sink.records if r["type"] == "event") == 3

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything") as span:
            span.annotate(extra=1)
        NULL_TRACER.event("tick")
        NULL_TRACER.run_record(outcome="ok")
        NULL_TRACER.close()  # no sink, no error

    def test_jsonl_sink_round_trip(self):
        buffer = io.StringIO()
        tracer = Tracer(JsonlSink(buffer, close_handle=False))
        with tracer.span("solve", states=3):
            tracer.event("pivot", column=0)
        tracer.run_record(outcome="ok")
        records = validate_trace_lines(buffer.getvalue().splitlines())
        assert [r["type"] for r in records] == ["start", "event", "span", "run"]


class TestSchema:
    def _trace(self) -> list[dict]:
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("sample"):
            tracer.event("sample", index=1, hit=True, positive=1)
        tracer.run_record(outcome="ok")
        return sink.records

    def test_valid_trace_passes(self):
        assert len(validate_trace_records(self._trace())) == 4

    def test_missing_version_rejected(self):
        records = self._trace()
        del records[0]["v"]
        with pytest.raises(TraceSchemaError, match="schema version"):
            validate_trace_records(records)

    def test_newer_version_rejected(self):
        records = self._trace()
        records[0]["v"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(TraceSchemaError, match="newer"):
            validate_trace_records(records)

    def test_unknown_type_rejected(self):
        records = self._trace()
        records[1]["type"] = "mystery"
        with pytest.raises(TraceSchemaError, match="unknown record type"):
            validate_trace_records(records)

    def test_unknown_keys_tolerated(self):
        records = self._trace()
        records[2]["future_field"] = {"nested": True}
        validate_trace_records(records)

    def test_must_open_with_start(self):
        records = self._trace()[1:]
        with pytest.raises(TraceSchemaError, match="must open with"):
            validate_trace_records(records)

    def test_dangling_parent_rejected(self):
        records = self._trace()
        records[1]["parent"] = 999
        with pytest.raises(TraceSchemaError, match="never appears"):
            validate_trace_records(records)

    def test_negative_duration_rejected(self):
        records = self._trace()
        records[2]["wall_s"] = -0.5
        with pytest.raises(TraceSchemaError, match="non-negative"):
            validate_trace_records(records)

    def test_invalid_json_line_reports_line_number(self):
        with pytest.raises(TraceSchemaError, match="line 2"):
            validate_trace_lines(
                ['{"type": "start", "ts": 0, "v": 1}', "{nope"]
            )


class TestReport:
    def _traced_run(self) -> list[dict]:
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("chain-build"):
            tracer.event("chain-state", expanded=1, discovered=2, frontier=1)
        with tracer.span("sample"):
            for index in range(1, 21):
                tracer.event("sample", index=index, hit=index % 3 == 0,
                             positive=index // 3)
        tracer.run_record(outcome="ok", estimate=0.333,
                          report={"outcome": "ok", "method": "mcmc",
                                  "spent": {"steps": 20}})
        return sink.records

    def test_summary_aggregates(self):
        summary = summarize(validate_trace_records(self._traced_run()))
        assert set(summary.phases) == {"chain-build", "sample"}
        assert summary.events_by_name["sample"] == 20
        assert len(summary.curve) == 20
        assert summary.curve[-1] == (20, 6 / 20)
        assert summary.run["estimate"] == 0.333

    def test_render_contains_sections(self):
        summary = summarize(validate_trace_records(self._traced_run()))
        text = render_summary(summary)
        assert "phase breakdown" in text
        assert "chain-build" in text
        assert "convergence" in text
        assert "estimate: 0.333" in text
        assert "sample                   20" in text

    def test_as_dict_shape(self):
        summary = summarize(validate_trace_records(self._traced_run()))
        payload = summary.as_dict()
        json.dumps(payload)  # JSON-serialisable
        assert payload["phases"]["sample"]["count"] == 1
        assert payload["events"] == {"chain-state": 1, "sample": 20}
        assert payload["curve"][0] == [1, 0.0]

    def test_empty_trace_renders(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.run_record(outcome="ok")
        summary = summarize(validate_trace_records(sink.records))
        assert "(no spans recorded)" in render_summary(summary)
