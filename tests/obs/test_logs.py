"""Service logging: configuration, levels, and job-id correlation."""

from __future__ import annotations

import io
import logging

import pytest

from repro.obs.logs import (
    SERVICE_LOGGER,
    configure_service_logging,
    get_logger,
    job_logger,
)


@pytest.fixture(autouse=True)
def _reset_service_logger():
    yield
    logger = logging.getLogger(SERVICE_LOGGER)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


class TestConfigure:
    def test_level_parsing(self):
        logger = configure_service_logging("warning")
        assert logger.level == logging.WARNING
        assert configure_service_logging(logging.DEBUG).level == logging.DEBUG

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_service_logging("loud")

    def test_reconfiguring_does_not_stack_handlers(self):
        configure_service_logging("info")
        logger = configure_service_logging("debug")
        assert len(logger.handlers) == 1

    def test_records_go_to_stream(self):
        stream = io.StringIO()
        configure_service_logging("info", stream=stream)
        get_logger("scheduler").info("hello")
        line = stream.getvalue()
        assert "repro.service.scheduler" in line
        assert "hello" in line


class TestCorrelation:
    def test_job_logger_injects_job_id(self):
        stream = io.StringIO()
        configure_service_logging("info", stream=stream)
        job_logger(get_logger("scheduler"), "job-7-abc").info("queued")
        assert "[job=job-7-abc]" in stream.getvalue()

    def test_uncorrelated_records_default_to_dash(self):
        stream = io.StringIO()
        configure_service_logging("info", stream=stream)
        get_logger("http").info("listening")
        assert "[job=-]" in stream.getvalue()

    def test_component_loggers_share_the_hierarchy(self):
        assert get_logger().name == SERVICE_LOGGER
        assert get_logger("session").name == f"{SERVICE_LOGGER}.session"
        assert get_logger("session").parent.name == SERVICE_LOGGER
