"""The profiling subsystem: span buffers, stitching, ledgers, rendering."""

from __future__ import annotations

import pytest

from repro.obs import (
    MemorySink,
    NULL_TRACER,
    ResourceLedger,
    SpanBuffer,
    Tracer,
    TraceSchemaError,
    drain_worker_spans,
    folded_stacks,
    phase_totals,
    profile_from_trace,
    profile_payload,
    render_flame,
    render_profile,
    span_tree,
    stitch_spans,
    validate_trace_lines,
    validate_trace_records,
    worker_tracer,
)
from repro.obs.profile import WORKER_MAX_SPANS


def _worker_records() -> list[dict]:
    """What a worker task records: nested spans plus one event."""
    buffer = SpanBuffer()
    with buffer.span("component-solve", component="c0"):
        with buffer.span("chain-build", states=4):
            buffer.event("tick", n=1)
        with buffer.span("solve", states=4):
            pass
    return buffer.drain()


class TestSpanBuffer:
    def test_worker_tracer_follows_profile_flag(self):
        assert isinstance(worker_tracer({"profile": True}), SpanBuffer)
        assert worker_tracer({"profile": False}) is NULL_TRACER
        assert worker_tracer({}) is NULL_TRACER

    def test_drain_returns_only_spans_and_events(self):
        records = _worker_records()
        assert records  # non-empty
        assert all(r["type"] in ("span", "event") for r in records)
        assert all(r["v"] >= 2 for r in records if "v" in r)

    def test_drain_detaches_the_buffer(self):
        buffer = SpanBuffer()
        with buffer.span("work"):
            pass
        assert buffer.drain()
        assert buffer.drain() == []

    def test_drain_caps_record_count(self):
        buffer = SpanBuffer(max_events=10 * WORKER_MAX_SPANS)
        for index in range(WORKER_MAX_SPANS + 50):
            with buffer.span("s", n=index):
                pass
        assert len(buffer.drain()) == WORKER_MAX_SPANS

    def test_drain_worker_spans_helper(self):
        assert drain_worker_spans(NULL_TRACER) is None
        assert drain_worker_spans(Tracer(MemorySink())) is None
        empty = SpanBuffer()
        assert drain_worker_spans(empty) is None
        busy = SpanBuffer()
        with busy.span("work"):
            pass
        assert drain_worker_spans(busy)


class TestStitchSpans:
    def _parent(self) -> tuple[Tracer, MemorySink]:
        sink = MemorySink()
        return Tracer(sink), sink

    def test_roots_reparent_under_dispatching_span(self):
        tracer, sink = self._parent()
        records = _worker_records()
        with tracer.span("partition-solve"):
            count = stitch_spans(
                tracer, records, worker_id=3, spawn_generation=1
            )
        assert count == len(records)
        spans = [r for r in sink.records if r["type"] == "span"]
        dispatch = next(s for s in spans if s["name"] == "partition-solve")
        stitched_root = next(s for s in spans if s["name"] == "component-solve")
        assert stitched_root["parent"] == dispatch["span"]
        assert stitched_root["attrs"]["worker_id"] == 3
        assert stitched_root["attrs"]["spawn_generation"] == 1
        # The whole stitched trace still validates as one schema-clean file.
        tracer.run_record(outcome="ok")
        validate_trace_records(sink.records)

    def test_internal_structure_survives_the_remap(self):
        tracer, sink = self._parent()
        with tracer.span("dispatch"):
            stitch_spans(tracer, _worker_records(), worker_id=0)
        spans = {r["name"]: r for r in sink.records if r["type"] == "span"}
        root = spans["component-solve"]
        assert spans["chain-build"]["parent"] == root["span"]
        assert spans["solve"]["parent"] == root["span"]
        # Remapped ids are unique and distinct from the dispatch span.
        ids = [r["span"] for r in sink.records if r["type"] == "span"]
        assert len(ids) == len(set(ids))

    def test_worker_events_ride_along(self):
        tracer, sink = self._parent()
        with tracer.span("dispatch"):
            stitch_spans(tracer, _worker_records(), worker_id=7)
        events = [r for r in sink.records if r["type"] == "event"]
        assert len(events) == 1
        assert events[0]["worker_id"] == 7

    def test_stitch_respects_parent_event_bound(self):
        sink = MemorySink()
        tracer = Tracer(sink, max_events=1)
        buffer = SpanBuffer()
        with buffer.span("work"):
            for index in range(5):
                buffer.event("tick", n=index)
        with tracer.span("dispatch"):
            stitch_spans(tracer, buffer.drain())
        assert sum(1 for r in sink.records if r["type"] == "event") == 1
        assert tracer.events_dropped == 4

    def test_disabled_or_empty_is_a_noop(self):
        assert stitch_spans(NULL_TRACER, _worker_records()) == 0
        tracer, sink = self._parent()
        assert stitch_spans(tracer, None) == 0
        assert stitch_spans(tracer, []) == 0
        assert [r["type"] for r in sink.records] == ["start"]


class TestResourceLedger:
    def test_add_sums_under_one_key(self):
        ledger = ResourceLedger()
        assert ledger.empty
        ledger.add("supervisor", retries=1)
        ledger.add("supervisor", retries=2, restarts=1)
        rows = ledger.as_dict()["rows"]
        assert rows == [{
            "phase": "supervisor", "component": None, "rung": None,
            "counters": {"restarts": 1.0, "retries": 3.0},
        }]

    def test_component_rung_keys_are_distinct(self):
        ledger = ResourceLedger()
        ledger.add("partition-solve", component="c0", rung="prop-5.4", states=2)
        ledger.add("partition-solve", component="c1", rung="thm-5.6", samples=100)
        rows = ledger.as_dict()["rows"]
        assert [(r["component"], r["rung"]) for r in rows] == [
            ("c0", "prop-5.4"), ("c1", "thm-5.6"),
        ]

    def test_kernel_ops_accumulate(self):
        ledger = ResourceLedger()
        ledger.record_kernel_ops({"join": {"calls": 2, "seconds": 0.5}})
        ledger.record_kernel_ops({"join": {"calls": 1, "seconds": 0.25}})
        assert ledger.as_dict()["kernel_ops"] == {
            "join": {"calls": 3.0, "seconds": 0.75}
        }

    def test_merge_dict_round_trips(self):
        worker = ResourceLedger()
        worker.add("sample", rung="thm-5.6", samples=50)
        worker.record_kernel_ops({"select": {"calls": 4, "seconds": 0.1}})
        parent = ResourceLedger()
        parent.merge_dict(worker.as_dict())
        parent.merge_dict(worker.as_dict())
        payload = parent.as_dict()
        assert payload["rows"][0]["counters"]["samples"] == 100.0
        assert payload["kernel_ops"]["select"]["calls"] == 8.0

    def test_cache_stats_fold_in_fresh_each_render(self):
        ledger = ResourceLedger()
        ledger.add("sample", samples=10)
        stats = {"hits": 5, "misses": 2, "evictions": 0, "hit_rate": 0.71,
                 "enabled": True}
        first = ledger.as_dict(cache=stats)
        second = ledger.as_dict(cache=stats)
        assert first == second  # rendering twice never double-counts
        cache_rows = [r for r in first["rows"]
                      if r["phase"] == "transition-cache"]
        assert len(cache_rows) == 1
        # Booleans are not counters.
        assert "enabled" not in cache_rows[0]["counters"]
        assert cache_rows[0]["counters"]["hits"] == 5.0


def _local_trace() -> tuple[list[dict], dict]:
    """A parent trace with one stitched worker subtree and a run record."""
    sink = MemorySink()
    tracer = Tracer(sink)
    with tracer.span("partition-plan"):
        pass
    with tracer.span("partition-solve", workers=2):
        stitch_spans(tracer, _worker_records(), worker_id=0,
                     spawn_generation=0)
    report = {
        "phases": {
            "partition-plan": {"wall_seconds": 0.0, "cpu_seconds": 0.0,
                               "count": 1},
            "partition-solve": {"wall_seconds": 0.001, "cpu_seconds": 0.001,
                                "count": 1},
        },
        "ledger": {
            "rows": [{"phase": "partition-solve", "component": "c0",
                      "rung": "prop-5.4", "counters": {"states": 2.0}}],
            "kernel_ops": {"join": {"calls": 3.0, "seconds": 0.002}},
        },
    }
    tracer.run_record(outcome="ok", job_id="job-1", report=report)
    return sink.records, report


class TestSpanTree:
    def test_exclusive_excludes_local_children_only(self):
        records, _ = _local_trace()
        roots = span_tree(records)
        solve = next(n for n in roots if n["name"] == "partition-solve")
        worker_root = solve["children"][0]
        assert worker_root["attrs"]["worker_id"] == 0
        # Worker subtree ran in another process: the dispatching span's
        # exclusive time is NOT reduced by it.
        assert solve["excl_wall_s"] == pytest.approx(solve["wall_s"])
        # But the worker's own children are local to the worker.
        child_wall = sum(c["wall_s"] for c in worker_root["children"])
        assert worker_root["excl_wall_s"] == pytest.approx(
            max(0.0, worker_root["wall_s"] - child_wall)
        )

    def test_phase_totals_skip_worker_spans(self):
        records, _ = _local_trace()
        totals = phase_totals(span_tree(records))
        assert set(totals) == {"partition-plan", "partition-solve"}

    def test_folded_stacks_are_parseable(self):
        records, _ = _local_trace()
        lines = folded_stacks(records)
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack  # every line has frames and a weight
            assert int(weight) >= 0
            for frame in stack.split(";"):
                assert frame and " " not in frame
        joined = "\n".join(lines)
        assert "component-solve[component=c0,worker_id=0]" in joined


class TestProfilePayload:
    def test_payload_shape(self):
        records, report = _local_trace()
        payload = profile_payload(records, report, job_id="job-1")
        assert payload["job_id"] == "job-1"
        assert payload["phases"] == report["phases"]
        assert payload["ledger"] == report["ledger"]
        assert payload["spans"]
        assert set(payload["span_phase_totals"]) == {
            "partition-plan", "partition-solve",
        }
        assert payload["folded"] == folded_stacks(records)

    def test_profile_from_trace_reads_the_run_record(self):
        records, report = _local_trace()
        payload = profile_from_trace(records)
        assert payload["job_id"] == "job-1"
        assert payload["ledger"] == report["ledger"]

    def test_render_profile_text(self):
        records, report = _local_trace()
        text = render_profile(profile_payload(records, report, job_id="j"))
        assert "span tree" in text
        assert "component-solve" in text
        assert "worker_id=0" in text
        assert "phase reconciliation" in text
        assert "resource ledger" in text
        assert "kernel ops:" in text

    def test_render_flame_ends_with_newline(self):
        records, _ = _local_trace()
        assert render_flame(records).endswith("\n")

    def test_empty_inputs_render(self):
        payload = profile_payload([], None)
        assert payload["spans"] == []
        assert "(no spans recorded)" in render_profile(payload)


class TestTraceFailureModes:
    def test_empty_trace_raises_typed_error(self):
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_trace_lines([])
        with pytest.raises(TraceSchemaError, match="empty"):
            validate_trace_lines(["", "   ", ""])

    def test_torn_last_line_raises_typed_error(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("work"):
            pass
        tracer.run_record(outcome="ok")
        import json as _json

        lines = [_json.dumps(r) for r in sink.records]
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # torn mid-write
        with pytest.raises(TraceSchemaError, match="invalid JSON"):
            validate_trace_lines(lines)

    def test_trace_schema_error_is_a_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(TraceSchemaError, ReproError)
        assert issubclass(TraceSchemaError, ValueError)
        error = TraceSchemaError("boom", 3)
        assert error.details == {"line": 3}
