"""Unit tests for the c-table condition language."""

import pytest

from repro.ctables import FALSE, TRUE, var_eq, var_ne, vars_eq
from repro.errors import ConditionError


VALUATION = {"x": 1, "y": 0, "z": 1}


class TestAtoms:
    def test_constants(self):
        assert TRUE.evaluate({})
        assert not FALSE.evaluate({})
        assert TRUE.variables() == frozenset()

    def test_var_eq(self):
        assert var_eq("x", 1).evaluate(VALUATION)
        assert not var_eq("x", 0).evaluate(VALUATION)
        assert var_eq("x", 1).variables() == {"x"}

    def test_var_ne(self):
        assert var_ne("y", 1).evaluate(VALUATION)
        assert not var_ne("y", 0).evaluate(VALUATION)

    def test_vars_eq(self):
        assert vars_eq("x", "z").evaluate(VALUATION)
        assert not vars_eq("x", "y").evaluate(VALUATION)
        assert vars_eq("x", "y").variables() == {"x", "y"}

    def test_missing_variable_raises(self):
        with pytest.raises(ConditionError):
            var_eq("missing", 1).evaluate(VALUATION)


class TestCombinators:
    def test_and(self):
        assert (var_eq("x", 1) & var_eq("y", 0)).evaluate(VALUATION)
        assert not (var_eq("x", 1) & var_eq("y", 1)).evaluate(VALUATION)

    def test_or(self):
        assert (var_eq("x", 0) | var_eq("z", 1)).evaluate(VALUATION)
        assert not (var_eq("x", 0) | var_eq("z", 0)).evaluate(VALUATION)

    def test_not(self):
        assert (~var_eq("x", 0)).evaluate(VALUATION)

    def test_nested_variables(self):
        condition = (var_eq("x", 1) & var_ne("y", 2)) | ~vars_eq("y", "z")
        assert condition.variables() == {"x", "y", "z"}

    def test_boolean_combination_matches_python(self):
        for x in (0, 1):
            for y in (0, 1):
                valuation = {"x": x, "y": y}
                condition = (var_eq("x", 1) | var_eq("y", 1)) & ~(
                    var_eq("x", 1) & var_eq("y", 1)
                )
                assert condition.evaluate(valuation) == ((x == 1) ^ (y == 1))

    def test_reprs(self):
        condition = (var_eq("x", 1) & ~var_ne("y", 0)) | vars_eq("x", "y")
        assert "x" in repr(condition)
