"""Unit tests for the pc-table → repair-key macro compilation."""

import random
from fractions import Fraction

import pytest

from repro.ctables import (
    CTable,
    PCDatabase,
    boolean_variable,
    compile_pc_database,
    compile_pc_table,
    domain_relation,
    var_eq,
    var_ne,
    variable_relation_name,
)
from repro.errors import SchemaError
from repro.probability import Distribution
from repro.relational import Database, Relation, enumerate_worlds, sample_world


def _two_var_pcdb() -> PCDatabase:
    entries = []
    for i in (1, 2):
        entries.append(((f"v{i}",), var_eq(f"x{i}", 1)))
        entries.append(((f"nv{i}",), var_eq(f"x{i}", 0)))
    return PCDatabase(
        tables={"A": CTable(("L",), entries)},
        variables={"x1": boolean_variable(), "x2": boolean_variable()},
    )


class TestCompilation:
    def test_matches_native_semantics(self):
        """The compiled expression's world distribution equals the
        pc-table's possible worlds (Section 3.1's macro claim)."""
        pcdb = _two_var_pcdb()
        ground, exprs = compile_pc_database(pcdb)
        compiled = enumerate_worlds(exprs["A"], Database(ground))
        native = pcdb.possible_worlds().map(lambda db: db["A"])
        assert compiled == native

    def test_biased_variables(self):
        pcdb = PCDatabase(
            {"A": CTable(("L",), [(("t",), var_eq("x", 1))])},
            {"x": boolean_variable(Fraction(1, 5))},
        )
        ground, exprs = compile_pc_database(pcdb)
        compiled = enumerate_worlds(exprs["A"], Database(ground))
        native = pcdb.possible_worlds().map(lambda db: db["A"])
        assert compiled == native

    def test_negation_and_conjunction_conditions(self):
        table = CTable(
            ("L",),
            [
                (("both",), var_eq("x", 1) & var_eq("y", 1)),
                (("notx",), var_ne("x", 1)),
            ],
        )
        pcdb = PCDatabase(
            {"A": table}, {"x": boolean_variable(), "y": boolean_variable()}
        )
        ground, exprs = compile_pc_database(pcdb)
        compiled = enumerate_worlds(exprs["A"], Database(ground))
        native = pcdb.possible_worlds().map(lambda db: db["A"])
        assert compiled == native

    def test_sampling_compiled_expression(self):
        pcdb = _two_var_pcdb()
        ground, exprs = compile_pc_database(pcdb)
        db = Database(ground)
        support = enumerate_worlds(exprs["A"], db).support()
        rng = random.Random(4)
        for _ in range(20):
            assert sample_world(exprs["A"], db, rng) in support

    def test_no_variables_resolves_statically(self):
        table = CTable(("L",), [(("always",), None)])
        ground, expr = compile_pc_table("A", table, {})
        assert ground == {}
        worlds = enumerate_worlds(expr, Database({}))
        assert len(worlds) == 1

    def test_certain_relations_forwarded(self):
        pcdb = PCDatabase(
            {"A": CTable(("L",), [(("a",), var_eq("x", 1))])},
            {"x": boolean_variable()},
            certain={"E": Relation(("I",), [("e",)])},
        )
        ground, _exprs = compile_pc_database(pcdb)
        assert ("e",) in ground["E"]

    def test_shared_variable_across_tables_rejected(self):
        tables = {
            "A": CTable(("L",), [(("a",), var_eq("x", 1))]),
            "B": CTable(("L",), [(("b",), var_eq("x", 0))]),
        }
        pcdb = PCDatabase(tables, {"x": boolean_variable()})
        with pytest.raises(SchemaError):
            compile_pc_database(pcdb)

    def test_reserved_column_names_rejected(self):
        table = CTable(("__tid",), [(("a",), var_eq("x", 1))])
        with pytest.raises(SchemaError):
            compile_pc_table("A", table, {"x": boolean_variable()})

    def test_domain_relation(self):
        rel = domain_relation("x", Distribution({0: 1, 1: 3}))
        assert rel.columns == ("V", "P")
        assert (1, Fraction(3, 4)) in rel

    def test_variable_relation_name(self):
        assert variable_relation_name("x7") == "__var_x7"
