"""Unit tests for probabilistic c-tables (Definition 2.1)."""

import random
from fractions import Fraction

import pytest

from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq
from repro.errors import ConditionError, SchemaError
from repro.probability import Distribution
from repro.relational import Relation


@pytest.fixture
def simple_pcdb() -> PCDatabase:
    """One relation, two complementary tuples per variable, 2 variables."""
    entries = []
    for i in (1, 2):
        entries.append(((f"v{i}",), var_eq(f"x{i}", 1)))
        entries.append(((f"nv{i}",), var_eq(f"x{i}", 0)))
    return PCDatabase(
        tables={"A": CTable(("L",), entries)},
        variables={"x1": boolean_variable(), "x2": boolean_variable()},
    )


class TestCTable:
    def test_instantiate(self):
        table = CTable(("L",), [(("a",), var_eq("x", 1)), (("b",), None)])
        world = table.instantiate({"x": 0})
        assert world.rows == frozenset({("b",)})
        world = table.instantiate({"x": 1})
        assert world.rows == frozenset({("a",), ("b",)})

    def test_variables(self):
        table = CTable(("L",), [(("a",), var_eq("x", 1) & var_eq("y", 0))])
        assert table.variables() == {"x", "y"}

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            CTable(("L",), [(("a", "b"), None)])


class TestPCDatabase:
    def test_world_count(self, simple_pcdb):
        assert simple_pcdb.world_count() == 4

    def test_possible_worlds_probabilities(self, simple_pcdb):
        worlds = simple_pcdb.possible_worlds()
        assert len(worlds) == 4
        assert all(p == Fraction(1, 4) for _w, p in worlds.items())

    def test_each_world_consistent(self, simple_pcdb):
        """Exactly one of vᵢ / ¬vᵢ per variable (the Lemma 4.2 setup)."""
        for world in simple_pcdb.possible_worlds().support():
            literals = {row[0] for row in world["A"]}
            for i in (1, 2):
                assert (f"v{i}" in literals) != (f"nv{i}" in literals)

    def test_world_merging(self):
        """Valuations mapping to the same database merge."""
        table = CTable(("L",), [(("a",), var_eq("x", 0) | var_eq("x", 1))])
        pcdb = PCDatabase({"A": table}, {"x": boolean_variable()})
        worlds = pcdb.possible_worlds()
        assert len(worlds) == 1
        assert next(iter(worlds.items()))[1] == 1

    def test_certain_relations_in_every_world(self, simple_pcdb):
        pcdb = PCDatabase(
            simple_pcdb.tables,
            simple_pcdb.variables,
            certain={"E": Relation(("I",), [("e",)])},
        )
        for world in pcdb.possible_worlds().support():
            assert ("e",) in world["E"]

    def test_undeclared_variable_rejected(self):
        with pytest.raises(ConditionError):
            PCDatabase({"A": CTable(("L",), [(("a",), var_eq("x", 1))])}, {})

    def test_certain_clash_rejected(self, simple_pcdb):
        with pytest.raises(SchemaError):
            PCDatabase(
                simple_pcdb.tables,
                simple_pcdb.variables,
                certain={"A": Relation(("L",), [])},
            )

    def test_sample_world_in_support(self, simple_pcdb):
        worlds = simple_pcdb.possible_worlds()
        rng = random.Random(2)
        for _ in range(20):
            assert simple_pcdb.sample_world(rng) in worlds.support()

    def test_sample_valuation_frequencies(self):
        pcdb = PCDatabase(
            {"A": CTable(("L",), [(("a",), var_eq("x", 1))])},
            {"x": boolean_variable(Fraction(3, 4))},
        )
        rng = random.Random(11)
        draws = [pcdb.sample_valuation(rng)["x"] for _ in range(2000)]
        assert abs(sum(draws) / 2000 - 0.75) < 0.04

    def test_database_of_valuation(self, simple_pcdb):
        db = simple_pcdb.database_of_valuation({"x1": 1, "x2": 0})
        assert db["A"].rows == frozenset({("v1",), ("nv2",)})


class TestBooleanVariable:
    def test_uniform_default(self):
        d = boolean_variable()
        assert d.probability(0) == Fraction(1, 2)

    def test_biased(self):
        d = boolean_variable(Fraction(1, 3))
        assert d.probability(1) == Fraction(1, 3)
        assert d.probability(0) == Fraction(2, 3)
