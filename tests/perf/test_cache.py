"""TransitionCache: memoization, LRU bound, sampling equivalence."""

import pytest

from repro.core.chain_builder import build_state_chain
from repro.core.interpretation import Interpretation
from repro.errors import EvaluationError, ProbabilityError
from repro.perf import CachedRow, TransitionCache
from repro.probability.rng import make_rng
from repro.relational import rel
from repro.workloads import cycle_graph, random_walk_query


@pytest.fixture()
def walk():
    return random_walk_query(cycle_graph(5), "n0", "n2")


class TestMemoization:
    def test_transition_matches_kernel(self, walk):
        query, db = walk
        cache = TransitionCache(query.kernel)
        assert cache.transition(db) == query.kernel.transition(db)

    def test_hit_miss_counters(self, walk):
        query, db = walk
        cache = TransitionCache(query.kernel, maxsize=8)
        cache.transition(db)
        cache.transition(db)
        cache.transition(db)
        assert (cache.hits, cache.misses, cache.evictions) == (2, 1, 0)
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(2 / 3)

    def test_rows_are_shared_objects(self, walk):
        query, db = walk
        cache = TransitionCache(query.kernel)
        assert cache.row(db) is cache.row(db)

    def test_clear_drops_rows_keeps_counters(self, walk):
        query, db = walk
        cache = TransitionCache(query.kernel)
        cache.transition(db)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 1


class TestLruBound:
    def test_size_never_exceeds_maxsize(self, walk):
        query, db = walk
        cache = TransitionCache(query.kernel, maxsize=2)
        rng = make_rng(7)
        state = db
        for _ in range(50):
            state = cache.sample(state, rng)
        assert len(cache) <= 2
        assert cache.evictions > 0

    def test_least_recently_used_is_evicted(self, walk):
        query, db = walk
        chain = build_state_chain(query.kernel, db)
        first, second, third = list(chain.states)[:3]
        cache = TransitionCache(query.kernel, maxsize=2)
        cache.row(first)
        cache.row(second)
        cache.row(first)  # refresh first: second is now LRU
        cache.row(third)  # evicts second
        before = cache.misses
        cache.row(first)
        assert cache.misses == before  # still cached
        cache.row(second)
        assert cache.misses == before + 1  # was evicted

    def test_rejects_non_positive_maxsize(self, walk):
        query, _ = walk
        with pytest.raises(ProbabilityError):
            TransitionCache(query.kernel, maxsize=0)


class TestSamplingEquivalence:
    def test_cached_row_matches_distribution_sample(self, walk):
        """CachedRow.sample replays Distribution.sample's accumulation
        order, so identical rng states give identical outcomes."""
        query, db = walk
        row = CachedRow(query.kernel.transition(db))
        for seed in range(40):
            assert row.sample(make_rng(seed)) == row.distribution.sample(
                make_rng(seed)
            )

    def test_cached_walk_visits_correct_support(self, walk):
        query, db = walk
        cache = TransitionCache(query.kernel)
        rng = make_rng(3)
        state = db
        for _ in range(200):
            successor = cache.sample(state, rng)
            assert cache.transition(state).probability(successor) > 0
            state = successor


class TestIntegration:
    def test_cached_convenience_constructor(self, walk):
        query, _ = walk
        cache = query.kernel.cached(maxsize=7)
        assert isinstance(cache, TransitionCache)
        assert cache.maxsize == 7
        assert cache.kernel is query.kernel

    def test_chain_builder_accepts_warm_cache(self, walk):
        query, db = walk
        cache = query.kernel.cached()
        cold = build_state_chain(query.kernel, db)
        warm = build_state_chain(query.kernel, db, cache=cache)
        assert warm.size == cold.size
        misses_after_first = cache.misses
        build_state_chain(query.kernel, db, cache=cache)
        assert cache.misses == misses_after_first  # fully memoized rebuild

    def test_chain_builder_rejects_foreign_cache(self, walk):
        query, db = walk
        other = Interpretation({"C": rel("C")})
        with pytest.raises(EvaluationError):
            build_state_chain(query.kernel, db, cache=TransitionCache(other))


class TestThreadSafety:
    def test_concurrent_walkers_share_one_cache(self, walk):
        """Scheduler workers share a session's cache; rows must never
        be corrupted and every lookup must agree with the kernel."""
        import threading

        query, db = walk
        cache = TransitionCache(query.kernel, maxsize=64)
        errors = []

        def walker(seed):
            rng = make_rng(seed)
            state = db
            try:
                for _ in range(300):
                    row = cache.row(state)
                    assert row.distribution == query.kernel.transition(state)
                    state = cache.sample(state, rng)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=walker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        # two lookups per iteration: row() plus sample()'s internal row()
        assert stats["hits"] + stats["misses"] == 2 * 8 * 300
        assert len(cache) <= 64
