"""Supervised warm pool: determinism, crash/hang/transient recovery.

These tests drive the *production* sampler path
(:func:`evaluate_forever_mcmc` with ``ParallelConfig``) under installed
fault plans — the supervisor, heartbeats, restarts, and chunk retries
are all the real code, not mocks.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core import evaluate_forever_mcmc
from repro.errors import WorkerPoolError
from repro.faults import SITE_SUPERVISOR_TASK, FaultPlan, FaultSpec
from repro.perf import ParallelConfig, prewarm, warm_pool_stats
from repro.perf.supervisor import HEARTBEAT_TIMEOUT_ENV
from repro.runtime import RunContext
from repro.workloads import cycle_graph, random_walk_query

WORKERS = 2
SAMPLES = 24
BURN_IN = 5
SEED = 11


@pytest.fixture(scope="module")
def walk():
    return random_walk_query(cycle_graph(6), "n0", "n3")


@pytest.fixture(autouse=True)
def chaos_hygiene(monkeypatch):
    """No plan, default heartbeat, before and after every test.

    Uninstalling changes ``REPRO_FAULT_PLAN``, which makes the warm
    pool recycle its workers at generation 0 on the next lease — so a
    test's plan can never leak into its neighbours' worker processes.
    """
    faults.uninstall()
    monkeypatch.delenv(HEARTBEAT_TIMEOUT_ENV, raising=False)
    yield
    faults.uninstall()


def run_walk(walk, *, persistent=True, context=None):
    query, db = walk
    return evaluate_forever_mcmc(
        query,
        db,
        samples=SAMPLES,
        burn_in=BURN_IN,
        rng=SEED,
        parallel=ParallelConfig(workers=WORKERS, persistent=persistent),
        context=context,
    )


class TestDeterminism:
    def test_warm_pool_bit_identical_to_spawn_per_call(self, walk):
        warm = run_walk(walk, persistent=True)
        cold = run_walk(walk, persistent=False)
        assert warm.positive == cold.positive
        assert warm.estimate == cold.estimate
        assert warm.samples == cold.samples == SAMPLES

    def test_warm_pool_stable_across_reuse(self, walk):
        first = run_walk(walk)
        stats = warm_pool_stats()
        assert stats["alive"] == WORKERS
        second = run_walk(walk)
        assert second.positive == first.positive
        assert second.estimate == first.estimate

    def test_prewarm_reports_hot_workers(self, walk):
        stats = prewarm(WORKERS)
        assert stats["workers"] == WORKERS
        assert stats["alive"] == WORKERS
        # The prewarmed pool serves the next run unchanged.
        result = run_walk(walk)
        assert result.samples == SAMPLES

    def test_heartbeat_ages_exposed_per_worker(self, walk):
        from repro.perf.supervisor import warm_pool_heartbeat_ages

        prewarm(WORKERS)
        stats = warm_pool_stats()
        ages = stats["heartbeat_ages"]
        assert set(ages) == {str(i) for i in range(WORKERS)}
        assert all(age >= 0.0 for age in ages.values())
        assert warm_pool_heartbeat_ages() == ages

    def test_worker_spans_stitched_with_worker_ids(self, walk):
        from repro.obs import MemorySink, Tracer

        context = RunContext(tracer=Tracer(MemorySink()))
        result = run_walk(walk, context=context)
        baseline = run_walk(walk)
        assert result.positive == baseline.positive  # profiling is inert
        records = context.tracer.sink.records
        worker_spans = [
            r for r in records
            if r.get("type") == "span"
            and "worker_id" in (r.get("attrs") or {})
        ]
        assert worker_spans, "no spans recorded inside worker processes"
        ids = {r["attrs"]["worker_id"] for r in worker_spans}
        assert ids <= set(range(WORKERS))
        assert all(
            r["attrs"].get("spawn_generation") is not None
            for r in worker_spans
        )
        # Stitched under the dispatching 'sample' span, not floating.
        spans = {r["span"]: r for r in records if r.get("type") == "span"}
        for record in worker_spans:
            parent = record.get("parent")
            assert parent in spans


class TestFaultRecovery:
    def test_crash_recovery_is_bit_identical(self, walk):
        baseline = run_walk(walk)
        # generation=0: kill each *original* worker on its first chunk;
        # replacement workers (generation >= 1) run clean.
        faults.install(FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "crash", generation=0)]
        ))
        context = RunContext()
        survived = run_walk(walk, context=context)
        assert survived.positive == baseline.positive
        assert survived.estimate == baseline.estimate
        events = context.report().events
        assert any("restarted" in event for event in events)
        assert any("WorkerCrashError" in event for event in events)

    def test_hang_recovery_via_heartbeat(self, walk, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_TIMEOUT_ENV, "1.0")
        baseline = run_walk(walk)
        faults.install(FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "hang", generation=0)]
        ))
        context = RunContext()
        survived = run_walk(walk, context=context)
        assert survived.estimate == baseline.estimate
        events = context.report().events
        assert any("WorkerStalledError" in event for event in events)

    def test_transient_fault_retries_chunk(self, walk):
        baseline = run_walk(walk)
        # Each worker process raises a retryable fault on its first
        # chunk; the chunk is idempotently re-dispatched.
        faults.install(FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "raise")]
        ))
        context = RunContext()
        survived = run_walk(walk, context=context)
        assert survived.positive == baseline.positive
        assert survived.estimate == baseline.estimate
        events = context.report().events
        assert any("chunk retry" in event for event in events)

    def test_crash_restart_counted_with_reason_label(self, walk):
        from repro.obs import MetricsRegistry

        faults.install(FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "crash", generation=0)]
        ))
        registry = MetricsRegistry()
        context = RunContext(metrics=registry)
        run_walk(walk, context=context)
        restarts = registry.counter("repro_worker_restarts_total")
        assert restarts.value(reason="crash") >= 1
        assert restarts.value(reason="stall") == 0
        # The run's ledger records the restarts too.
        rows = {
            (row["phase"], row["component"], row["rung"]): row["counters"]
            for row in context.ledger.as_dict()["rows"]
        }
        assert rows[("supervisor", None, None)]["restarts"] >= 1

    def test_stall_restart_counted_with_reason_label(self, walk, monkeypatch):
        from repro.obs import MetricsRegistry

        monkeypatch.setenv(HEARTBEAT_TIMEOUT_ENV, "1.0")
        faults.install(FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "hang", generation=0)]
        ))
        registry = MetricsRegistry()
        context = RunContext(metrics=registry)
        run_walk(walk, context=context)
        restarts = registry.counter("repro_worker_restarts_total")
        assert restarts.value(reason="stall") >= 1

    def test_restart_budget_exhaustion_fails_the_run(self, walk):
        # No generation bound: every replacement worker also crashes on
        # its first chunk — the classic crash loop the restart budget
        # exists to stop.
        faults.install(FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "crash")]
        ))
        with pytest.raises(WorkerPoolError, match="restart budget"):
            run_walk(walk)
