"""Bit-exact equivalence between the frozenset and columnar backends.

The gate for the columnar kernel: over the workloads corpus, the
compiled plans must reproduce the frozenset interpreter *exactly* —
identical transition distributions (exact ``Fraction`` weights),
identical sampled trajectories for a shared seed, an identical RNG
stream afterwards (same number and order of draws), and identical
evaluator answers end-to-end.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core import (
    ForeverQuery,
    evaluate_forever_exact,
    evaluate_forever_lumped,
    evaluate_forever_mcmc,
    evaluate_inflationary_sampling,
)
from repro.kernel import compile_query, extern_database
from repro.workloads import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    layered_dag,
    pagerank_query,
    random_walk_query,
    reachability_query,
    star_graph,
)

CASES = {
    "walk-cycle": lambda: random_walk_query(cycle_graph(8), "n0", "n3"),
    "walk-complete": lambda: random_walk_query(complete_graph(5), "n0", "n2"),
    "walk-barbell": lambda: random_walk_query(barbell_graph(4), "l0", "r2"),
    "walk-star": lambda: random_walk_query(star_graph(6), "hub", "leaf2"),
    "walk-grid": lambda: random_walk_query(grid_graph(3, 3), "g0_0", "g2_2"),
    "walk-er": lambda: random_walk_query(
        erdos_renyi(8, 0.5, rng=random.Random(13)), "n0", "n5"
    ),
    "pagerank": lambda: pagerank_query(
        complete_graph(5), Fraction(1, 5), "n0", "n2"
    ),
    "pagerank-cycle": lambda: pagerank_query(
        cycle_graph(6), Fraction(1, 4), "n0", "n3"
    ),
    "reach-dag": lambda: reachability_query(
        layered_dag(3, 3, rng=random.Random(7)), "v0_0", "sink"
    ),
}


@pytest.mark.parametrize("name", sorted(CASES), ids=sorted(CASES))
def test_transition_distribution_identical(name):
    query, db = CASES[name]()
    compiled = compile_query(query, db)
    exact_f = dict(query.kernel.transition(db).items())
    exact_c = {
        extern_database(state): weight
        for state, weight in compiled.kernel.transition(compiled.initial).items()
    }
    assert exact_c == exact_f  # Fraction-exact, not approximate


@pytest.mark.parametrize("name", sorted(CASES), ids=sorted(CASES))
def test_sampled_trajectories_and_rng_stream_identical(name):
    query, db = CASES[name]()
    compiled = compile_query(query, db)
    rng_f, rng_c = random.Random(42), random.Random(42)
    state_f, state_c = db, compiled.initial
    for step in range(40):
        state_f = query.kernel.sample_transition(state_f, rng_f)
        state_c = compiled.kernel.sample_transition(state_c, rng_c)
        assert extern_database(state_c) == state_f, f"step {step}"
        assert compiled.event.holds(state_c) == query.event.holds(state_f)
    # Same draws, in the same order: the whole RNG stream must agree.
    assert rng_f.getstate() == rng_c.getstate()


@pytest.mark.parametrize(
    "name", ["walk-cycle", "pagerank", "walk-barbell"], ids=str
)
def test_forever_exact_and_lumped_identical(name):
    query, db = CASES[name]()
    result_f = evaluate_forever_exact(query, db)
    result_c = evaluate_forever_exact(query, db, backend="columnar")
    assert result_c.probability == result_f.probability
    assert result_c.states_explored == result_f.states_explored
    assert result_c.details.get("backend") == "columnar"

    lumped_f = evaluate_forever_lumped(query, db)
    lumped_c = evaluate_forever_lumped(query, db, backend="columnar")
    assert lumped_c.probability == lumped_f.probability
    assert lumped_c.details["quotient_states"] == lumped_f.details["quotient_states"]


def test_forever_mcmc_bit_identical_for_fixed_seed():
    query, db = CASES["walk-cycle"]()
    result_f = evaluate_forever_mcmc(
        query, db, samples=300, burn_in=5, rng=11
    )
    result_c = evaluate_forever_mcmc(
        query, db, samples=300, burn_in=5, rng=11, backend="columnar"
    )
    assert result_c.estimate == result_f.estimate
    assert result_c.positive == result_f.positive
    assert result_c.details.get("backend") == "columnar"


def test_inflationary_sampling_bit_identical_for_fixed_seed():
    query, db = CASES["reach-dag"]()
    result_f = evaluate_inflationary_sampling(query, db, samples=150, rng=5)
    result_c = evaluate_inflationary_sampling(
        query, db, samples=150, rng=5, backend="columnar"
    )
    assert result_c.estimate == result_f.estimate
    assert result_c.positive == result_f.positive


def test_parallel_workers_match_columnar():
    from repro.perf import ParallelConfig

    query, db = CASES["walk-cycle"]()
    result_f = evaluate_forever_mcmc(
        query, db, samples=48, burn_in=4, rng=9,
        parallel=ParallelConfig(workers=2),
    )
    result_c = evaluate_forever_mcmc(
        query, db, samples=48, burn_in=4, rng=9,
        parallel=ParallelConfig(workers=2), backend="columnar",
    )
    assert result_c.estimate == result_f.estimate


def test_enumerated_transition_matches_repair_distribution():
    # The _enumerate path (exact chain build) and prob_eval recursion
    # agree on a keyless weighted repair-key (footnote-1 merging).
    query, db = CASES["pagerank"]()
    compiled = compile_query(query, db)
    distribution_c = compiled.kernel.transition(compiled.initial)
    total = sum(weight for _, weight in distribution_c.items())
    assert total == Fraction(1)
