"""Unit tests for the columnar compiler: eligibility, fallback, events."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core import ForeverQuery
from repro.core.events import TupleIn
from repro.core.evaluation.backend import (
    check_backend,
    fallback_total,
    resolve_backend,
)
from repro.core.interpretation import Interpretation
from repro.errors import EvaluationError
from repro.kernel import (
    CompiledKernel,
    KernelCompileError,
    compile_event,
    compile_kernel,
    compile_query,
    extern_database,
    kernel_ineligibility,
)
from repro.relational import Database, Relation, rel
from repro.relational.algebra import Select
from repro.relational.predicates import RowPredicate
from repro.workloads import cycle_graph, random_walk_query


def opaque_kernel():
    return Interpretation(
        {"C": Select(rel("C"), RowPredicate(lambda row: True, ("I",)))}
    )


def test_ineligibility_reports_row_predicates():
    reasons = kernel_ineligibility(opaque_kernel())
    assert reasons and "RowPredicate" in reasons[0]


def test_eligibility_of_workload_kernels():
    query, _ = random_walk_query(cycle_graph(4), "n0", "n2")
    assert kernel_ineligibility(query.kernel) == []


def test_compile_query_raises_on_ineligible_kernel():
    db = Database({"C": Relation(("I",), [("a",)])})
    query = ForeverQuery(opaque_kernel(), TupleIn("C", ("a",)))
    with pytest.raises(KernelCompileError):
        compile_query(query, db)


def test_resolve_backend_falls_back_with_counter():
    db = Database({"C": Relation(("I",), [("a",)])})
    query = ForeverQuery(opaque_kernel(), TupleIn("C", ("a",)))
    before = fallback_total()
    out_query, out_db, effective = resolve_backend(query, db, "columnar")
    assert effective == "frozenset"
    assert out_query is query and out_db is db
    assert fallback_total() == before + 1


def test_resolve_backend_falls_back_on_checkpointing_and_cache():
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    _, _, effective = resolve_backend(query, db, "columnar", checkpointing=True)
    assert effective == "frozenset"
    _, _, effective = resolve_backend(query, db, "columnar", cache=object())
    assert effective == "frozenset"


def test_resolve_backend_passes_compiled_through():
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    compiled = compile_query(query, db)
    out_query, out_db, effective = resolve_backend(
        compiled.query, compiled.initial, "columnar", cache=object()
    )
    assert effective == "columnar"
    assert isinstance(out_query.kernel, CompiledKernel)


def test_check_backend_rejects_unknown():
    assert check_backend(None) == "frozenset"
    assert check_backend("columnar") == "columnar"
    with pytest.raises(EvaluationError):
        check_backend("sparse")


def test_compile_event_shared_kernel_across_events():
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    kernel, initial = compile_kernel(query.kernel, db)
    event_hit = compile_event(TupleIn("C", ("n2",)), kernel)
    event_miss = compile_event(TupleIn("C", ("n3",)), kernel)
    rng = random.Random(3)
    state = initial
    seen_hit = seen_miss = False
    for _ in range(30):
        state = kernel.sample_transition(state, rng)
        plain = extern_database(state)
        assert event_hit.holds(state) == (("n2",) in plain["C"].rows)
        assert event_miss.holds(state) == (("n3",) in plain["C"].rows)
        seen_hit |= event_hit.holds(state)
        seen_miss |= event_miss.holds(state)
    assert seen_hit and seen_miss


def test_event_constant_outside_universe_is_false():
    # A value never interned can never appear in any state; the event
    # must be constant-false, matching the frozenset semantics.
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    kernel, initial = compile_kernel(query.kernel, db)
    stranger = compile_event(TupleIn("C", ("not-a-node",)), kernel)
    assert stranger.holds(initial) is False


def test_compiled_kernel_duck_type_surface():
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    kernel, initial = compile_kernel(query.kernel, db)
    assert kernel.pc_tables is None
    assert kernel.without_pc_tables() is kernel
    assert kernel.pc_relation_names() == []
    assert kernel.is_deterministic() == query.kernel.is_deterministic()
    assert sorted(kernel.updated_relations()) == sorted(
        query.kernel.updated_relations()
    )
    kernel.check_schema(initial)
    cache = kernel.cached(maxsize=16)
    row = cache.transition(initial)
    assert sum(weight for _, weight in row.items()) == Fraction(1)


def test_op_timings_accumulate():
    query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    compiled = compile_query(query, db)
    rng = random.Random(1)
    state = compiled.initial
    for _ in range(5):
        state = compiled.kernel.sample_transition(state, rng)
    timings = compiled.kernel.op_timings()
    assert "repair-key" in timings and timings["repair-key"]["calls"] >= 5
    assert all(entry["seconds"] >= 0.0 for entry in timings.values())
