"""Cross-process sampling determinism without hash-seed pinning.

String hashing is randomized per interpreter process; if any code path
iterated a set/dict of rows in hash order, seeded sampler tallies would
differ between processes.  These tests run the same seeded evaluation
in subprocesses with *different* ``PYTHONHASHSEED`` values and require
byte-identical output — the canonical-ordering guarantee the columnar
kernel's RNG parity rests on.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

SCRIPT = r"""
import json, random, sys
from fractions import Fraction
from repro.core import evaluate_forever_mcmc, evaluate_inflationary_sampling
from repro.workloads import (
    cycle_graph, layered_dag, random_walk_query, reachability_query,
)

backend = sys.argv[1] if len(sys.argv) > 1 else None

query, db = random_walk_query(cycle_graph(6), "n0", "n3")
mcmc = evaluate_forever_mcmc(
    query, db, samples=120, burn_in=4, rng=7, backend=backend
)

rng = random.Random(21)
state = db
trace = []
for _ in range(25):
    state = query.kernel.sample_transition(state, rng)
    trace.append(query.event.holds(state))

reach_query, reach_db = reachability_query(
    layered_dag(2, 3, rng=random.Random(3)), "v0_0", "sink"
)
infl = evaluate_inflationary_sampling(
    reach_query, reach_db, samples=80, rng=5, backend=backend
)

print(json.dumps({
    "mcmc": [str(mcmc.estimate), mcmc.positive, mcmc.samples],
    "trace": trace,
    "inflationary": [str(infl.estimate), infl.positive],
    "rng_tail": random.Random(21).random(),
}, sort_keys=True))
"""


def run_with_hashseed(seed: str, backend: str | None) -> str:
    env = {**os.environ, "PYTHONHASHSEED": seed}
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), "src") if p
    )
    argv = [sys.executable, "-c", SCRIPT] + ([backend] if backend else [])
    proc = subprocess.run(
        argv, capture_output=True, text=True, env=env, timeout=300,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("backend", [None, "columnar"], ids=["frozenset", "columnar"])
def test_tallies_identical_across_hash_seeds(backend):
    out_a = run_with_hashseed("1", backend)
    out_b = run_with_hashseed("31337", backend)
    assert out_a == out_b
    payload = json.loads(out_a)
    assert payload["mcmc"][2] == 120


def test_backends_agree_across_processes():
    # The frozenset run under one hash seed and the columnar run under
    # another must still produce identical seeded tallies.
    out_f = json.loads(run_with_hashseed("2", None))
    out_c = json.loads(run_with_hashseed("99", "columnar"))
    assert out_f["mcmc"] == out_c["mcmc"]
    assert out_f["trace"] == out_c["trace"]
    assert out_f["inflationary"] == out_c["inflationary"]
