"""Unit tests for JSON database I/O."""

from fractions import Fraction

import pytest

from repro.errors import SchemaError
from repro.io import (
    database_from_json,
    database_to_json,
    decode_value,
    encode_value,
    load_database,
    save_database,
)
from repro.relational import Database, Relation


class TestValueCodec:
    def test_int_round_trip(self):
        assert decode_value(3) == 3
        assert encode_value(3) == 3

    def test_float_decodes_decimal_exactly(self):
        assert decode_value(0.1) == Fraction(1, 10)
        assert decode_value(0.5) == Fraction(1, 2)

    def test_rational_string(self):
        assert decode_value("1/3") == Fraction(1, 3)
        assert encode_value(Fraction(1, 3)) == "1/3"

    def test_integral_fraction_encodes_as_int(self):
        assert encode_value(Fraction(4, 2)) == 2

    def test_plain_string(self):
        assert decode_value("alice") == "alice"
        assert encode_value("alice") == "alice"

    def test_bool_and_none_rejected(self):
        with pytest.raises(SchemaError):
            decode_value(True)
        with pytest.raises(SchemaError):
            decode_value(None)

    def test_unencodable_rejected(self):
        with pytest.raises(SchemaError):
            encode_value(object())


class TestDatabaseJson:
    def test_round_trip(self):
        db = Database(
            {
                "E": Relation(
                    ("I", "J", "P"),
                    [("a", "b", Fraction(1, 2)), ("b", "a", 1)],
                ),
                "C": Relation(("I",), [("a",)]),
            }
        )
        assert database_from_json(database_to_json(db)) == db

    def test_missing_relations_key(self):
        with pytest.raises(SchemaError):
            database_from_json({})

    def test_missing_columns(self):
        with pytest.raises(SchemaError):
            database_from_json({"relations": {"R": {"rows": []}}})

    def test_rows_optional(self):
        db = database_from_json({"relations": {"R": {"columns": ["A"]}}})
        assert len(db["R"]) == 0

    def test_file_round_trip(self, tmp_path):
        db = Database({"R": Relation(("A",), [(Fraction(2, 3),), ("x",)])})
        path = tmp_path / "db.json"
        save_database(db, path)
        assert load_database(path) == db
