"""End-to-end tracing through the CLI: ``--trace`` and ``repro report``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import summarize, validate_trace_file

from tests.test_cli import workspace  # noqa: F401  (fixture re-export)


def _run_traced(workspace, tmp_path, capsys) -> tuple[list[dict], dict]:
    """A seeded MCMC walk with --trace; returns (records, cli payload)."""
    trace = tmp_path / "run.jsonl"
    code = main(
        [
            "forever",
            workspace["walk"],
            "--db",
            workspace["db"],
            "--event",
            "C(b)",
            "--mcmc",
            "--samples",
            "300",
            "--burn-in",
            "50",
            "--seed",
            "7",
            "--json",
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    return validate_trace_file(str(trace)), payload


class TestTracedRun:
    def test_trace_is_schema_valid_and_complete(self, workspace, tmp_path, capsys):
        records, payload = _run_traced(workspace, tmp_path, capsys)
        assert records[0]["type"] == "start"
        run = records[-1]
        assert run["type"] == "run"
        assert run["outcome"] == "ok"
        assert "mcmc" in run["mode"].lower()
        # MCMC samples trajectories directly — no chain materialisation.
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"parse", "sample"} <= span_names

    def test_phase_totals_reconcile_with_report(self, workspace, tmp_path, capsys):
        records, payload = _run_traced(workspace, tmp_path, capsys)
        run = records[-1]
        wall_clock = run["report"]["spent"]["wall_clock"]
        phase_total = sum(
            r["wall_s"]
            for r in records
            if r["type"] == "span" and r.get("parent") is None
        )
        # Top-level phase spans partition the run; their total must agree
        # with the budget-tracked wall clock to within 5% (plus a tiny
        # absolute floor for sub-millisecond runs).
        assert abs(phase_total - wall_clock) <= max(0.05 * wall_clock, 0.005)

    def test_sample_events_feed_convergence_curve(self, workspace, tmp_path, capsys):
        records, payload = _run_traced(workspace, tmp_path, capsys)
        summary = summarize(records)
        assert summary.events_by_name["sample"] > 0
        assert summary.curve
        final_index, final_value = summary.curve[-1]
        assert final_index == summary.events_by_name["sample"]
        assert 0.0 <= final_value <= 1.0
        # The curve's tail is the MCMC running estimate itself.
        assert final_value == pytest.approx(float(payload["estimate"]), abs=1e-9)


class TestReportCommand:
    def test_report_renders_trace(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        code = main(["report", str(tmp_path / "run.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "sample" in out
        assert "convergence" in out

    def test_report_json_round_trips(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        code = main(["report", str(tmp_path / "run.jsonl"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sample" in payload["phases"]
        assert payload["run"]["outcome"] == "ok"

    def test_report_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery", "v": 1}\n')
        code = main(["report", str(bad)])
        assert code != 0
        assert "error:" in capsys.readouterr().err


class TestNoTraceFlag:
    def test_runs_without_trace_write_nothing(self, workspace, tmp_path, capsys):
        code = main(
            ["forever", workspace["walk"], "--db", workspace["db"],
             "--event", "C(b)"]
        )
        assert code == 0
        assert not list(tmp_path.glob("*.jsonl"))
