"""End-to-end tracing through the CLI: ``--trace`` and ``repro report``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import summarize, validate_trace_file

from tests.test_cli import workspace  # noqa: F401  (fixture re-export)


def _run_traced(workspace, tmp_path, capsys) -> tuple[list[dict], dict]:
    """A seeded MCMC walk with --trace; returns (records, cli payload)."""
    trace = tmp_path / "run.jsonl"
    code = main(
        [
            "forever",
            workspace["walk"],
            "--db",
            workspace["db"],
            "--event",
            "C(b)",
            "--mcmc",
            "--samples",
            "300",
            "--burn-in",
            "50",
            "--seed",
            "7",
            "--json",
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    return validate_trace_file(str(trace)), payload


class TestTracedRun:
    def test_trace_is_schema_valid_and_complete(self, workspace, tmp_path, capsys):
        records, payload = _run_traced(workspace, tmp_path, capsys)
        assert records[0]["type"] == "start"
        run = records[-1]
        assert run["type"] == "run"
        assert run["outcome"] == "ok"
        assert "mcmc" in run["mode"].lower()
        # MCMC samples trajectories directly — no chain materialisation.
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"parse", "sample"} <= span_names

    def test_phase_totals_reconcile_with_report(self, workspace, tmp_path, capsys):
        records, payload = _run_traced(workspace, tmp_path, capsys)
        run = records[-1]
        wall_clock = run["report"]["spent"]["wall_clock"]
        phase_total = sum(
            r["wall_s"]
            for r in records
            if r["type"] == "span" and r.get("parent") is None
        )
        # Top-level phase spans partition the run; their total must agree
        # with the budget-tracked wall clock to within 5% (plus a tiny
        # absolute floor for sub-millisecond runs).
        assert abs(phase_total - wall_clock) <= max(0.05 * wall_clock, 0.005)

    def test_sample_events_feed_convergence_curve(self, workspace, tmp_path, capsys):
        records, payload = _run_traced(workspace, tmp_path, capsys)
        summary = summarize(records)
        assert summary.events_by_name["sample"] > 0
        assert summary.curve
        final_index, final_value = summary.curve[-1]
        assert final_index == summary.events_by_name["sample"]
        assert 0.0 <= final_value <= 1.0
        # The curve's tail is the MCMC running estimate itself.
        assert final_value == pytest.approx(float(payload["estimate"]), abs=1e-9)


class TestReportCommand:
    def test_report_renders_trace(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        code = main(["report", str(tmp_path / "run.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "sample" in out
        assert "convergence" in out

    def test_report_json_round_trips(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        code = main(["report", str(tmp_path / "run.jsonl"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "sample" in payload["phases"]
        assert payload["run"]["outcome"] == "ok"

    def test_report_rejects_malformed_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "mystery", "v": 1}\n')
        code = main(["report", str(bad)])
        assert code != 0
        assert "error:" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_renders_span_tree(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        code = main(["profile", str(tmp_path / "run.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "phase reconciliation" in out
        assert "sample" in out

    def test_profile_json_payload(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        code = main(["profile", str(tmp_path / "run.jsonl"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profile_version"] == 1
        assert payload["spans"]
        assert "sample" in payload["span_phase_totals"]

    def test_profile_flame_matches_report_flame(self, workspace, tmp_path, capsys):
        _run_traced(workspace, tmp_path, capsys)
        trace = str(tmp_path / "run.jsonl")
        assert main(["profile", trace, "--flame"]) == 0
        from_profile = capsys.readouterr().out
        assert main(["report", trace, "--flame"]) == 0
        from_report = capsys.readouterr().out
        assert from_profile == from_report
        lines = from_report.splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert stack and int(weight) >= 0
            for frame in stack.split(";"):
                assert frame and " " not in frame


class TestTraceFailureModes:
    """Empty and torn trace files fail cleanly: exit 2, one line on
    stderr, no traceback."""

    def _assert_clean_failure(self, capsys, argv) -> None:
        code = main(argv)
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    @pytest.mark.parametrize("command", ["report", "profile"])
    def test_empty_trace_file(self, tmp_path, capsys, command):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        self._assert_clean_failure(capsys, [command, str(empty)])

    @pytest.mark.parametrize("command", ["report", "profile"])
    def test_torn_last_line(self, workspace, tmp_path, capsys, command):
        _run_traced(workspace, tmp_path, capsys)
        trace = tmp_path / "run.jsonl"
        text = trace.read_text()
        trace.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2])
        self._assert_clean_failure(capsys, [command, str(trace)])


class TestNoTraceFlag:
    def test_runs_without_trace_write_nothing(self, workspace, tmp_path, capsys):
        code = main(
            ["forever", workspace["walk"], "--db", workspace["db"],
             "--event", "C(b)"]
        )
        assert code == 0
        assert not list(tmp_path.glob("*.jsonl"))
