"""Unit tests for the Example 3.3–3.9 query builders."""

from fractions import Fraction

import pytest

from repro.core import (
    evaluate_forever_exact,
    evaluate_inflationary_exact,
    TupleIn,
)
from repro.datalog import evaluate_datalog_exact
from repro.errors import ReproError
from repro.markov import stationary_distribution
from repro.workloads import (
    cycle_graph,
    erdos_renyi,
    example_36_graph,
    pagerank_query,
    random_walk_query,
    reachability_program,
    reachability_query,
    unguarded_reachability_query,
)


class TestRandomWalkQuery:
    def test_stationary_matches_graph_chain(self):
        graph = erdos_renyi(4, 0.5, rng=7)
        query, db = random_walk_query(graph, "n0", "n1")
        result = evaluate_forever_exact(query, db)
        pi = stationary_distribution(graph.to_markov_chain())
        assert result.probability == pi.probability("n1")

    def test_bad_nodes_rejected(self):
        with pytest.raises(ReproError):
            random_walk_query(cycle_graph(3), "n0", "zz")


class TestPagerankQuery:
    def test_uniform_on_symmetric_graph(self):
        query, db = pagerank_query(cycle_graph(4), Fraction(1, 5), "n0", "n2")
        result = evaluate_forever_exact(query, db)
        assert result.probability == Fraction(1, 4)

    def test_alpha_validated(self):
        with pytest.raises(ReproError):
            pagerank_query(cycle_graph(3), Fraction(2), "n0", "n1")

    def test_jump_makes_chain_irreducible(self):
        # one-way edge graph: without the jump, n2 unreachable states occur
        from repro.workloads import WeightedGraph

        graph = WeightedGraph(
            ("a", "b", "c"),
            (("a", "b", 1), ("b", "a", 1), ("c", "a", 1), ("c", "c", 1)),
        )
        query, db = pagerank_query(graph, Fraction(1, 4), "a", "c")
        result = evaluate_forever_exact(query, db)
        assert 0 < result.probability < 1
        assert result.details["irreducible"]


class TestReachabilityBuilders:
    def test_example_35_value(self):
        query, db = reachability_query(example_36_graph(), "a", "b")
        assert evaluate_inflationary_exact(query, db).probability == Fraction(1, 2)

    def test_example_36_value(self):
        query, db = unguarded_reachability_query(example_36_graph(), "a", "b")
        assert evaluate_inflationary_exact(query, db).probability == 1

    def test_datalog_program_matches_fixpoint_query(self):
        graph = example_36_graph()
        fix_query, fix_db = reachability_query(graph, "a", "b")
        fix = evaluate_inflationary_exact(fix_query, fix_db).probability
        program, edb = reachability_program(graph, "a")
        datalog = evaluate_datalog_exact(program, edb, TupleIn("c", ("b",))).probability
        assert fix == datalog

    def test_bad_nodes_rejected(self):
        with pytest.raises(ReproError):
            reachability_query(example_36_graph(), "zz", "b")
