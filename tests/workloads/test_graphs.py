"""Unit tests for the graph workload generators."""

from fractions import Fraction

import pytest

from repro.markov import is_ergodic, is_irreducible
from repro.workloads import (
    GraphError,
    WeightedGraph,
    barbell_graph,
    chain_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    layered_dag,
    random_ergodic_chain,
    star_graph,
    two_component_graph,
)


class TestWeightedGraph:
    def test_construction(self):
        g = WeightedGraph(("a", "b"), (("a", "b", 1), ("b", "a", 0.5)))
        assert len(g.edges) == 2
        assert g.out_edges("a") == [("a", "b", Fraction(1))]

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(("a", "a"), ())

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(("a",), (("a", "z", 1),))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(GraphError):
            WeightedGraph(("a", "b"), (("a", "b", 0),))

    def test_edge_relation(self):
        g = WeightedGraph(("a", "b"), (("a", "b", 2), ("b", "a", 1)))
        relation = g.edge_relation()
        assert relation.columns == ("I", "J", "P")
        assert ("a", "b", Fraction(2)) in relation

    def test_sinks(self):
        g = WeightedGraph(("a", "b"), (("a", "b", 1),))
        assert g.sinks() == ["b"]

    def test_to_markov_chain_normalises(self):
        g = WeightedGraph(("a", "b"), (("a", "b", 1), ("a", "a", 3), ("b", "a", 1)))
        chain = g.to_markov_chain()
        assert chain.probability("a", "b") == Fraction(1, 4)

    def test_to_markov_chain_rejects_sinks(self):
        g = WeightedGraph(("a", "b"), (("a", "b", 1),))
        with pytest.raises(GraphError):
            g.to_markov_chain()


class TestGenerators:
    def test_complete_graph_ergodic(self):
        assert is_ergodic(complete_graph(5).to_markov_chain())

    def test_cycle_graph_lazy_and_ergodic(self):
        chain = cycle_graph(6).to_markov_chain()
        assert is_ergodic(chain)
        assert chain.probability("n0", "n0") == Fraction(1, 2)

    def test_cycle_laziness_validated(self):
        with pytest.raises(GraphError):
            cycle_graph(4, laziness=Fraction(2))

    def test_barbell_structure(self):
        g = barbell_graph(4)
        assert len(g.nodes) == 8
        assert is_irreducible(g.to_markov_chain())

    def test_chain_graph_irreducible(self):
        assert is_irreducible(chain_graph(5).to_markov_chain())

    def test_layered_dag_walk_terminates_at_sink(self):
        g = layered_dag(3, 2, rng=0)
        assert "sink" in g.nodes
        assert g.out_edges("sink") == [("sink", "sink", Fraction(1))]
        assert not g.sinks()  # everything has an out-edge

    def test_layered_dag_deterministic_by_seed(self):
        assert layered_dag(3, 3, rng=5).edges == layered_dag(3, 3, rng=5).edges

    def test_erdos_renyi_irreducible(self):
        for seed in range(5):
            assert is_irreducible(erdos_renyi(6, 0.3, rng=seed).to_markov_chain())

    def test_two_component_graph_disconnected(self):
        g = two_component_graph(3, components=2)
        assert len(g.nodes) == 6
        chain = g.to_markov_chain()
        assert not is_irreducible(chain)

    def test_size_validation(self):
        with pytest.raises(GraphError):
            complete_graph(1)
        with pytest.raises(GraphError):
            cycle_graph(1)
        with pytest.raises(GraphError):
            layered_dag(0, 2)


class TestAdditionalGenerators:
    def test_star_graph_structure(self):
        from repro.markov import is_ergodic, stationary_distribution

        g = star_graph(4)
        chain = g.to_markov_chain()
        assert chain.size == 5
        assert is_ergodic(chain)
        pi = stationary_distribution(chain)
        # leaves are symmetric
        leaf_masses = {pi.probability(f"leaf{i}") for i in range(4)}
        assert len(leaf_masses) == 1

    def test_star_validation(self):
        with pytest.raises(GraphError):
            star_graph(0)
        with pytest.raises(GraphError):
            star_graph(3, laziness=Fraction(2))

    def test_grid_graph_structure(self):
        from repro.markov import is_ergodic

        g = grid_graph(3, 4)
        chain = g.to_markov_chain()
        assert chain.size == 12
        assert is_ergodic(chain)
        # corner cell: self-loop + 2 neighbours
        assert len(g.out_edges("g0_0")) == 3

    def test_grid_validation(self):
        with pytest.raises(GraphError):
            grid_graph(0, 3)
        with pytest.raises(GraphError):
            grid_graph(1, 1)

    def test_random_ergodic_chain(self):
        from repro.markov import is_ergodic, is_irreducible

        for seed in range(4):
            chain = random_ergodic_chain(6, rng=seed)
            assert is_irreducible(chain)
            assert is_ergodic(chain)

    def test_random_ergodic_chain_deterministic(self):
        a = random_ergodic_chain(5, rng=9)
        b = random_ergodic_chain(5, rng=9)
        assert a.exact_matrix() == b.exact_matrix()

    def test_random_ergodic_chain_validation(self):
        with pytest.raises(GraphError):
            random_ergodic_chain(1)
