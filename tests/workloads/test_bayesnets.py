"""Unit tests for Bayesian-network workloads (Example 3.10)."""

import itertools
from fractions import Fraction

import pytest

from repro.core import TupleIn
from repro.datalog import evaluate_datalog_exact
from repro.workloads import BayesError, BayesianNetwork, random_network, sprinkler_network


class TestNetworkValidation:
    def test_parent_must_precede(self):
        with pytest.raises(BayesError):
            BayesianNetwork(
                nodes=("a", "b"),
                parents={"a": ("b",), "b": ()},
                cpts={"a": {(0,): Fraction(1, 2), (1,): Fraction(1, 2)}, "b": {(): Fraction(1, 2)}},
            )

    def test_cpt_must_cover_all_combinations(self):
        with pytest.raises(BayesError):
            BayesianNetwork(
                nodes=("a", "b"),
                parents={"a": (), "b": ("a",)},
                cpts={"a": {(): Fraction(1, 2)}, "b": {(0,): Fraction(1, 2)}},
            )

    def test_missing_cpt(self):
        with pytest.raises(BayesError):
            BayesianNetwork(nodes=("a",), parents={"a": ()}, cpts={})

    def test_probability_range(self):
        with pytest.raises(BayesError):
            BayesianNetwork(
                nodes=("a",), parents={"a": ()}, cpts={"a": {(): Fraction(3, 2)}}
            )


class TestExactSemantics:
    def test_joint_sums_to_one(self, sprinkler):
        total = sum(
            sprinkler.joint_probability(dict(zip(sprinkler.nodes, bits)))
            for bits in itertools.product((0, 1), repeat=3)
        )
        assert total == 1

    def test_known_sprinkler_marginal(self, sprinkler):
        # Pr[rain] = 1/5 by construction
        assert sprinkler.marginal_probability({"rain": 1}) == Fraction(1, 5)

    def test_marginal_of_unknown_node(self, sprinkler):
        with pytest.raises(BayesError):
            sprinkler.marginal_probability({"zz": 1})

    def test_sampling_matches_marginal(self, sprinkler):
        import random

        rng = random.Random(0)
        hits = sum(sprinkler.sample(rng)["grass"] for _ in range(4000))
        expected = float(sprinkler.marginal_probability({"grass": 1}))
        assert abs(hits / 4000 - expected) < 0.03

    def test_max_in_degree(self, sprinkler):
        assert sprinkler.max_in_degree == 2


class TestDatalogTranslation:
    def test_program_structure(self, sprinkler):
        program, edb = sprinkler.to_datalog()
        # one rule per in-degree (0, 1, 2)
        assert len(program) == 3
        assert "s0" in edb and "t2" in edb

    def test_marginal_matches_enumeration(self, sprinkler):
        for conditions in ({"grass": 1}, {"rain": 1, "grass": 1}, {"sprinkler": 0}):
            program, edb = sprinkler.to_datalog(conditions=conditions)
            result = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
            assert result.probability == sprinkler.marginal_probability(conditions)

    def test_zero_probability_rows_omitted(self, sprinkler):
        _program, edb = sprinkler.to_datalog()
        weights = [row[-1] for row in edb["t2"]]
        assert all(w > 0 for w in weights)

    def test_empty_conditions_rejected(self, sprinkler):
        with pytest.raises(BayesError):
            sprinkler.to_datalog(conditions={})


class TestRandomNetworks:
    def test_deterministic_by_seed(self):
        a = random_network(5, rng=3)
        b = random_network(5, rng=3)
        assert a.parents == b.parents
        assert a.cpts == b.cpts

    def test_in_degree_bound(self):
        network = random_network(8, max_in_degree=2, rng=1)
        assert network.max_in_degree <= 2

    def test_random_network_translation_agrees(self):
        for seed in range(3):
            network = random_network(4, max_in_degree=2, rng=seed)
            conditions = {network.nodes[-1]: 1}
            program, edb = network.to_datalog(conditions=conditions)
            result = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
            assert result.probability == network.marginal_probability(conditions)

    def test_size_validated(self):
        with pytest.raises(BayesError):
            random_network(0)


class TestHigherInDegree:
    def test_in_degree_three_rules(self):
        """Networks with K = 3 exercise the t3/s3 rule shape of Ex 3.10."""
        network = BayesianNetwork(
            nodes=("a", "b", "c", "d"),
            parents={"a": (), "b": (), "c": (), "d": ("a", "b", "c")},
            cpts={
                "a": {(): Fraction(1, 2)},
                "b": {(): Fraction(1, 3)},
                "c": {(): Fraction(1, 4)},
                "d": {
                    bits: Fraction(1 + sum(bits), 5)
                    for bits in __import__("itertools").product((0, 1), repeat=3)
                },
            },
        )
        assert network.max_in_degree == 3
        program, edb = network.to_datalog(conditions={"d": 1})
        assert "t3" in edb and "s3" in edb
        result = evaluate_datalog_exact(program, edb, TupleIn("q", ()))
        assert result.probability == network.marginal_probability({"d": 1})
