"""Unit tests for the literal paper instances."""

from fractions import Fraction

from repro.relational import repair_distribution
from repro.workloads import (
    BASKETBALL_WORLD_PROBABILITIES,
    basketball_table,
    example_36_graph,
    example_39_edb,
)


class TestTable2:
    def test_shape(self):
        table = basketball_table()
        assert table.columns == ("Player", "Team", "Belief")
        assert len(table) == 4

    def test_recorded_probabilities_normalise(self):
        assert sum(BASKETBALL_WORLD_PROBABILITIES.values()) == 1

    def test_recorded_probabilities_match_repair_key(self):
        worlds = repair_distribution(
            basketball_table(), key=("Player",), weight="Belief"
        )
        for world, probability in worlds.items():
            teams = {row[0]: row[1] for row in world}
            key = (teams["Bryant"], teams["Iverson"])
            assert BASKETBALL_WORLD_PROBABILITIES[key] == probability

    def test_bryant_lakers_probability(self):
        assert (
            BASKETBALL_WORLD_PROBABILITIES[("LA Lakers", "Philadelphia 76ers")]
            == Fraction(17, 20) * Fraction(8, 15)
        )


class TestExampleGraphs:
    def test_example_36_weights(self):
        graph = example_36_graph()
        weights = {(s, t): w for s, t, w in graph.edges}
        assert weights[("a", "b")] == Fraction(1, 2)
        assert weights[("a", "c")] == Fraction(1, 2)

    def test_example_36_walkable(self):
        chain = example_36_graph().to_markov_chain()
        assert chain.size == 3

    def test_example_39_edb(self):
        relation = example_39_edb()
        assert relation.columns == ("I", "J", "P")
        assert ("v", "w", Fraction(1, 2)) in relation
