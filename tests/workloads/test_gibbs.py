"""Unit tests for the Gibbs-sampler MCMC application."""

import random
from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.markov import is_ergodic, is_irreducible, mixing_time, stationary_distribution
from repro.workloads import BayesianNetwork, random_network
from repro.workloads.gibbs import (
    as_mapping,
    as_state,
    conditional_probability,
    gibbs_chain,
    gibbs_marginal_estimate,
    gibbs_step,
    joint_distribution,
)


def two_node_network() -> BayesianNetwork:
    return BayesianNetwork(
        nodes=("x", "y"),
        parents={"x": (), "y": ("x",)},
        cpts={
            "x": {(): Fraction(3, 10)},
            "y": {(0,): Fraction(1, 5), (1,): Fraction(4, 5)},
        },
    )


class TestStateCodec:
    def test_round_trip(self):
        valuation = {"b": 1, "a": 0}
        assert as_mapping(as_state(valuation)) == valuation

    def test_canonical_order(self):
        assert as_state({"b": 1, "a": 0}) == as_state({"a": 0, "b": 1})


class TestConditional:
    def test_root_without_children_uses_prior(self):
        bn = BayesianNetwork(
            nodes=("x",), parents={"x": ()}, cpts={"x": {(): Fraction(3, 10)}}
        )
        assert conditional_probability(bn, {"x": 0}, "x") == Fraction(3, 10)

    def test_blanket_conditional_known_value(self):
        bn = two_node_network()
        # Pr[x=1 | y=1] = 0.3*0.8 / (0.3*0.8 + 0.7*0.2) = 24/38
        assert conditional_probability(bn, {"x": 0, "y": 1}, "x") == Fraction(24, 38)

    def test_child_conditional_is_cpt(self):
        bn = two_node_network()
        assert conditional_probability(bn, {"x": 1, "y": 0}, "y") == Fraction(4, 5)


class TestGibbsChain:
    def test_stationary_is_exactly_the_joint(self):
        for seed in range(3):
            bn = random_network(3, max_in_degree=2, rng=seed)
            chain = gibbs_chain(bn)
            assert stationary_distribution(chain) == joint_distribution(bn)

    def test_chain_is_ergodic(self):
        bn = random_network(4, max_in_degree=2, rng=9)
        chain = gibbs_chain(bn)
        assert is_irreducible(chain)
        assert is_ergodic(chain)

    def test_state_count(self):
        assert gibbs_chain(two_node_network()).size == 4

    def test_zero_cpt_rejected(self):
        bn = BayesianNetwork(
            nodes=("x",), parents={"x": ()}, cpts={"x": {(): Fraction(0)}}
        )
        with pytest.raises(ReproError):
            gibbs_chain(bn)

    def test_mixing_time_finite(self):
        bn = two_node_network()
        assert mixing_time(gibbs_chain(bn), epsilon=0.1) >= 1


class TestSimulation:
    def test_step_changes_at_most_one_node(self):
        bn = random_network(5, max_in_degree=2, rng=4)
        rng = random.Random(0)
        valuation = bn.sample(rng)
        for _ in range(50):
            successor = gibbs_step(bn, valuation, rng)
            changed = [n for n in bn.nodes if successor[n] != valuation[n]]
            assert len(changed) <= 1
            valuation = successor

    def test_marginal_estimate_accuracy(self):
        bn = two_node_network()
        exact = float(bn.marginal_probability({"y": 1}))
        estimate = gibbs_marginal_estimate(
            bn, {"y": 1}, samples=4000, burn_in=30, rng=random.Random(7), thinning=2
        )
        assert abs(estimate - exact) < 0.03

    def test_joint_condition_estimate(self):
        bn = random_network(4, max_in_degree=2, rng=11)
        conditions = {bn.nodes[0]: 1, bn.nodes[-1]: 0}
        exact = float(bn.marginal_probability(conditions))
        estimate = gibbs_marginal_estimate(
            bn, conditions, samples=4000, burn_in=40, rng=random.Random(3), thinning=3
        )
        assert abs(estimate - exact) < 0.04

    def test_parameter_validation(self):
        bn = two_node_network()
        with pytest.raises(ReproError):
            gibbs_marginal_estimate(bn, {"y": 1}, samples=0, burn_in=0, rng=random.Random(0))
