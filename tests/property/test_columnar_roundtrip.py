"""Round-trip properties: Database ↔ columnar interned representation.

For arbitrary databases over the canonical-orderable value types,
``extern_database(intern_database(db)) == db`` exactly, interning is
injective on hashes (equal databases intern to equal-hashing columnar
databases, unequal ones to unequal), and the canonical sort key is
order-isomorphic between the two representations.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import (
    SymbolTable,
    extern_database,
    intern_database,
    intern_relation,
)
from repro.relational import Database, Relation
from repro.relational.ordering import database_sort_key

values = st.one_of(
    st.integers(-5, 5),
    st.text(alphabet="abcxyz", min_size=0, max_size=3),
    st.fractions(min_value=0, max_value=3, max_denominator=8),
    st.booleans(),
)


def relation_of(columns: tuple[str, ...]):
    arity = len(columns)
    return st.lists(
        st.tuples(*([values] * arity)), min_size=0, max_size=6
    ).map(lambda rows: Relation(columns, rows))


databases = st.fixed_dictionaries(
    {"R": relation_of(("A", "B")), "S": relation_of(("A",))}
).map(Database)


def shared_table(dbs) -> SymbolTable:
    return SymbolTable(value for db in dbs for value in db.active_domain())


@given(databases)
@settings(max_examples=80)
def test_intern_extern_roundtrip(db):
    assert extern_database(intern_database(db, shared_table([db]))) == db


@given(databases, databases)
@settings(max_examples=80)
def test_equality_and_hash_preserved(left, right):
    table = shared_table([left, right])
    left_c = intern_database(left, table)
    right_c = intern_database(right, table)
    assert (left_c == right_c) == (left == right)
    if left == right:
        assert hash(left_c) == hash(right_c)


@given(st.lists(databases, min_size=2, max_size=5))
@settings(max_examples=40)
def test_canonical_sort_key_order_isomorphic(dbs):
    table = shared_table(dbs)
    interned = [intern_database(db, table) for db in dbs]
    by_frozenset = sorted(range(len(dbs)), key=lambda i: database_sort_key(dbs[i]))
    by_columnar = sorted(
        range(len(dbs)), key=lambda i: interned[i].canonical_sort_key()
    )
    # Ties (equal databases) may order arbitrarily between equals, so
    # compare the sorted *databases*, not the index permutations.
    assert [dbs[i] for i in by_frozenset] == [dbs[i] for i in by_columnar]


@given(relation_of(("A", "B", "C")))
@settings(max_examples=80)
def test_relation_roundtrip_preserves_rows(relation):
    table = SymbolTable(value for row in relation.rows for value in row)
    columnar = intern_relation(relation, table)
    assert len(columnar) == len(relation.rows)


@given(st.lists(st.tuples(values), min_size=0, max_size=6))
@settings(max_examples=80)
def test_arity_one_roundtrip(rows):
    db = Database({"R": Relation(("I",), rows)})
    assert extern_database(intern_database(db, shared_table([db]))) == db


def test_weight_fractions_roundtrip_exactly():
    rows = [("a", "b", Fraction(1, 3)), ("a", "c", Fraction(2, 3))]
    db = Database({"E": Relation(("I", "J", "P"), rows)})
    assert extern_database(intern_database(db, shared_table([db]))) == db
