"""Property-based tests for relational-algebra laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Database,
    Relation,
    ValueEq,
    difference,
    evaluate,
    join,
    literal,
    project,
    rel,
    rename,
    select,
    union,
)


def relations_ab():
    rows = st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=0, max_size=8
    )
    return rows.map(lambda r: Relation(("A", "B"), r))


@given(relations_ab(), relations_ab())
@settings(max_examples=50)
def test_union_commutative_associative(r, s):
    db = Database({"R": r, "S": s})
    left = evaluate(union(rel("R"), rel("S")), db)
    right = evaluate(union(rel("S"), rel("R")), db)
    assert left == right
    t = Relation(("A", "B"), [(9, 9)])
    db2 = Database({"R": r, "S": s, "T": t})
    assoc1 = evaluate(union(union(rel("R"), rel("S")), rel("T")), db2)
    assoc2 = evaluate(union(rel("R"), union(rel("S"), rel("T"))), db2)
    assert assoc1 == assoc2


@given(relations_ab(), relations_ab())
@settings(max_examples=50)
def test_difference_laws(r, s):
    db = Database({"R": r, "S": s})
    diff = evaluate(difference(rel("R"), rel("S")), db)
    assert diff.rows == r.rows - s.rows
    # R − R = ∅, R − ∅ = R
    assert len(evaluate(difference(rel("R"), rel("R")), db)) == 0
    empty = literal(("A", "B"), [])
    assert evaluate(difference(rel("R"), empty), db) == r


@given(relations_ab())
@settings(max_examples=50)
def test_select_project_interaction(r):
    db = Database({"R": r})
    # selecting then projecting keeps exactly the selected rows' images
    selected_first = evaluate(project(select(rel("R"), ValueEq("A", 1)), "B"), db)
    expected = {(b,) for a, b in r if a == 1}
    assert selected_first.rows == frozenset(expected)


@given(relations_ab())
@settings(max_examples=50)
def test_rename_is_invertible(r):
    db = Database({"R": r})
    round_trip = evaluate(rename(rename(rel("R"), A="X"), X="A"), db)
    assert round_trip == r


@given(relations_ab(), relations_ab())
@settings(max_examples=50)
def test_join_with_itself_is_identity_on_schema(r, s):
    db = Database({"R": r, "S": s})
    assert evaluate(join(rel("R"), rel("R")), db) == r


@given(relations_ab(), relations_ab())
@settings(max_examples=50)
def test_join_subset_of_product_semantics(r, s):
    """Natural join on shared columns = filtered combination."""
    # build S with columns (B, C) so the join is on B
    s_bc = Relation(("B", "C"), s.rows)
    db = Database({"R": r, "S": s_bc})
    joined = evaluate(join(rel("R"), rel("S")), db)
    expected = {
        (a, b, c) for (a, b) in r for (b2, c) in s_bc if b == b2
    }
    assert joined.rows == frozenset(expected)


@given(relations_ab())
@settings(max_examples=50)
def test_projection_idempotent(r):
    db = Database({"R": r})
    once = evaluate(project(rel("R"), "A"), db)
    twice = evaluate(project(project(rel("R"), "A"), "A"), db)
    assert once == twice
