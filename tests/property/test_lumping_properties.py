"""Property-based tests for strong lumping on random chains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    coarsest_lumping,
    is_lumpable,
    long_run_event_probability,
    lumped_event_probability,
    quotient_chain,
    stationary_distribution,
    is_irreducible,
)
from repro.probability import Distribution


def random_chains(min_states=2, max_states=6):
    """Arbitrary chains over 0..n-1 (self-loop fallback keeps rows valid)."""

    def build(data):
        n, rows = data
        transitions = {}
        for state in range(n):
            weights = {
                target: weight
                for target, weight in rows.get(state, {}).items()
                if target < n and weight > 0
            }
            if not weights:
                weights = {state: 1}
            transitions[state] = Distribution(weights)
        return MarkovChain(transitions)

    return (
        st.integers(min_states, max_states)
        .flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.dictionaries(
                    st.integers(0, n - 1),
                    st.dictionaries(st.integers(0, n - 1), st.integers(0, 4), max_size=n),
                    max_size=n,
                ),
            )
        )
        .map(build)
    )


def event_of(modulus):
    return lambda state: state % modulus == 0


@given(random_chains(), st.integers(2, 3))
@settings(max_examples=50, deadline=None)
def test_coarsest_lumping_is_a_strong_lumping(chain, modulus):
    event = event_of(modulus)
    seed = [
        {s for s in chain.states if event(s)},
        {s for s in chain.states if not event(s)},
    ]
    partition = coarsest_lumping(chain, [b for b in seed if b])
    assert is_lumpable(chain, partition)
    # the partition still separates event values
    for block in partition:
        values = {event(s) for s in block}
        assert len(values) == 1


@given(random_chains(), st.integers(2, 3))
@settings(max_examples=40, deadline=None)
def test_lumped_probability_equals_direct(chain, modulus):
    event = event_of(modulus)
    direct = long_run_event_probability(chain, chain.states[0], event)
    lumped, size = lumped_event_probability(chain, chain.states[0], event)
    assert lumped == direct
    assert 1 <= size <= chain.size


@given(random_chains())
@settings(max_examples=30, deadline=None)
def test_quotient_preserves_stationary_mass(chain):
    """On irreducible chains the quotient's stationary distribution is
    the block-aggregated original (for any strong lumping)."""
    if not is_irreducible(chain):
        return
    seed = [
        {s for s in chain.states if s % 2 == 0},
        {s for s in chain.states if s % 2 == 1},
    ]
    partition = coarsest_lumping(chain, [b for b in seed if b])
    quotient, index = quotient_chain(chain, partition)
    if not is_irreducible(quotient):
        return
    pi = stationary_distribution(chain)
    pi_q = stationary_distribution(quotient)
    for number, block in enumerate(partition):
        aggregated = sum(pi.probability(s) for s in block)
        assert pi_q.probability(number) == aggregated
