"""Property tests: sparse certified answers honour their certificates.

Hypothesis generates random chains of three adversarial shapes —
absorbing, periodic, and multi-leaf-SCC — and checks, against the exact
Fraction solvers, the sparse subsystem's whole contract:

* a returned answer lies within its own certificate of the exact
  long-run event probability;
* a tolerance the certificate cannot reach yields a *refusal*
  (``satisfies() is False`` / :class:`SolveRefusedError` from the
  evaluator), never a silently wrong answer.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.absorption import long_run_event_probability
from repro.markov.chain import chain_from_edges
from repro.sparse import solve_long_run, sparse_chain_from_markov


def _event(state) -> bool:
    return state % 2 == 0


def _exact(chain, start) -> float:
    return float(long_run_event_probability(chain, start, _event))


@st.composite
def absorbing_chains(draw):
    """A layered random walk that drains into 1–3 absorbing states."""
    transient = draw(st.integers(2, 6))
    absorbing = draw(st.integers(1, 3))
    edges = []
    for i in range(transient):
        # Each transient state spreads over a few forward targets;
        # integer weights keep the chain exactly stochastic.
        targets = draw(
            st.lists(
                st.integers(i + 1, transient + absorbing - 1),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        weights = draw(
            st.lists(
                st.integers(1, 5),
                min_size=len(targets),
                max_size=len(targets),
            )
        )
        total = sum(weights)
        for target, weight in zip(targets, weights):
            edges.append((i, target, Fraction(weight, total)))
    for j in range(transient, transient + absorbing):
        edges.append((j, j, Fraction(1)))
    return chain_from_edges(edges)


@st.composite
def periodic_chains(draw):
    """A directed cycle (period n), optionally with a transient tail."""
    n = draw(st.integers(2, 8))
    edges = [(i, (i + 1) % n, Fraction(1)) for i in range(n)]
    tail = draw(st.integers(0, 3))
    for t in range(tail):
        source = n + t
        target = n + t + 1 if t + 1 < tail else 0
        edges.append((source, target, Fraction(1, 2)))
        edges.append((source, draw(st.integers(0, n - 1)), Fraction(1, 2)))
    return chain_from_edges(edges), 0 if tail == 0 else n


@st.composite
def multi_leaf_chains(draw):
    """Transient states feeding several small recurrent cycles."""
    leaves = draw(st.integers(2, 3))
    leaf_size = draw(st.integers(1, 3))
    edges = []
    leaf_entries = []
    base = 100
    for leaf in range(leaves):
        states = [base + leaf * 10 + k for k in range(leaf_size)]
        leaf_entries.append(states[0])
        for k, state in enumerate(states):
            edges.append((state, states[(k + 1) % leaf_size], Fraction(1)))
    transient = draw(st.integers(1, 4))
    for i in range(transient):
        choices = leaf_entries + [j for j in range(i + 1, transient)]
        targets = draw(
            st.lists(
                st.sampled_from(choices), min_size=1, max_size=3, unique=True
            )
        )
        weights = draw(
            st.lists(
                st.integers(1, 4),
                min_size=len(targets),
                max_size=len(targets),
            )
        )
        total = sum(weights)
        for target, weight in zip(targets, weights):
            edges.append((i, target, Fraction(weight, total)))
    return chain_from_edges(edges)


@given(absorbing_chains())
@settings(max_examples=40, deadline=None)
def test_absorbing_chain_answer_within_certificate(chain):
    sparse = sparse_chain_from_markov(chain, 0, event=_event)
    value, certificate, _ = solve_long_run(sparse, epsilon=1e-9)
    assert certificate.satisfies()
    assert abs(value - _exact(chain, 0)) <= certificate.bound


@given(periodic_chains())
@settings(max_examples=40, deadline=None)
def test_periodic_chain_answer_within_certificate(case):
    chain, start = case
    sparse = sparse_chain_from_markov(chain, start, event=_event)
    value, certificate, structure = solve_long_run(sparse, epsilon=1e-9)
    assert certificate.satisfies()
    assert abs(value - _exact(chain, start)) <= certificate.bound
    assert structure["leaf_sccs"] >= 1


@given(multi_leaf_chains())
@settings(max_examples=40, deadline=None)
def test_multi_leaf_chain_answer_within_certificate(chain):
    sparse = sparse_chain_from_markov(chain, 0, event=_event)
    value, certificate, structure = solve_long_run(sparse, epsilon=1e-9)
    assert certificate.satisfies()
    assert abs(value - _exact(chain, 0)) <= certificate.bound
    assert structure["leaf_sccs"] >= 2


@given(absorbing_chains())
@settings(max_examples=20, deadline=None)
def test_unreachable_tolerance_refuses_not_lies(chain):
    """An impossible epsilon must yield refusal, never a wrong answer."""
    sparse = sparse_chain_from_markov(chain, 0, event=_event)
    value, certificate, _ = solve_long_run(sparse, epsilon=1e-300)
    assert not certificate.satisfies()
    # The value itself is still as good as the certificate claims —
    # refusal is about honesty of the bound, not about the answer.
    assert abs(value - _exact(chain, 0)) <= certificate.bound
