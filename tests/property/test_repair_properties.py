"""Property-based tests for repair-key (Section 2.2 invariants)."""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    Relation,
    repair_distribution,
    sample_repair,
    world_probability,
)


def weighted_relations():
    """Relations (K, V, P) with positive integer weights."""
    rows = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),   # key
            st.integers(min_value=0, max_value=5),   # value
            st.integers(min_value=1, max_value=9),   # weight
        ),
        min_size=0,
        max_size=10,
    )
    return rows.map(lambda r: Relation(("K", "V", "P"), r))


@given(weighted_relations())
@settings(max_examples=60)
def test_world_probabilities_sum_to_one(relation):
    worlds = repair_distribution(relation, key=("K",), weight="P")
    assert sum(p for _w, p in worlds.items()) == 1


@given(weighted_relations())
@settings(max_examples=60)
def test_every_world_is_a_maximal_repair(relation):
    worlds = repair_distribution(relation, key=("K",), weight="P")
    keys = relation.column_values("K")
    for world in worlds.support():
        # one row per key group, and key groups exactly preserved
        assert world.column_values("K") == keys
        seen = [row[0] for row in world]
        assert len(seen) == len(set(seen))


@given(weighted_relations())
@settings(max_examples=40)
def test_world_probability_agrees_with_enumeration(relation):
    worlds = repair_distribution(relation, key=("K",), weight="P")
    for world, probability in worlds.items():
        assert (
            world_probability(relation, world, key=("K",), weight="P") == probability
        )


@given(weighted_relations(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40)
def test_sampled_repairs_have_positive_probability(relation, seed):
    rng = random.Random(seed)
    worlds = repair_distribution(relation, key=("K",), weight="P")
    sampled = sample_repair(relation, rng, key=("K",), weight="P")
    assert worlds.probability(sampled) > 0


@given(weighted_relations())
@settings(max_examples=40)
def test_uniform_repair_counts(relation):
    """Without weights, the number of worlds is the product of group
    sizes (after value-level dedup) and each is equally likely."""
    deduped = Relation(("K", "V"), {(k, v) for k, v, _p in relation})
    worlds = repair_distribution(deduped, key=("K",))
    expected = 1
    for key in deduped.column_values("K"):
        group = [row for row in deduped if row[0] == key]
        expected *= len(group)
    assert len(worlds) == expected
    if expected:
        assert all(p == Fraction(1, expected) for _w, p in worlds.items())


@given(weighted_relations())
@settings(max_examples=40)
def test_keyless_repair_picks_single_row(relation):
    worlds = repair_distribution(relation, key=(), weight="P")
    if len(relation) == 0:
        assert len(worlds) == 1
        return
    for world in worlds.support():
        assert len(world) == 1
