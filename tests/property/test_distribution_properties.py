"""Property-based tests (hypothesis) for the Distribution type."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probability import Distribution, product_distribution


def weight_maps():
    """Non-empty mappings outcome → positive Fraction weight."""
    weights = st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100))
    return st.dictionaries(
        st.integers(min_value=-50, max_value=50), weights, min_size=1, max_size=8
    )


@given(weight_maps())
def test_normalisation_sums_to_one(weights):
    d = Distribution(weights)
    assert sum(p for _o, p in d.items()) == 1


@given(weight_maps())
def test_probabilities_proportional_to_weights(weights):
    d = Distribution(weights)
    total = sum(weights.values())
    for outcome, weight in weights.items():
        assert d.probability(outcome) == Fraction(weight) / total


@given(weight_maps())
def test_map_preserves_total_probability(weights):
    d = Distribution(weights)
    image = d.map(lambda x: x % 3)
    assert sum(p for _o, p in image.items()) == 1


@given(weight_maps())
def test_map_pushforward_correct(weights):
    d = Distribution(weights)
    image = d.map(abs)
    for outcome in image.support():
        expected = d.probability(outcome) + (
            d.probability(-outcome) if outcome != 0 else 0
        )
        assert image.probability(outcome) == expected


@given(weight_maps(), weight_maps())
def test_product_marginals(left_weights, right_weights):
    left = Distribution(left_weights)
    right = Distribution(right_weights)
    joint = left.product(right)
    # marginalising the joint recovers the factors
    assert joint.map(lambda pair: pair[0]) == left
    assert joint.map(lambda pair: pair[1]) == right


@given(weight_maps())
def test_bind_with_point_is_map(weights):
    d = Distribution(weights)
    assert d.bind(lambda x: Distribution.point(x + 1)) == d.map(lambda x: x + 1)


@given(weight_maps())
def test_point_bind_left_identity(weights):
    d = Distribution(weights)
    assert Distribution.point(0).bind(lambda _zero: d) == d


@given(weight_maps())
def test_total_variation_bounds(weights):
    d = Distribution(weights)
    uniform = Distribution.uniform(list(range(-50, -40)))
    tv = d.total_variation(uniform)
    assert 0 <= tv <= 1
    assert d.total_variation(d) == 0


@given(weight_maps(), weight_maps())
def test_total_variation_symmetry(wa, wb):
    a, b = Distribution(wa), Distribution(wb)
    assert a.total_variation(b) == b.total_variation(a)


@given(st.lists(weight_maps(), min_size=0, max_size=4))
@settings(max_examples=25)
def test_product_distribution_total(parts):
    joint = product_distribution([Distribution(w) for w in parts])
    assert sum(p for _o, p in joint.items()) == 1
    for outcome in joint.support():
        assert len(outcome) == len(parts)


@given(weight_maps(), st.integers(min_value=0, max_value=2**32 - 1))
def test_sampling_stays_in_support(weights, seed):
    import random

    d = Distribution(weights)
    rng = random.Random(seed)
    for _ in range(10):
        assert d.sample(rng) in d.support()
