"""Property-based tests for Markov-chain invariants."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov import (
    MarkovChain,
    absorption_probabilities,
    is_irreducible,
    is_stationary,
    long_run_state_distribution,
    stationary_distribution,
)
from repro.probability import Distribution


def random_chains(min_states=2, max_states=5):
    """Arbitrary chains over 0..n-1 with integer edge weights.

    Every state gets at least one outgoing edge (a self-loop fallback),
    so the mapping always yields a valid chain.
    """

    def build(data):
        n, rows = data
        transitions = {}
        for state in range(n):
            weights = {
                target: weight
                for target, weight in rows.get(state, {}).items()
                if target < n and weight > 0
            }
            if not weights:
                weights = {state: 1}
            transitions[state] = Distribution(weights)
        return MarkovChain(transitions)

    n_and_rows = st.integers(min_states, max_states).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.dictionaries(
                st.integers(0, n - 1),
                st.dictionaries(
                    st.integers(0, n - 1), st.integers(0, 5), max_size=n
                ),
                max_size=n,
            ),
        )
    )
    return n_and_rows.map(build)


def irreducible_chains(min_states=2, max_states=5):
    """Random chains forced irreducible by a lazy-cycle backbone."""

    def build(data):
        n, rows = data
        transitions = {}
        for state in range(n):
            weights = {
                target: weight
                for target, weight in rows.get(state, {}).items()
                if target < n and weight > 0
            }
            weights[(state + 1) % n] = weights.get((state + 1) % n, 0) + 1
            weights[state] = weights.get(state, 0) + 1
            transitions[state] = Distribution(weights)
        return MarkovChain(transitions)

    n_and_rows = st.integers(min_states, max_states).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.dictionaries(
                st.integers(0, n - 1),
                st.dictionaries(
                    st.integers(0, n - 1), st.integers(0, 5), max_size=n
                ),
                max_size=n,
            ),
        )
    )
    return n_and_rows.map(build)


@given(irreducible_chains())
@settings(max_examples=40, deadline=None)
def test_stationary_distribution_is_stationary(chain):
    assert is_irreducible(chain)
    pi = stationary_distribution(chain)
    assert is_stationary(chain, pi)
    assert sum(p for _s, p in pi.items()) == 1


@given(irreducible_chains())
@settings(max_examples=40, deadline=None)
def test_stationary_positive_on_irreducible(chain):
    pi = stationary_distribution(chain)
    assert all(pi.probability(s) > 0 for s in chain.states)


@given(random_chains())
@settings(max_examples=40, deadline=None)
def test_absorption_probabilities_sum_to_one(chain):
    probabilities = absorption_probabilities(chain, chain.states[0])
    assert sum(probabilities.values()) == 1
    assert all(p >= 0 for p in probabilities.values())


@given(random_chains())
@settings(max_examples=40, deadline=None)
def test_long_run_distribution_is_a_distribution(chain):
    occupancy = long_run_state_distribution(chain, chain.states[0])
    assert sum(occupancy.values()) == 1
    assert all(p >= 0 for p in occupancy.values())


@given(random_chains())
@settings(max_examples=30, deadline=None)
def test_long_run_matches_cesaro_numerically(chain):
    """The exact Thm 5.5 occupancy agrees with a long Cesàro average."""
    import numpy as np

    start = chain.states[0]
    occupancy = long_run_state_distribution(chain, start)
    matrix = chain.transition_matrix()
    mu = np.zeros(chain.size)
    mu[chain.index_of(start)] = 1.0
    acc = mu.copy()
    steps = 3000
    for _ in range(steps - 1):
        mu = mu @ matrix
        acc += mu
    acc /= steps
    for state in chain.states:
        assert abs(acc[chain.index_of(state)] - float(occupancy[state])) < 0.02
