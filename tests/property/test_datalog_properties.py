"""Differential property tests over random datalog programs.

For randomly generated safe programs (see
:mod:`repro.workloads.programs`):

* the Section 3.3 engine's fixpoint distribution is a probability
  distribution whose worlds all contain the seed fact;
* exact evaluation agrees with the Proposition 3.8 compiled form;
* sampled runs terminate at states inside the exact support;
* deterministic programs have a single world that matches classical
  semi-naive datalog.
"""

import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines import evaluate_classical
from repro.core import InflationaryQuery, TupleIn, evaluate_inflationary_exact
from repro.datalog import (
    InflationaryDatalogEngine,
    evaluate_datalog_exact,
    evaluate_datalog_sampling,
    inflationary_initial_database,
    inflationary_interpretation_for_program,
)
from repro.errors import StateSpaceLimitExceeded
from repro.workloads.programs import DOMAIN, random_program

SEEDS = st.integers(min_value=0, max_value=10_000)

#: Cap to keep adversarial random instances from blowing up the tests.
MAX_STATES = 60_000


def _some_event(program, edb) -> TupleIn:
    """A fixed probe tuple for the first IDB predicate."""
    predicate = program.idb_predicates()[0]
    arity = program.arity(predicate)
    return TupleIn(predicate, tuple(DOMAIN[:1] * arity))


@given(SEEDS)
@settings(max_examples=20, deadline=None)
def test_fixpoint_distribution_is_probability_distribution(seed):
    program, edb = random_program(rng=seed)
    engine = InflationaryDatalogEngine(program, edb)
    try:
        finals = engine.fixpoint_distribution(max_states=MAX_STATES)
    except (StateSpaceLimitExceeded, RecursionError):
        assume(False)
    total = sum(p for _w, p in finals.items())
    assert total == 1
    seed_fact = program.rules[0].head
    for world in finals.support():
        assert tuple(t.value for t in seed_fact.terms) in world[seed_fact.predicate]


@given(SEEDS)
@settings(max_examples=12, deadline=None)
def test_engine_agrees_with_prop38_compilation(seed):
    program, edb = random_program(rng=seed)
    event = _some_event(program, edb)
    try:
        engine_result = evaluate_datalog_exact(
            program, edb, event, max_states=MAX_STATES
        )
    except StateSpaceLimitExceeded:
        assume(False)
    kernel = inflationary_interpretation_for_program(program, edb.schema())
    init = inflationary_initial_database(program, edb)
    try:
        compiled = evaluate_inflationary_exact(
            InflationaryQuery(kernel, event), init, max_states=MAX_STATES
        )
    except StateSpaceLimitExceeded:
        assume(False)
    assert engine_result.probability == compiled.probability


@given(SEEDS, SEEDS)
@settings(max_examples=15, deadline=None)
def test_sampled_fixpoints_in_exact_support(seed, sample_seed):
    program, edb = random_program(rng=seed)
    engine = InflationaryDatalogEngine(program, edb)
    try:
        support = engine.fixpoint_distribution(max_states=MAX_STATES).support()
    except (StateSpaceLimitExceeded, RecursionError):
        assume(False)
    rng = random.Random(sample_seed)
    state = engine.initial_state()
    for _ in range(200):
        nxt = engine.sample_step(state, rng)
        if nxt == state and engine.is_fixpoint(state):
            break
        state = nxt
    assert engine.database_of(state) in support


@given(SEEDS)
@settings(max_examples=12, deadline=None)
def test_sampling_estimate_within_generous_band(seed):
    program, edb = random_program(rng=seed)
    event = _some_event(program, edb)
    try:
        exact = evaluate_datalog_exact(program, edb, event, max_states=MAX_STATES)
    except StateSpaceLimitExceeded:
        assume(False)
    sampled = evaluate_datalog_sampling(
        program, edb, event, samples=300, rng=seed + 1
    )
    assert abs(sampled.estimate - float(exact.probability)) < 0.15


@given(SEEDS)
@settings(max_examples=20, deadline=None)
def test_deterministic_programs_match_classical_datalog(seed):
    program, edb = random_program(rng=seed)
    assume(not program.has_probabilistic_rules())
    engine = InflationaryDatalogEngine(program, edb)
    finals = engine.fixpoint_distribution(max_states=MAX_STATES)
    assert len(finals) == 1
    final = next(iter(finals.support()))
    classical = evaluate_classical(program, edb)
    for predicate in program.idb_predicates():
        assert final[predicate] == classical[predicate]
