"""Property-based tests on whole-query semantics.

These tie the layers together: for random small graph workloads the
exact evaluators must agree with independent oracles, samplers must stay
inside the enumerated supports, and inflationarity must hold along
every path the exact evaluator visits.
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import functional_reachability_probability
from repro.core import (
    TupleIn,
    build_state_chain,
    evaluate_forever_exact,
    evaluate_inflationary_exact,
)
from repro.datalog import evaluate_datalog_exact
from repro.markov import stationary_distribution
from repro.workloads import (
    WeightedGraph,
    random_walk_query,
    reachability_program,
    reachability_query,
)


def small_graphs(max_nodes=4):
    """Connected-ish random weighted digraphs with a cycle backbone
    (every node has an out-edge)."""

    def build(data):
        n, extra = data
        nodes = [f"n{i}" for i in range(n)]
        edges = {}
        for i in range(n):
            edges[(nodes[i], nodes[(i + 1) % n])] = 1
        for (a, b, w) in extra:
            if a < n and b < n:
                edges[(nodes[a], nodes[b])] = w
        return WeightedGraph(nodes, [(s, t, w) for (s, t), w in edges.items()])

    return st.integers(2, max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, max_nodes - 1),
                    st.integers(0, max_nodes - 1),
                    st.integers(1, 4),
                ),
                max_size=6,
            ),
        )
    ).map(build)


@given(small_graphs())
@settings(max_examples=20, deadline=None)
def test_forever_query_equals_graph_stationary(graph):
    query, db = random_walk_query(graph, graph.nodes[0], graph.nodes[-1])
    result = evaluate_forever_exact(query, db)
    pi = stationary_distribution(graph.to_markov_chain())
    assert result.probability == pi.probability(graph.nodes[-1])


@given(small_graphs())
@settings(max_examples=15, deadline=None)
def test_reachability_fixpoint_equals_oracle(graph):
    start, target = graph.nodes[0], graph.nodes[-1]
    query, db = reachability_query(graph, start, target)
    result = evaluate_inflationary_exact(query, db)
    oracle = functional_reachability_probability(graph, start, target)
    assert result.probability == oracle


@given(small_graphs(max_nodes=3))
@settings(max_examples=10, deadline=None)
def test_datalog_reachability_equals_oracle(graph):
    start, target = graph.nodes[0], graph.nodes[-1]
    program, edb = reachability_program(graph, start)
    result = evaluate_datalog_exact(program, edb, TupleIn("c", (target,)))
    oracle = functional_reachability_probability(graph, start, target)
    assert result.probability == oracle


@given(small_graphs(), st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_sampled_trajectories_stay_in_reachable_chain(graph, seed):
    query, db = random_walk_query(graph, graph.nodes[0], graph.nodes[-1])
    chain = build_state_chain(query.kernel, db)
    rng = random.Random(seed)
    state = db
    for _ in range(12):
        state = query.kernel.sample_transition(state, rng)
        assert state in chain


@given(small_graphs())
@settings(max_examples=15, deadline=None)
def test_inflationary_states_grow_monotonically(graph):
    """Every transition of the Example 3.5 kernel is inflationary on C."""
    query, db = reachability_query(graph, graph.nodes[0], graph.nodes[-1])
    chain = build_state_chain(query.kernel, db, max_states=2000)
    for state in chain.states:
        for successor in chain.successors(state):
            assert state["C"].issubset(successor["C"])


@given(small_graphs())
@settings(max_examples=15, deadline=None)
def test_probability_results_are_valid(graph):
    query, db = reachability_query(graph, graph.nodes[0], graph.nodes[1])
    result = evaluate_inflationary_exact(query, db)
    assert 0 <= result.probability <= 1
    assert result.states_explored >= 1
