"""Command-line interface.

Evaluate queries of the paper's languages directly from files::

    python -m repro datalog program.dl --db db.json --event 'c(w)'
    python -m repro datalog program.dl --db db.json --event 'c(w)' --samples 2000 --seed 7
    python -m repro forever kernel.ra --db db.json --event 'C(a)'
    python -m repro forever kernel.ra --db db.json --event 'C(a)' --mcmc --epsilon 0.1
    python -m repro inflationary kernel.ra --db db.json --event 'C(b)'
    python -m repro chain kernel.ra --db db.json        # structure + mixing report

* ``program.dl`` — probabilistic datalog (see :mod:`repro.datalog.parser`);
* ``kernel.ra`` — an interpretation in the algebra syntax
  (see :mod:`repro.relational.parser`): one ``Name := expression`` per line;
* ``db.json`` — a database in the :mod:`repro.io` JSON format;
* ``--event`` — a ground atom ``relation(value, ...)``; values parse
  like datalog constants (numbers exact, ``'quoted strings'``, barewords).

Exact evaluation is the default; pass ``--samples`` or
``--epsilon/--delta`` for the sampling evaluators (Theorems 4.3 / 5.6).
``--json`` switches the output to machine-readable JSON.

Resource limits (see ``docs/robustness.md``): every subcommand accepts
``--timeout SECONDS`` (wall-clock deadline) and ``--max-steps N``
(transition-step budget); exceeding either aborts with a one-line
message and exit code 2.  ``forever`` additionally supports

* ``--fallback {none,lumped,mcmc,auto}`` — degrade gracefully when the
  explicit chain outgrows ``--max-states`` instead of failing
  (exact → lumped → MCMC; each downgrade is reported);
* ``--checkpoint PATH`` — persist Theorem 5.6 sampler progress on
  interruption (budget, Ctrl-C) so nothing is lost;
* ``--resume PATH`` — continue an interrupted sampler run
  bit-identically from its checkpoint.

Performance knobs (see ``docs/performance.md``): the sampling
subcommands accept ``--workers N`` (multi-core trials with
deterministic per-worker seeds; ``--workers 1`` reproduces the
sequential sampler bit-identically) and ``--cache-size N`` (memoize up
to N exact transition rows).  With ``--fallback``, both knobs apply to
the MCMC rung of the degradation ladder.

Observability (see ``docs/observability.md``): every evaluation
subcommand accepts ``--trace PATH`` to write a JSONL trace of spans
(``parse`` → ``chain-build`` → ``solve`` / ``sample``) and bounded step
events; ``repro report trace.jsonl`` pretty-prints it — phase
breakdown, convergence sparkline, event counts::

    python -m repro forever kernel.ra --db db.json --event 'C(a)' \
        --mcmc --seed 7 --trace run.jsonl
    python -m repro report run.jsonl

Serving (see ``docs/service.md``): ``repro serve`` runs the HTTP query
service (persistent engine sessions, bounded job queue, result cache);
``--log-level`` controls the ``repro.service`` logger on stderr.
``repro submit`` and ``repro jobs`` are its client — submit a query,
poll/cancel jobs, fetch traces, scrape ``/v1/metrics``::

    python -m repro serve --port 8352 --workers 4 --default-timeout 60
    python -m repro submit forever kernel.ra --db db.json --event 'C(a)' --url http://127.0.0.1:8352
    python -m repro jobs --metrics --url http://127.0.0.1:8352

Exit codes: 0 success, 2 any library/input error, 130 interrupted
(Ctrl-C; a configured ``--checkpoint`` is flushed first, and a
``serve`` process shuts its workers down).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import __version__
from repro.core import (
    ForeverQuery,
    InflationaryQuery,
    build_state_chain,
    evaluate_forever_exact,
    evaluate_forever_lumped,
    evaluate_forever_mcmc,
    evaluate_inflationary_exact,
    evaluate_inflationary_sampling,
)
from repro.core.events import parse_event
from repro.datalog import evaluate_datalog_exact, evaluate_datalog_sampling, parse_program
from repro.errors import ReproError
from repro.io import load_database, load_pc_database
from repro.obs.schema import TraceSchemaError
from repro.markov import classify, is_ergodic, is_irreducible, mixing_time
from repro.relational.parser import parse_interpretation
from repro.runtime import Budget, DegradationPolicy, RunContext, evaluate_forever_resilient

def _emit(payload: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
        return
    for key, value in payload.items():
        print(f"{key}: {value}")


def _add_sampling_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--samples", type=int, help="fixed Monte-Carlo sample count")
    parser.add_argument("--epsilon", type=float, help="additive accuracy target")
    parser.add_argument("--delta", type=float, default=0.05, help="failure probability (default 0.05)")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed")


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; exceeding it aborts with exit code 2",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="total transition-step budget across the whole run",
    )


def _add_perf_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the sampling evaluators (1 = the "
        "historical sequential sampler, bit-identical; N > 1 is "
        "seed-stable for fixed N)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=None,
        metavar="N",
        help="memoize up to N exact transition rows (LRU); hit/miss "
        "counters are reported — see docs/performance.md for when "
        "this is safe",
    )


def _add_backend_argument(
    parser: argparse.ArgumentParser, sparse: bool = False
) -> None:
    choices = ("frozenset", "columnar", "sparse") if sparse else (
        "frozenset", "columnar"
    )
    extra = (
        "; 'sparse' (forever only) answers through the certified CSR "
        "solver first, falling back down the ladder when the answer "
        "cannot be certified"
        if sparse
        else ""
    )
    parser.add_argument(
        "--backend",
        choices=choices,
        default=None,
        help="execution backend: 'columnar' compiles the program to the "
        "vectorized integer-ID array kernel (results are bit-identical; "
        "kernel-ineligible programs fall back to 'frozenset' with a "
        "recorded reason — see 'repro lint' hint PH005)" + extra,
    )


def _parallel_config(args: argparse.Namespace):
    """A ParallelConfig from --workers (None when sequential)."""
    workers = getattr(args, "workers", 1)
    if workers <= 1:
        return None
    from repro.perf import ParallelConfig

    return ParallelConfig(workers=workers)


def _add_partition_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--partition",
        choices=("auto", "off"),
        default="off",
        help="statically decompose the program into provenance-independent "
        "components ('repro lint' finding PP001), evaluate each on its own "
        "cheapest rung, and recombine the event probability by independence; "
        "falls back to whole-program evaluation when the planner finds a "
        "single component or the event does not decompose",
    )


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL evaluation trace here "
        "(inspect with 'repro report PATH')",
    )


def _build_context(args: argparse.Namespace) -> RunContext:
    """A run context from the subcommand's budget/trace flags."""
    tracer = None
    trace_path = getattr(args, "trace", None)
    # ``jobs --trace`` is a boolean flag fetching a *service* trace, not
    # a path to write one to.
    if isinstance(trace_path, str) and trace_path:
        from repro.obs import JsonlSink, Tracer

        tracer = Tracer(JsonlSink.open(trace_path))
    return RunContext(
        Budget(
            wall_clock=getattr(args, "timeout", None),
            max_steps=getattr(args, "max_steps", None),
        ),
        tracer=tracer,
    )


def _finalize_trace(context: RunContext | None, payload: dict | None) -> None:
    """Write the closing ``run`` record and flush the trace file.

    Runs on every exit path (success, budget abort, Ctrl-C) so a traced
    run always ends with its report — outcome, per-phase timings, spent
    budget — even when the evaluation itself died.
    """
    if context is None or not context.tracer.enabled:
        return
    if payload is not None:
        # A handler that returned is a successful run; error paths leave
        # the outcome the context recorded (budget_exceeded, cancelled).
        context.finish()
    report = context.report().as_dict()
    fields: dict = {"outcome": report["outcome"], "report": report}
    if isinstance(payload, dict):
        for key in ("mode", "estimate", "probability", "samples"):
            if key in payload:
                fields[key] = payload[key]
    context.tracer.run_record(**fields)
    context.tracer.close()


def _wants_sampling(args: argparse.Namespace) -> bool:
    return args.samples is not None or args.epsilon is not None


def _command_datalog(args: argparse.Namespace, context: RunContext) -> dict:
    with context.phase("parse"):
        with open(args.program, encoding="utf-8") as handle:
            program = parse_program(handle.read())
        edb = load_database(args.db)
        event = parse_event(args.event)
        pc_tables = load_pc_database(args.pc) if args.pc else None
    if _wants_sampling(args):
        result = evaluate_datalog_sampling(
            program,
            edb,
            event,
            pc_tables=pc_tables,
            epsilon=args.epsilon or 0.05,
            delta=args.delta,
            samples=args.samples,
            rng=args.seed,
            context=context,
        )
        return {
            "mode": "sampling (Theorem 4.3)",
            "estimate": result.estimate,
            "samples": result.samples,
            "epsilon": result.epsilon,
            "delta": result.delta,
        }
    result = evaluate_datalog_exact(
        program,
        edb,
        event,
        pc_tables=pc_tables,
        max_states=args.max_states,
        context=context,
    )
    return {
        "mode": "exact (Proposition 4.4)",
        "probability": str(result.probability),
        "probability_float": float(result.probability),
        "states_explored": result.states_explored,
        "pc_worlds": result.details.get("pc_worlds", 1),
    }


def _load_kernel_and_event(args: argparse.Namespace, context: RunContext):
    with context.phase("parse"):
        with open(args.kernel, encoding="utf-8") as handle:
            kernel = parse_interpretation(handle.read())
        db = load_database(args.db)
        event = parse_event(args.event)
    return kernel, db, event


def _mcmc_payload(result) -> dict:
    payload = {
        "mode": "MCMC (Theorem 5.6)",
        "estimate": result.estimate,
        "samples": result.samples,
        "burn_in": result.details["burn_in"],
    }
    if result.details.get("resumed_at") is not None:
        payload["resumed_at_sample"] = result.details["resumed_at"]
    _add_perf_details(payload, result)
    return payload


def _add_perf_details(payload: dict, result) -> None:
    if result.details.get("workers"):
        payload["workers"] = result.details["workers"]
    if result.details.get("backend"):
        payload["backend"] = result.details["backend"]
    cache = result.details.get("cache")
    if cache:
        payload["cache_hits"] = cache["hits"]
        payload["cache_misses"] = cache["misses"]
        payload["cache_evictions"] = cache["evictions"]


def _exact_payload(result) -> dict:
    payload = {
        "mode": f"exact ({result.method})",
        "probability": str(result.probability),
        "probability_float": float(result.probability),
        "chain_states": result.states_explored,
    }
    if result.details.get("backend"):
        payload["backend"] = result.details["backend"]
    return payload


def _sparse_payload(result) -> dict:
    lo, hi = result.interval
    payload = {
        "mode": f"sparse certified ({result.method})",
        "probability_float": result.probability,
        "interval": [lo, hi],
        "certificate": result.certificate.as_dict(),
        "chain_states": result.states_explored,
    }
    for key in ("backend", "sccs", "leaf_sccs", "irreducible"):
        if result.details.get(key) is not None:
            payload[key] = result.details[key]
    return payload


def _try_partition(args: argparse.Namespace, context: RunContext, query, db):
    """The ``--partition auto`` path: plan statically, execute per
    component, recombine by independence.

    Returns the payload, or ``None`` when partitioning was not requested
    or does not apply (single component, undecomposable event) — the
    caller then runs the whole-program evaluator as usual.
    """
    if getattr(args, "partition", "off") != "auto":
        return None
    from repro.analysis import analyze_kernel
    from repro.core.events import TupleIn
    from repro.runtime import can_partition, evaluate_partitioned

    semantics = "inflationary" if isinstance(query, InflationaryQuery) else "forever"
    analysis = analyze_kernel(
        query.kernel,
        database=db,
        event=query.event if isinstance(query.event, TupleIn) else None,
        semantics=semantics,
    )
    plan = analysis.partition
    if plan is None or not can_partition(plan, query.event):
        context.record_event(
            "partition requested but the program does not split; "
            "using whole-program evaluation"
        )
        return None
    policy = None
    if semantics == "forever":
        policy = DegradationPolicy(
            mode=args.fallback,
            sparse_epsilon=args.epsilon if args.epsilon is not None else 1e-6,
            mcmc_epsilon=args.epsilon or 0.1,
            mcmc_delta=args.delta,
            mcmc_samples=args.samples,
            mcmc_burn_in=args.burn_in,
            mcmc_cache_size=args.cache_size,
        )
    prefer_sparse = getattr(args, "backend", None) == "sparse"
    result = evaluate_partitioned(
        query,
        db,
        plan,
        max_states=args.max_states,
        policy=policy,
        context=context,
        seed=args.seed,
        backend=None if prefer_sparse else getattr(args, "backend", None),
        prefer_sparse=prefer_sparse,
        workers=getattr(args, "workers", 1),
    )
    if hasattr(result, "estimate"):
        payload = {
            "mode": f"partitioned ({result.method})",
            "estimate": result.estimate,
            "samples": result.samples,
            "epsilon": result.epsilon,
            "delta": result.delta,
        }
    else:
        payload = _exact_payload(result)
    payload["partition_components"] = len(plan.components)
    payload["partition_evaluated"] = len(result.details["components"])
    if result.details["pruned"]:
        payload["partition_pruned"] = ",".join(result.details["pruned"])
    report = context.report()
    if report.downgrades:
        payload["downgrades"] = [d.as_dict() for d in report.downgrades]
    return payload


def _command_forever(args: argparse.Namespace, context: RunContext) -> dict:
    kernel, db, event = _load_kernel_and_event(args, context)
    query = ForeverQuery(kernel, event)
    partitioned = _try_partition(args, context, query, db)
    if partitioned is not None:
        return partitioned
    prefer_sparse = args.backend == "sparse"
    if args.fallback != "none" or prefer_sparse:
        from repro.analysis import PlanHints

        hints = PlanHints.for_kernel(kernel, event=event, semantics="forever")
        policy = DegradationPolicy(
            mode=args.fallback,
            sparse_epsilon=args.epsilon if args.epsilon is not None else 1e-6,
            mcmc_epsilon=args.epsilon or 0.1,
            mcmc_delta=args.delta,
            mcmc_samples=args.samples,
            mcmc_burn_in=args.burn_in,
            mcmc_workers=args.workers,
            mcmc_cache_size=args.cache_size,
        )
        result = evaluate_forever_resilient(
            query,
            db,
            max_states=args.max_states,
            policy=policy,
            context=context,
            rng=args.seed,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            hints=hints,
            backend=None if prefer_sparse else args.backend,
            prefer_sparse=prefer_sparse,
        )
        if hasattr(result, "certificate"):
            payload = _sparse_payload(result)
        elif hasattr(result, "estimate"):
            payload = _mcmc_payload(result)
        else:
            payload = _exact_payload(result)
        report = context.report()
        if report.downgrades:
            payload["downgrades"] = [d.as_dict() for d in report.downgrades]
        return payload
    if args.mcmc or args.resume or _wants_sampling(args):
        result = evaluate_forever_mcmc(
            query,
            db,
            epsilon=args.epsilon or 0.1,
            delta=args.delta,
            samples=args.samples,
            burn_in=args.burn_in,
            rng=args.seed,
            context=context,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            cache_size=args.cache_size,
            parallel=_parallel_config(args),
            backend=args.backend,
        )
        return _mcmc_payload(result)
    if args.lumped:
        result = evaluate_forever_lumped(
            query, db, max_states=args.max_states, context=context,
            backend=args.backend,
        )
        payload = {
            "mode": "exact (lumped quotient)",
            "probability": str(result.probability),
            "probability_float": float(result.probability),
            "full_chain_states": result.details["full_states"],
            "quotient_states": result.details["quotient_states"],
        }
        if result.details.get("backend"):
            payload["backend"] = result.details["backend"]
        return payload
    result = evaluate_forever_exact(
        query, db, max_states=args.max_states, context=context,
        backend=args.backend,
    )
    payload = _exact_payload(result)
    payload["irreducible"] = result.details["irreducible"]
    return payload


def _command_inflationary(args: argparse.Namespace, context: RunContext) -> dict:
    kernel, db, event = _load_kernel_and_event(args, context)
    query = InflationaryQuery(kernel, event)
    partitioned = _try_partition(args, context, query, db)
    if partitioned is not None:
        return partitioned
    if _wants_sampling(args):
        result = evaluate_inflationary_sampling(
            query,
            db,
            epsilon=args.epsilon or 0.05,
            delta=args.delta,
            samples=args.samples,
            rng=args.seed,
            context=context,
            cache_size=args.cache_size,
            parallel=_parallel_config(args),
            backend=args.backend,
        )
        payload = {
            "mode": "sampling (Theorem 4.3)",
            "estimate": result.estimate,
            "samples": result.samples,
        }
        _add_perf_details(payload, result)
        return payload
    effective_backend = "frozenset"
    if args.backend == "columnar":
        from repro.core.evaluation.backend import resolve_backend

        query, db, effective_backend = resolve_backend(
            query, db, args.backend, context=context
        )
    result = evaluate_inflationary_exact(
        query, db, max_states=args.max_states, context=context
    )
    payload = {
        "mode": "exact (Proposition 4.4)",
        "probability": str(result.probability),
        "probability_float": float(result.probability),
        "states_explored": result.states_explored,
    }
    if effective_backend != "frozenset":
        payload["backend"] = effective_backend
    return payload


def _command_chain(args: argparse.Namespace, context: RunContext) -> dict:
    with context.phase("parse"):
        with open(args.kernel, encoding="utf-8") as handle:
            kernel = parse_interpretation(handle.read())
        db = load_database(args.db)
    effective_backend = "frozenset"
    if getattr(args, "backend", None) == "columnar":
        from repro.core.evaluation.backend import record_fallback
        from repro.kernel import KernelCompileError, compile_kernel

        try:
            kernel, db = compile_kernel(kernel, db)
            effective_backend = "columnar"
        except KernelCompileError as error:
            record_fallback(str(error), context)
    with context.phase("chain-build") as scope:
        chain = build_state_chain(
            kernel, db, max_states=args.max_states, context=context
        )
        scope.annotate(states=chain.size)
    with context.phase("solve"):
        summary: dict = dict(classify(chain))
        if is_irreducible(chain) and is_ergodic(chain):
            summary["mixing_time_0.25"] = mixing_time(
                chain, epsilon=0.25, context=context
            )
            summary["mixing_time_0.05"] = mixing_time(
                chain, epsilon=0.05, context=context
            )
    if effective_backend != "frozenset":
        summary["backend"] = effective_backend
    return summary


def _command_report(args: argparse.Namespace, context: RunContext) -> dict:
    """Pretty-print a JSONL trace: phases, convergence curve, events."""
    from repro.obs import load_summary, render_summary

    if getattr(args, "flame", False):
        from repro.obs import render_flame
        from repro.obs.schema import validate_trace_file

        print(render_flame(validate_trace_file(args.trace_file)), end="")
        return {}
    summary = load_summary(args.trace_file)
    if args.json:
        return summary.as_dict()
    print(render_summary(summary), end="")
    return {}


def _command_profile(args: argparse.Namespace, context: RunContext) -> dict:
    """EXPLAIN-ANALYZE for one run: span tree, reconciliation, ledger.

    The target is either a local JSONL trace file (written by
    ``--trace``) or a job id on a running service (``--url``).
    """
    import os

    from repro.obs import profile_from_trace, render_flame, render_profile

    if os.path.exists(args.target):
        from repro.obs.schema import validate_trace_file

        records = validate_trace_file(args.target)
        if args.flame:
            print(render_flame(records), end="")
            return {}
        payload = profile_from_trace(records)
    else:
        from repro.service import ServiceClient

        payload = ServiceClient(args.url).profile(args.target)
        if args.flame:
            for line in payload.get("folded") or []:
                print(line)
            return {}
    if args.json:
        return payload
    print(render_profile(payload), end="")
    return {}


def _infer_semantics(path: str, source: str) -> str:
    """Pick the language for ``lint`` when --semantics is ``auto``:
    by extension first (.dl / .ra), then by shape (``:=`` lines are
    kernels)."""
    lowered = path.lower()
    if lowered.endswith(".dl"):
        return "datalog"
    if lowered.endswith(".ra"):
        return "forever"
    return "forever" if ":=" in source else "datalog"


def _command_lint(args: argparse.Namespace, context: RunContext) -> dict:
    """Statically analyze a program without evaluating it.

    Exit codes: 1 when error-level diagnostics are found (warnings and
    hints alone keep exit 0), 2 for I/O problems as usual.
    """
    from repro.analysis import analyze_source

    with open(args.program, encoding="utf-8") as handle:
        source = handle.read()
    semantics = args.semantics
    if semantics == "auto":
        semantics = _infer_semantics(args.program, source)
    database = None
    if args.db:
        with open(args.db, encoding="utf-8") as handle:
            database = json.load(handle)
    pc_tables = None
    if args.pc:
        with open(args.pc, encoding="utf-8") as handle:
            pc_tables = json.load(handle)
    result = analyze_source(
        semantics, source, database=database, pc_tables=pc_tables, event=args.event
    )
    if result.report.has_errors:
        args._exit_code = 1
    if args.sarif:
        from repro.analysis import sarif_report

        print(
            json.dumps(
                sarif_report(
                    result, artifact_uri=args.program, tool_version=__version__
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return {}
    if args.json:
        payload = result.as_dict()
        payload["program"] = args.program
        return payload
    for line in result.report.render_lines(args.program):
        print(line)
    if result.partition is not None:
        for line in result.partition.render_lines():
            print(line)
    report = result.report
    summary: dict = {
        "semantics": semantics,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "hints": len(report.hints),
    }
    if result.hints is not None:
        summary["plan_hints"] = ", ".join(
            f"{key}={value}" for key, value in result.hints.as_dict().items()
        )
    return summary


def _command_serve(args: argparse.Namespace, context: RunContext) -> dict:
    """Run the HTTP query service until interrupted (Ctrl-C -> 130)."""
    from repro.service import QueryService, ServiceConfig, make_server

    default_budget = None
    if args.default_timeout is not None or args.default_max_steps is not None:
        default_budget = Budget(
            wall_clock=args.default_timeout, max_steps=args.default_max_steps
        )
    from repro.obs.logs import configure_service_logging

    configure_service_logging(args.log_level)
    if args.fault_plan:
        # Chaos mode: install the plan here (and export it through the
        # environment so supervised worker processes inherit it).
        import os as _os

        from repro import faults

        _os.environ[faults.FAULT_PLAN_ENV] = args.fault_plan
        faults.install_from_env()
    config = ServiceConfig(
        workers=args.workers,
        queue_size=args.queue_size,
        default_budget=default_budget,
        session_pool_size=args.session_pool_size,
        result_cache_size=args.result_cache_size,
        trace_events=args.trace_events,
        load_shedding=not args.no_load_shedding,
    )
    service = QueryService(config)
    supervise_stats = None
    if args.supervise:
        from repro.perf.supervisor import prewarm

        supervise_stats = prewarm(args.supervise)
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    startup = {
        "serving": url, "workers": args.workers, "queue_size": args.queue_size,
    }
    if supervise_stats is not None:
        startup["supervised_workers"] = supervise_stats["alive"]
    # The startup line is printed (and flushed) before serving so a
    # parent process can parse the bound address, ephemeral port included.
    _emit(startup, args.json)
    sys.stdout.flush()

    # Non-interactive shells start background jobs with SIGINT ignored,
    # in which case Python never installs its KeyboardInterrupt handler
    # and `kill -INT` would be a silent no-op.  The documented contract
    # (graceful shutdown, exit 130) must hold regardless of how the
    # server was launched, and SIGTERM gets the same graceful path.
    import signal

    def _request_stop(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGINT, _request_stop)
    signal.signal(signal.SIGTERM, _request_stop)
    service.start()
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        service.shutdown(wait=False, cancel_running=True)
    return {"stopped": url}


def _command_chaos(args: argparse.Namespace, context: RunContext) -> dict:
    """Run seeded fault-injection scenarios against the real samplers.

    Each scenario runs the same seeded Theorem 5.6 evaluation as a clean
    baseline, installs a deterministic :class:`~repro.faults.FaultPlan`,
    and checks the run *recovers to the bit-identical estimate* — crashes
    through supervisor restarts, hangs through heartbeat stall detection,
    transient faults through chunk retries, and torn checkpoint writes
    through the crash-safe rename protocol plus resume.  Exit code 1
    when any scenario fails its check.
    """
    import os
    import tempfile

    from repro import faults
    from repro.faults import (
        SITE_CHECKPOINT_WRITE,
        SITE_SAMPLER_SAMPLE,
        SITE_SUPERVISOR_TASK,
        FaultPlan,
        FaultSpec,
    )
    from repro.perf import ParallelConfig
    from repro.perf.supervisor import HEARTBEAT_TIMEOUT_ENV

    kernel, db, event = _load_kernel_and_event(args, context)
    query = ForeverQuery(kernel, event)
    samples = args.samples
    seed = args.seed
    workers = max(2, args.workers)
    parallel = ParallelConfig(workers=workers)

    def run(parallel_config=None, checkpoint=None, resume=None):
        ctx = RunContext(Budget(
            wall_clock=getattr(args, "timeout", None),
            max_steps=getattr(args, "max_steps", None),
        ))
        result = evaluate_forever_mcmc(
            query,
            db,
            samples=samples,
            burn_in=args.burn_in,
            rng=seed,
            context=ctx,
            parallel=parallel_config,
            checkpoint_path=checkpoint,
            resume=resume,
        )
        return result, ctx

    chosen = (
        ("crash", "hang", "transient", "torn-checkpoint")
        if args.scenario == "all" else (args.scenario,)
    )
    pool_scenarios = [name for name in chosen if name != "torn-checkpoint"]
    baseline_pool = run(parallel)[0] if pool_scenarios else None
    baseline_seq = run(None)[0] if "torn-checkpoint" in chosen else None

    def recovery(name: str, plan: FaultPlan, heartbeat: float | None = None) -> dict:
        if heartbeat is not None:
            os.environ[HEARTBEAT_TIMEOUT_ENV] = str(heartbeat)
        faults.install(plan)
        try:
            result, ctx = run(parallel)
        finally:
            faults.uninstall()
            if heartbeat is not None:
                os.environ.pop(HEARTBEAT_TIMEOUT_ENV, None)
        events = ctx.report().events
        return {
            "scenario": name,
            "ok": result.estimate == baseline_pool.estimate,
            "estimate": result.estimate,
            "expected": baseline_pool.estimate,
            "recovery_events": [
                line for line in events
                if "restart" in line or "retry" in line or "stale" in line
            ],
        }

    def torn_checkpoint() -> dict:
        interrupt_at = max(2, samples // 2)
        checkpoint = os.path.join(
            tempfile.mkdtemp(prefix="repro-chaos-"), "run.ckpt"
        )
        interrupt = FaultSpec(
            SITE_SAMPLER_SAMPLE, "raise", after=interrupt_at, transient=False
        )
        # First interruption: the snapshot write itself is torn mid-way.
        # The rename protocol must leave no (partial) checkpoint behind.
        faults.install(FaultPlan([
            interrupt, FaultSpec(SITE_CHECKPOINT_WRITE, "torn-write"),
        ], seed=seed))
        died = False
        try:
            run(None, checkpoint=checkpoint)
        except ReproError:
            died = True
        finally:
            faults.uninstall()
        torn_ok = died and not os.path.exists(checkpoint)
        # Second interruption, healthy disk: the checkpoint must land.
        faults.install(FaultPlan([interrupt], seed=seed))
        try:
            run(None, checkpoint=checkpoint)
        except ReproError:
            pass
        finally:
            faults.uninstall()
        saved_ok = os.path.exists(checkpoint)
        resumed = run(None, checkpoint=checkpoint, resume=checkpoint)[0]
        return {
            "scenario": "torn-checkpoint",
            "ok": (
                torn_ok and saved_ok
                and resumed.estimate == baseline_seq.estimate
            ),
            "torn_write_left_no_checkpoint": torn_ok,
            "checkpoint_saved_on_retry": saved_ok,
            "estimate": resumed.estimate,
            "expected": baseline_seq.estimate,
        }

    plans = {
        "crash": (FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "crash", generation=0)], seed=seed
        ), None),
        "hang": (FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "hang", generation=0)], seed=seed
        ), 2.0),
        "transient": (FaultPlan(
            [FaultSpec(SITE_SUPERVISOR_TASK, "raise", times=2)], seed=seed
        ), None),
    }
    records = []
    for name in chosen:
        if name == "torn-checkpoint":
            records.append(torn_checkpoint())
        else:
            plan, heartbeat = plans[name]
            records.append(recovery(name, plan, heartbeat))
    all_ok = all(record["ok"] for record in records)
    if not all_ok:
        args._exit_code = 1
    return {
        "ok": all_ok,
        "workers": workers,
        "samples": samples,
        "seed": seed,
        "scenarios": records,
    }


def _submit_body(args: argparse.Namespace) -> dict:
    with open(args.program, encoding="utf-8") as handle:
        program_text = handle.read()
    with open(args.db, encoding="utf-8") as handle:
        database = json.load(handle)
    body: dict = {
        "semantics": args.semantics,
        "program": program_text,
        "database": database,
        "event": args.event,
        "priority": args.priority,
    }
    if args.pc:
        with open(args.pc, encoding="utf-8") as handle:
            body["pc_tables"] = json.load(handle)
    params = {
        key: getattr(args, key)
        for key in (
            "samples", "epsilon", "delta", "seed", "max_states",
            "burn_in", "workers", "cache_size", "backend", "partition",
        )
        if getattr(args, key) is not None
    }
    if args.mcmc:
        params["mcmc"] = True
    if args.lumped:
        params["lumped"] = True
    if args.fallback is not None:
        params["fallback"] = args.fallback
    if params:
        body["params"] = params
    budget = {
        key: getattr(args, key)
        for key in ("timeout", "max_steps")
        if getattr(args, key) is not None
    }
    if budget:
        body["budget"] = budget
    return body


def _command_submit(args: argparse.Namespace, context: RunContext) -> dict:
    """Submit one query to a running service; wait unless --no-wait."""
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    record = client.submit(_submit_body(args))
    if args.no_wait:
        return record
    return client.wait(record["id"], timeout=args.wait_timeout)


def _command_loadgen(args: argparse.Namespace, context: RunContext) -> dict:
    """Hammer an in-process service and report latency/QPS."""
    from repro.service.loadgen import default_corpus, run_loadgen

    corpus = default_corpus(
        args.requests,
        samples=args.samples,
        burn_in=args.burn_in,
        backend=args.backend,
    )
    report = run_loadgen(
        corpus, concurrency=args.concurrency, timeout=args.wait_timeout
    )
    payload = report.as_dict()
    if args.backend:
        payload["backend"] = args.backend
    return payload


def _command_jobs(args: argparse.Namespace, context: RunContext) -> dict:
    """List/poll/cancel jobs on a running service; scrape its metrics."""
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    if args.metrics:
        return client.metrics()
    if args.prometheus:
        print(client.metrics_prometheus(), end="")
        return {}
    if args.health:
        return client.healthz()
    if args.job_id is None:
        return {"jobs": client.jobs()}
    if args.cancel:
        return client.cancel(args.job_id)
    if args.trace:
        return {"job_id": args.job_id, "trace": client.trace(args.job_id)}
    return client.job(args.job_id)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic fixpoint / Markov chain query languages (PODS 2010)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    # --json is accepted both before and after the subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--json", action="store_true", help="JSON output")
    parser.add_argument("--json", action="store_true", help="JSON output")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datalog = subparsers.add_parser(
        "datalog", help="evaluate a probabilistic datalog query", parents=[common]
    )
    datalog.add_argument("program", help="datalog program file")
    datalog.add_argument("--db", required=True, help="database JSON file")
    datalog.add_argument("--event", required=True, help="ground event atom, e.g. 'c(w)'")
    datalog.add_argument("--pc", help="pc-table database JSON (Definition 2.1)")
    datalog.add_argument("--max-states", type=int, default=100_000)
    _add_sampling_arguments(datalog)
    _add_budget_arguments(datalog)
    _add_trace_argument(datalog)
    datalog.set_defaults(handler=_command_datalog)

    forever = subparsers.add_parser(
        "forever", help="evaluate a non-inflationary (forever) query", parents=[common]
    )
    forever.add_argument("kernel", help="interpretation file (Name := expression lines)")
    forever.add_argument("--db", required=True)
    forever.add_argument("--event", required=True)
    forever.add_argument("--mcmc", action="store_true", help="force the Theorem 5.6 sampler")
    forever.add_argument(
        "--lumped",
        action="store_true",
        help="evaluate exactly on the event-respecting lumped quotient",
    )
    forever.add_argument("--burn-in", type=int, default=None)
    forever.add_argument("--max-states", type=int, default=20_000)
    forever.add_argument(
        "--fallback",
        choices=("none", "sparse", "lumped", "mcmc", "auto"),
        default="none",
        help="degrade exact -> sparse -> lumped -> MCMC when the chain "
        "outgrows --max-states or a certified solve refuses, instead of "
        "failing (downgrades are reported)",
    )
    _add_partition_argument(forever)
    forever.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="write sampler progress here on interruption (budget or Ctrl-C)",
    )
    forever.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="resume an interrupted Theorem 5.6 run from its checkpoint",
    )
    _add_sampling_arguments(forever)
    _add_budget_arguments(forever)
    _add_perf_arguments(forever)
    _add_backend_argument(forever, sparse=True)
    _add_trace_argument(forever)
    forever.set_defaults(handler=_command_forever)

    inflationary = subparsers.add_parser(
        "inflationary", help="evaluate an inflationary query", parents=[common]
    )
    inflationary.add_argument("kernel")
    inflationary.add_argument("--db", required=True)
    inflationary.add_argument("--event", required=True)
    inflationary.add_argument("--max-states", type=int, default=100_000)
    _add_partition_argument(inflationary)
    _add_sampling_arguments(inflationary)
    _add_budget_arguments(inflationary)
    _add_perf_arguments(inflationary)
    _add_backend_argument(inflationary)
    _add_trace_argument(inflationary)
    inflationary.set_defaults(handler=_command_inflationary)

    chain = subparsers.add_parser(
        "chain", help="analyse the induced database-state chain", parents=[common]
    )
    chain.add_argument("kernel")
    chain.add_argument("--db", required=True)
    chain.add_argument("--max-states", type=int, default=20_000)
    _add_budget_arguments(chain)
    _add_backend_argument(chain)
    _add_trace_argument(chain)
    chain.set_defaults(handler=_command_chain)

    lint = subparsers.add_parser(
        "lint",
        help="statically analyze a program without evaluating it "
        "(see docs/analysis.md)",
        parents=[common],
    )
    lint.add_argument("program", help="program file (.dl datalog, .ra kernel)")
    lint.add_argument(
        "--semantics",
        choices=("auto", "datalog", "forever", "inflationary"),
        default="auto",
        help="language/semantics to check against (auto: by file extension)",
    )
    lint.add_argument(
        "--db",
        default=None,
        help="database JSON; enables schema, arity, and weight-type checks",
    )
    lint.add_argument("--pc", default=None, help="pc-table database JSON")
    lint.add_argument(
        "--event",
        default=None,
        help="query event; enables dead-rule/reachability checks",
    )
    lint.add_argument(
        "--sarif",
        action="store_true",
        help="emit the report as a SARIF 2.1.0 document (for code-scanning "
        "UIs; takes precedence over --json)",
    )
    lint.set_defaults(handler=_command_lint)

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP query service (see docs/service.md)",
        parents=[common],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8352, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="scheduler worker threads"
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded queue capacity; submissions beyond it get HTTP 429",
    )
    serve.add_argument(
        "--default-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for jobs that do not set one",
    )
    serve.add_argument(
        "--default-max-steps",
        type=int,
        default=None,
        metavar="N",
        help="transition-step budget for jobs that do not set one",
    )
    serve.add_argument(
        "--session-pool-size",
        type=int,
        default=32,
        help="resident prepared programs (LRU beyond this)",
    )
    serve.add_argument(
        "--result-cache-size",
        type=int,
        default=1024,
        help="retained deterministic results (LRU beyond this)",
    )
    serve.add_argument(
        "--trace-events",
        type=int,
        default=2048,
        metavar="N",
        help="per-job trace event bound served by GET /v1/jobs/<id>/trace "
        "(0 disables job tracing)",
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="repro.service logger verbosity (stderr, job-id correlated)",
    )
    serve.add_argument(
        "--supervise",
        type=int,
        default=0,
        metavar="N",
        help="pre-warm N supervised sampler worker processes at startup "
        "so the first workers>1 job skips spawn latency (0 = lazy)",
    )
    serve.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN",
        help="install a fault-injection plan (inline JSON or @path) for "
        "chaos testing; exported to worker processes via "
        "REPRO_FAULT_PLAN — see docs/robustness.md",
    )
    serve.add_argument(
        "--no-load-shedding",
        action="store_true",
        help="disable the admission-time degradation ladder (overloaded "
        "queues then reject with 429 only)",
    )
    serve.set_defaults(handler=_command_serve)

    chaos = subparsers.add_parser(
        "chaos",
        help="seeded fault-injection scenarios against the real samplers "
        "(crash, hang, transient, torn-checkpoint; see docs/robustness.md)",
        parents=[common],
    )
    chaos.add_argument("kernel", help="interpretation file (Name := expression lines)")
    chaos.add_argument("--db", required=True)
    chaos.add_argument("--event", required=True)
    chaos.add_argument(
        "--scenario",
        choices=("all", "crash", "hang", "transient", "torn-checkpoint"),
        default="all",
        help="which fault scenario to run (default: all of them)",
    )
    chaos.add_argument("--samples", type=int, default=24)
    chaos.add_argument("--seed", type=int, default=7)
    chaos.add_argument("--burn-in", type=int, default=None)
    chaos.add_argument(
        "--workers", type=int, default=2,
        help="supervised sampler workers for the pool scenarios (min 2)",
    )
    _add_budget_arguments(chaos)
    chaos.set_defaults(handler=_command_chaos)

    submit = subparsers.add_parser(
        "submit",
        help="submit one query to a running service",
        parents=[common],
    )
    submit.add_argument(
        "semantics", choices=("forever", "inflationary", "datalog")
    )
    submit.add_argument("program", help="program/kernel file")
    submit.add_argument("--db", required=True, help="database JSON file")
    submit.add_argument("--event", required=True)
    submit.add_argument("--url", default="http://127.0.0.1:8352")
    submit.add_argument("--pc", help="pc-table database JSON (datalog only)")
    submit.add_argument("--priority", choices=("normal", "high"), default="normal")
    submit.add_argument("--samples", type=int, default=None)
    submit.add_argument("--epsilon", type=float, default=None)
    submit.add_argument("--delta", type=float, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--max-states", type=int, default=None)
    submit.add_argument("--mcmc", action="store_true")
    submit.add_argument("--lumped", action="store_true")
    submit.add_argument(
        "--fallback", choices=("sparse", "lumped", "mcmc", "auto"), default=None
    )
    submit.add_argument("--burn-in", type=int, default=None)
    submit.add_argument("--workers", type=int, default=None)
    submit.add_argument("--cache-size", type=int, default=None)
    submit.add_argument(
        "--backend", choices=("frozenset", "columnar", "sparse"), default=None,
        help="execution backend (forever/inflationary; 'sparse' is "
        "forever-only)",
    )
    submit.add_argument(
        "--partition", choices=("auto", "off"), default=None,
        help="ask the service to evaluate provenance-independent components "
        "separately and recombine by independence (forever/inflationary)",
    )
    submit.add_argument("--timeout", type=float, default=None, help="per-job wall-clock budget")
    submit.add_argument("--max-steps", type=int, default=None, help="per-job step budget")
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the accepted job record instead of polling for the result",
    )
    submit.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up polling after this long",
    )
    submit.set_defaults(handler=_command_submit)

    jobs = subparsers.add_parser(
        "jobs",
        help="list, poll, or cancel jobs on a running service",
        parents=[common],
    )
    jobs.add_argument("job_id", nargs="?", default=None)
    jobs.add_argument("--url", default="http://127.0.0.1:8352")
    jobs.add_argument("--cancel", action="store_true", help="cancel the given job")
    jobs.add_argument("--metrics", action="store_true", help="scrape /v1/metrics")
    jobs.add_argument(
        "--prometheus",
        action="store_true",
        help="scrape /v1/metrics?format=prometheus (raw text)",
    )
    jobs.add_argument("--health", action="store_true", help="probe /v1/healthz")
    jobs.add_argument(
        "--trace",
        action="store_true",
        help="fetch the given job's trace records",
    )
    jobs.set_defaults(handler=_command_jobs)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive N concurrent submits through an in-process service "
        "and report p50/p99 latency and QPS",
        parents=[common],
    )
    loadgen.add_argument(
        "--requests", type=int, default=48, help="total requests (default 48)"
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="closed-loop client threads = service workers (default 4)",
    )
    loadgen.add_argument(
        "--samples", type=int, default=40, help="MCMC samples per request"
    )
    loadgen.add_argument(
        "--burn-in", type=int, default=5, help="MCMC burn-in per request"
    )
    loadgen.add_argument(
        "--wait-timeout", type=float, default=120.0, help="per-job wait timeout"
    )
    loadgen.add_argument(
        "--backend",
        choices=("frozenset", "columnar"),
        default=None,
        help="evaluation backend for every generated request",
    )
    loadgen.set_defaults(handler=_command_loadgen)

    report = subparsers.add_parser(
        "report",
        help="pretty-print a JSONL evaluation trace (phases, convergence)",
        parents=[common],
    )
    report.add_argument(
        "trace_file", metavar="trace", help="trace file written by --trace"
    )
    report.add_argument(
        "--flame",
        action="store_true",
        help="emit folded-stack lines (flamegraph.pl / speedscope input) "
        "instead of the summary",
    )
    report.set_defaults(handler=_command_report)

    profile = subparsers.add_parser(
        "profile",
        help="EXPLAIN-ANALYZE one run: span tree with exclusive timings, "
        "phase reconciliation, and the resource ledger",
        parents=[common],
    )
    profile.add_argument(
        "target",
        help="a local trace file written by --trace, or a job id on a "
        "running service",
    )
    profile.add_argument("--url", default="http://127.0.0.1:8352")
    profile.add_argument(
        "--flame",
        action="store_true",
        help="emit folded-stack lines instead of the tree",
    )
    profile.set_defaults(handler=_command_profile)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Exit codes: 0 on success; 2 for any :class:`ReproError` (including
    budget exhaustion) or input problem, printed as one line on stderr;
    130 when interrupted with Ctrl-C (the samplers flush a checkpoint
    first when ``--checkpoint`` is configured).
    """
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    context = None
    payload = None
    try:
        context = _build_context(args)
        payload = args.handler(args, context)
    except KeyboardInterrupt:
        message = "interrupted"
        checkpoint = getattr(args, "checkpoint", None)
        if checkpoint:
            message += f" (progress saved to {checkpoint})"
        print(message, file=sys.stderr)
        return 130
    except (ReproError, OSError, json.JSONDecodeError, TraceSchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        _finalize_trace(context, payload)
    _emit(payload, args.json)
    # ``lint`` signals error-level diagnostics with exit 1 (distinct
    # from exit 2, which means the run itself failed).
    return getattr(args, "_exit_code", 0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
