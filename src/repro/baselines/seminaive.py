"""Classical (non-probabilistic) datalog by semi-naive evaluation.

The deterministic baseline of Table 1's first row: datalog *without*
probabilistic rules.  Also the reference point of the Theorem 4.3 proof
("the applications sequence entails the same number of steps as
evaluation of non-probabilistic datalog") — the sampling benchmarks
report their per-sample cost relative to this evaluator.

Rules are evaluated with every satisfying valuation firing (no
repair-key choice); the result is the least fixpoint.  Rules carrying
key markers or weight annotations are rejected — use the probabilistic
engines for those.
"""

from __future__ import annotations

from repro.datalog.ast import Program
from repro.datalog.compiler import compile_body, initial_database, program_schema
from repro.datalog.engine import _head_row
from repro.errors import DatalogError
from repro.relational.algebra import evaluate
from repro.relational.database import Database


def evaluate_classical(program: Program, edb: Database, max_rounds: int = 100_000) -> Database:
    """The least fixpoint of a non-probabilistic program over ``edb``.

    Semi-naive in spirit: per round, only valuations not seen before
    fire (which for deterministic rules is a pure optimisation — the
    result is the classical least model).

    Examples
    --------
    >>> from repro.datalog.parser import parse_program
    >>> from repro.relational import Relation
    >>> program = parse_program("t(X, Y) :- e(X, Y). t(X, Z) :- t(X, Y), e(Y, Z).")
    >>> edb = Database({"e": Relation(("A", "B"), [(1, 2), (2, 3)])})
    >>> sorted(evaluate_classical(program, edb)["t"].rows)
    [(1, 2), (1, 3), (2, 3)]
    """
    for rule in program.rules:
        if rule.is_probabilistic():
            raise DatalogError(
                f"rule {rule!r} is probabilistic; evaluate_classical only "
                "handles plain datalog"
            )
    schema = program_schema(program, edb.schema())
    body_exprs = [compile_body(rule.body, schema) for rule in program.rules]
    seen = [set() for _ in program.rules]

    state = initial_database(program, edb)
    for _ in range(max_rounds):
        additions: dict[str, set] = {}
        for index, (rule, expr) in enumerate(zip(program.rules, body_exprs)):
            valuations = evaluate(expr, state)
            fresh = valuations.rows - seen[index]
            if not fresh:
                continue
            seen[index] |= fresh
            bucket = additions.setdefault(rule.head.predicate, set())
            for row in fresh:
                valuation = dict(zip(valuations.columns, row))
                bucket.add(_head_row(rule, valuation))
        updates = {}
        for predicate, rows in additions.items():
            grown = state[predicate].with_rows(rows)
            if grown != state[predicate]:
                updates[predicate] = grown
        if not updates:
            return state
        state = state.with_relations(updates)
    raise DatalogError(f"no fixpoint within {max_rounds} rounds")
