"""Direct Bayesian-network inference — the Example 3.10 cross-check.

Thin, explicit re-statement of exact enumeration and forward sampling
over :class:`~repro.workloads.bayesnets.BayesianNetwork`, kept separate
from the datalog pipeline so benchmark X5 compares two independent
implementations of the same marginal.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.probability.rng import RngLike, make_rng
from repro.workloads.bayesnets import BayesianNetwork


def enumerate_marginal(
    network: BayesianNetwork, conditions: Mapping[str, int]
) -> Fraction:
    """Pr[⋀ node = value] by summing the joint over all completions."""
    return network.marginal_probability(conditions)


def sampled_marginal(
    network: BayesianNetwork,
    conditions: Mapping[str, int],
    samples: int,
    rng: RngLike = None,
) -> float:
    """Forward-sampling estimate of the same marginal."""
    generator = make_rng(rng)
    hits = 0
    for _ in range(samples):
        valuation = network.sample(generator)
        if all(valuation[node] == value for node, value in conditions.items()):
            hits += 1
    return hits / samples
