"""Direct PageRank by power iteration — the Example 3.3 cross-check.

The forever-query PageRank encoding (``repro.workloads.queries
.pagerank_query``) must produce, per node, the stationary probability of
the dampened walk; this module computes the same vector directly on the
graph so benchmark X2 can compare the two.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.workloads.graphs import Node, WeightedGraph


def pagerank(
    graph: WeightedGraph,
    alpha: float,
    tolerance: float = 1e-12,
    max_iterations: int = 100_000,
) -> dict[Node, float]:
    """PageRank scores with jump probability ``alpha``.

    The walk follows a weighted out-edge with probability 1 − α and
    jumps to a uniformly random node with probability α, matching the
    Example 3.3 variant exactly (note: α is the probability of the
    jump; the paper calls it the dampening factor).
    """
    if not 0 < alpha < 1:
        raise ReproError("alpha must lie in (0, 1)")
    stuck = graph.sinks()
    if stuck:
        raise ReproError(f"nodes {stuck!r} have no outgoing edges")
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    follow = np.zeros((n, n))
    for source, target, weight in graph.edges:
        follow[index[source], index[target]] += float(weight)
    follow /= follow.sum(axis=1, keepdims=True)
    matrix = (1.0 - alpha) * follow + alpha / n

    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = rank @ matrix
        if np.abs(updated - rank).sum() < tolerance:
            rank = updated
            break
        rank = updated
    else:
        raise ReproError("power iteration did not converge")
    return {node: float(rank[index[node]]) for node in nodes}
