"""Independent baselines the paper's encodings are checked against:
classical semi-naive datalog, direct PageRank, exact reachability
oracles, and direct Bayesian-network inference."""

from repro.baselines.bayesnet import enumerate_marginal, sampled_marginal
from repro.baselines.pagerank import pagerank
from repro.baselines.reachability import (
    functional_reachability_probability,
    walk_hitting_probability,
)
from repro.baselines.seminaive import evaluate_classical

__all__ = [
    "enumerate_marginal",
    "evaluate_classical",
    "functional_reachability_probability",
    "pagerank",
    "sampled_marginal",
    "walk_hitting_probability",
]
