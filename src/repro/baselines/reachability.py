"""Exact reachability baselines for Examples 3.5 / 3.9 (benchmark X3).

The paper's inflationary reachability encodings give every *reached*
node one repair-key choice of successor, once.  Semantically this draws
a random functional sub-graph f (one out-edge per reached node, chosen
with the edge weights) and asks whether the target lies in the
f-closure of the start node.  :func:`functional_reachability_probability`
computes that probability exactly by direct enumeration of the choices
of reached nodes — independent of the query machinery, so it
cross-checks both the fixpoint and the datalog encodings.

:func:`walk_hitting_probability` computes the *memoryless-walk* hitting
probability (first-step analysis on the Markov chain).  On DAGs the two
coincide (no node is ever re-visited); on cyclic graphs they differ —
the walk re-randomises at each visit while the fixpoint encodings
freeze each node's choice (see Example 3.6's discussion) — and the
benchmark exhibits exactly that divergence.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ReproError
from repro.markov.absorption import absorption_probabilities
from repro.markov.chain import MarkovChain
from repro.probability.distribution import Distribution
from repro.workloads.graphs import Node, WeightedGraph


def functional_reachability_probability(
    graph: WeightedGraph, start: Node, target: Node
) -> Fraction:
    """Pr[target ∈ closure(start)] when each reached node independently
    fixes one weighted out-edge.

    Exact, by recursion over the frontier of nodes whose choice is still
    pending; memoised on (reached, pending).  Exponential in the worst
    case — this is a ground-truth oracle for small instances, not an
    algorithm the paper claims efficient.
    """
    if start not in graph.nodes or target not in graph.nodes:
        raise ReproError("start/target must be graph nodes")
    choices: dict[Node, list[tuple[Node, Fraction]]] = {}
    for node in graph.nodes:
        outgoing = graph.out_edges(node)
        total = sum(weight for _s, _t, weight in outgoing)
        choices[node] = [(t, w / total) for _s, t, w in outgoing]

    memo: dict[tuple[frozenset, frozenset], Fraction] = {}

    def explore(reached: frozenset, pending: frozenset) -> Fraction:
        if target in reached:
            return Fraction(1)
        if not pending:
            return Fraction(0)
        key = (reached, pending)
        cached = memo.get(key)
        if cached is not None:
            return cached
        node = sorted(pending, key=repr)[0]
        rest = pending - {node}
        if not choices[node]:
            # A sink never chooses; the derivation continues elsewhere.
            result = explore(reached, rest)
            memo[key] = result
            return result
        total = Fraction(0)
        for successor, probability in choices[node]:
            if successor in reached:
                total += probability * explore(reached, rest)
            else:
                total += probability * explore(
                    reached | {successor}, rest | {successor}
                )
        memo[key] = total
        return total

    if not choices[start]:
        return Fraction(1) if start == target else Fraction(0)
    return explore(frozenset({start}), frozenset({start}))


def walk_hitting_probability(
    graph: WeightedGraph, start: Node, target: Node
) -> Fraction:
    """Pr[a memoryless random walk from ``start`` ever visits
    ``target``] — first-step analysis, computed by making the target
    absorbing and solving the absorption system exactly."""
    if start not in graph.nodes or target not in graph.nodes:
        raise ReproError("start/target must be graph nodes")
    if start == target:
        return Fraction(1)
    chain = graph.to_markov_chain()
    transitions = {
        state: (
            Distribution.point(state)
            if state == target
            else chain.successors(state)
        )
        for state in chain.states
    }
    absorbed = MarkovChain(transitions)
    result = Fraction(0)
    for leaf, probability in absorption_probabilities(absorbed, start).items():
        if target in leaf:
            result += probability
    return result
