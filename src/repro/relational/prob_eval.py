"""Probabilistic evaluation of algebra expressions with ``repair-key``.

An expression containing ``repair-key`` no longer denotes one relation
but a *probabilistic database of results*: a finite distribution over
relations (Section 2.2 of the paper).  This module provides the two
evaluation modes every algorithm in the paper builds on:

* :func:`enumerate_worlds` — the exact possible-worlds distribution of
  an expression.  Exponential in the number of repair-key choices, as it
  must be (exact evaluation is ♯P-hard, Section 4); used by the exact
  evaluators of Proposition 4.4 / Proposition 5.4 / Theorem 5.5.
* :func:`sample_world` — draw one world in polynomial time; the
  primitive of the sampling evaluators (Theorems 4.3 and 5.6).

Distinct repair-key occurrences in an expression are independent
sampling events, and distinct possible worlds that happen to produce
equal result relations are merged (their probabilities add) — both
exactly as the paper's semantics prescribes.
"""

from __future__ import annotations

import random
from typing import Any

from repro.errors import AlgebraError
from repro.probability.distribution import Distribution
from repro.relational.algebra import (
    Difference,
    Expression,
    ExtendedProject,
    Literal,
    NaturalJoin,
    Product,
    Project,
    Rename,
    RepairKey,
    Select,
    Union,
    evaluate,
)
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.repair import repair_distribution, sample_repair

_EMPTY_DB = Database({})


def _apply_unary(expr: Expression, child: Relation) -> Relation:
    """Apply a unary operator node to a concrete child relation."""
    if isinstance(expr, Select):
        return evaluate(Select(Literal(child), expr.predicate), _EMPTY_DB)
    if isinstance(expr, Project):
        return evaluate(Project(Literal(child), expr.columns), _EMPTY_DB)
    if isinstance(expr, Rename):
        return evaluate(Rename(Literal(child), expr.mapping), _EMPTY_DB)
    if isinstance(expr, ExtendedProject):
        return evaluate(ExtendedProject(Literal(child), expr.outputs), _EMPTY_DB)
    raise AlgebraError(f"not a unary operator node: {expr!r}")


def _apply_binary(expr: Expression, left: Relation, right: Relation) -> Relation:
    """Apply a binary operator node to concrete child relations."""
    if isinstance(expr, Union):
        return left.union(right)
    if isinstance(expr, Difference):
        return left.difference(right)
    if isinstance(expr, Product):
        return evaluate(Product(Literal(left), Literal(right)), _EMPTY_DB)
    if isinstance(expr, NaturalJoin):
        return evaluate(NaturalJoin(Literal(left), Literal(right)), _EMPTY_DB)
    raise AlgebraError(f"not a binary operator node: {expr!r}")


def enumerate_worlds(
    expr: Expression, db: Database, tracer: Any = None
) -> Distribution[Relation]:
    """The exact distribution over result relations of ``expr`` on ``db``.

    Deterministic sub-expressions are evaluated once; every
    ``repair-key`` node branches into its possible repairs; results of
    independent subtrees combine by product.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`, optional) receives
    one bounded ``repair-key`` event per firing — key columns, input
    rows, and branching factor — the step-level view of where the
    exponential world count comes from.

    Examples
    --------
    >>> from repro.relational.algebra import rel, repair_key, project
    >>> db = Database({"E": Relation(("I", "J", "P"),
    ...                              [("a", "b", 1), ("a", "c", 1)])})
    >>> worlds = enumerate_worlds(project(repair_key(rel("E"), ("I",), "P"), "J"), db)
    >>> len(worlds)
    2
    """
    if expr.is_deterministic():
        return Distribution.point(evaluate(expr, db))
    if isinstance(expr, RepairKey):
        child = enumerate_worlds(expr.child, db, tracer=tracer)

        def repairs(relation: Relation) -> Distribution[Relation]:
            distribution = repair_distribution(relation, expr.key, expr.weight)
            if tracer is not None and tracer.enabled:
                tracer.event(
                    "repair-key",
                    mode="enumerate",
                    key=list(expr.key),
                    input_rows=len(relation),
                    repairs=len(distribution),
                )
            return distribution

        return child.bind(repairs)
    if isinstance(expr, (Select, Project, Rename, ExtendedProject)):
        child = enumerate_worlds(expr.child, db, tracer=tracer)
        return child.map(lambda relation: _apply_unary(expr, relation))
    if isinstance(expr, (Union, Difference, Product, NaturalJoin)):
        left = enumerate_worlds(expr.left, db, tracer=tracer)
        right = enumerate_worlds(expr.right, db, tracer=tracer)
        return left.product(right).map(
            lambda pair: _apply_binary(expr, pair[0], pair[1])
        )
    raise AlgebraError(f"cannot enumerate worlds of {expr!r}")


def sample_world(
    expr: Expression, db: Database, rng: random.Random, tracer: Any = None
) -> Relation:
    """Draw one possible result of ``expr`` on ``db`` (polynomial time).

    The draw is faithful to :func:`enumerate_worlds`: sampling the
    expression tree bottom-up with independent repair-key draws realises
    exactly the enumerated distribution.  ``tracer`` receives one
    bounded ``repair-key`` event per firing, as in
    :func:`enumerate_worlds` (``mode="sample"``).
    """
    if expr.is_deterministic():
        return evaluate(expr, db)
    if isinstance(expr, RepairKey):
        child = sample_world(expr.child, db, rng, tracer=tracer)
        if tracer is not None and tracer.enabled:
            tracer.event(
                "repair-key",
                mode="sample",
                key=list(expr.key),
                input_rows=len(child),
            )
        return sample_repair(child, rng, expr.key, expr.weight)
    if isinstance(expr, (Select, Project, Rename, ExtendedProject)):
        return _apply_unary(expr, sample_world(expr.child, db, rng, tracer=tracer))
    if isinstance(expr, (Union, Difference, Product, NaturalJoin)):
        left = sample_world(expr.left, db, rng, tracer=tracer)
        right = sample_world(expr.right, db, rng, tracer=tracer)
        return _apply_binary(expr, left, right)
    raise AlgebraError(f"cannot sample a world of {expr!r}")


def count_repair_keys(expr: Expression) -> int:
    """Number of repair-key nodes in the expression (a cheap proxy for
    how many independent probabilistic choices one evaluation makes)."""
    own = 1 if isinstance(expr, RepairKey) else 0
    return own + sum(count_repair_keys(child) for child in expr.children())
