"""Immutable relations: the basic value type of the relational substrate.

A :class:`Relation` is a set of rows under a tuple of named columns.
Relations are immutable and hashable, which is essential for this
library: a whole database snapshot is used as the *state* of a Markov
chain over database instances (Section 3.1 of the paper), so states must
be usable as dictionary keys.

Rows are plain Python tuples of hashable scalar values (strings,
integers, ``Fraction``, floats...).  Column names are strings.  Duplicate
rows are impossible by construction (set semantics), matching the
relational model used by the paper.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError

Row = tuple[Any, ...]


def _check_columns(columns: Sequence[str]) -> tuple[str, ...]:
    """Validate and normalise a column-name sequence."""
    cols = tuple(columns)
    for name in cols:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"column names must be non-empty strings, got {name!r}")
    if len(set(cols)) != len(cols):
        raise SchemaError(f"duplicate column names in {cols!r}")
    return cols


class Relation:
    """An immutable named-column relation (a set of same-arity rows).

    Parameters
    ----------
    columns:
        Ordered column names; must be unique, non-empty strings.
    rows:
        Iterable of tuples, each with the same arity as ``columns``.

    Examples
    --------
    >>> edges = Relation(("I", "J", "P"), [("a", "b", 0.5), ("a", "c", 0.5)])
    >>> len(edges)
    2
    >>> ("a", "b", 0.5) in edges
    True
    """

    __slots__ = ("_columns", "_rows", "_hash")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()):
        self._columns = _check_columns(columns)
        normalised = set()
        arity = len(self._columns)
        for row in rows:
            tup = tuple(row)
            if len(tup) != arity:
                raise SchemaError(
                    f"row {tup!r} has arity {len(tup)}, expected {arity} "
                    f"for columns {self._columns!r}"
                )
            normalised.add(tup)
        self._rows: frozenset[Row] = frozenset(normalised)
        self._hash = hash((self._columns, self._rows))

    # -- basic protocol ------------------------------------------------

    @property
    def columns(self) -> tuple[str, ...]:
        """The ordered column names."""
        return self._columns

    @property
    def rows(self) -> frozenset[Row]:
        """The rows as a frozenset of tuples."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._columns == other._columns and self._rows == other._rows

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        shown = sorted(self._rows, key=repr)[:6]
        suffix = ", ..." if len(self._rows) > 6 else ""
        return f"Relation({self._columns!r}, {shown!r}{suffix})"

    # -- convenience constructors --------------------------------------

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        """An empty relation with the given columns."""
        return cls(columns, ())

    @classmethod
    def singleton(cls, columns: Sequence[str], row: Sequence[Any]) -> "Relation":
        """A relation holding exactly one row."""
        return cls(columns, (row,))

    @classmethod
    def from_dicts(
        cls, columns: Sequence[str], dicts: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from mappings of column name to value."""
        cols = _check_columns(columns)
        rows = []
        for record in dicts:
            try:
                rows.append(tuple(record[c] for c in cols))
            except KeyError as exc:
                raise SchemaError(f"record {record!r} is missing column {exc}") from exc
        return cls(cols, rows)

    # -- row access helpers ---------------------------------------------

    def column_index(self, name: str) -> int:
        """Position of column ``name`` (raises :class:`SchemaError` if absent)."""
        try:
            return self._columns.index(name)
        except ValueError:
            raise SchemaError(
                f"no column {name!r} in relation with columns {self._columns!r}"
            ) from None

    def column_values(self, name: str) -> set[Any]:
        """The set of values appearing in column ``name``."""
        idx = self.column_index(name)
        return {row[idx] for row in self._rows}

    def row_as_dict(self, row: Row) -> dict[str, Any]:
        """View a row as a column-name → value mapping."""
        return dict(zip(self._columns, row))

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (useful for reproducible output)."""
        return sorted(self._rows, key=repr)

    # -- set-style operations (schema-checked) ---------------------------

    def _require_same_columns(self, other: "Relation", op: str) -> None:
        if self._columns != other._columns:
            raise SchemaError(
                f"{op} requires identical columns: "
                f"{self._columns!r} vs {other._columns!r}"
            )

    def union(self, other: "Relation") -> "Relation":
        """Set union; both relations must have identical columns."""
        self._require_same_columns(other, "union")
        return Relation(self._columns, self._rows | other._rows)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; both relations must have identical columns."""
        self._require_same_columns(other, "difference")
        return Relation(self._columns, self._rows - other._rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; both relations must have identical columns."""
        self._require_same_columns(other, "intersection")
        return Relation(self._columns, self._rows & other._rows)

    def issubset(self, other: "Relation") -> bool:
        """True when every row of ``self`` appears in ``other``."""
        self._require_same_columns(other, "issubset")
        return self._rows <= other._rows

    def with_rows(self, rows: Iterable[Sequence[Any]]) -> "Relation":
        """A new relation with the same columns and additional rows."""
        extra = Relation(self._columns, rows)
        return self.union(extra)

    def active_domain(self) -> set[Any]:
        """All values occurring anywhere in the relation."""
        return {value for row in self._rows for value in row}
