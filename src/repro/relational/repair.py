"""Possible-worlds semantics of the ``repair-key`` operator.

``repair-key_{Ā@P}(R)`` samples one *maximal repair* of the key Ā: for
each distinct key value ā occurring in R, exactly one row of its group
T_ā is chosen, with probability proportional to the row's value in the
weight column P (Section 2.2 of the paper).  Groups are independent, so
a possible world is one choice per group and its probability is the
product of per-group choice probabilities.

Two public entry points:

* :func:`repair_distribution` — enumerate the full set of possible
  worlds as an exact :class:`~repro.probability.distribution.Distribution`
  over :class:`~repro.relational.relation.Relation` values;
* :func:`sample_repair` — draw a single world without enumeration
  (probability-proportional sampling per group), which is what the
  polynomial-time sampling evaluators of Theorems 4.3 and 5.6 rely on.

Footnote 1 of the paper is honoured: rows that agree on all non-weight
columns are first merged by summing their weights, restoring the
functional dependency ``schema(R) − P → P``.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Sequence

from repro.errors import ProbabilityError
from repro.probability.distribution import Distribution, as_fraction, product_distribution
from repro.relational.ordering import row_key, sort_rows
from repro.relational.relation import Relation, Row


def _weight_of(row: Row, weight_index: int | None) -> Fraction:
    """Extract and validate one row's weight (1 when weighting is uniform)."""
    if weight_index is None:
        return Fraction(1)
    weight = as_fraction(row[weight_index])
    if weight <= 0:
        raise ProbabilityError(
            f"repair-key weight column must contain positive values, "
            f"got {row[weight_index]!r} in row {row!r}"
        )
    return weight


def _merge_duplicate_weight_rows(relation: Relation, weight: str | None) -> Relation:
    """Footnote 1: merge rows equal on all non-weight columns, summing P."""
    if weight is None:
        return relation
    widx = relation.column_index(weight)
    merged: dict[tuple, Fraction] = {}
    for row in sort_rows(relation):
        key = row[:widx] + row[widx + 1 :]
        merged[key] = merged.get(key, Fraction(0)) + _weight_of(row, widx)
    rows = [key[:widx] + (value,) + key[widx:] for key, value in merged.items()]
    return Relation(relation.columns, rows)


def _groups(relation: Relation, key: Sequence[str]) -> dict[tuple, list[Row]]:
    """Group rows by their key-column values (one group when key is empty).

    Rows are visited in canonical order (never raw frozenset order, which
    is hash-seed dependent), so each group's row list — and therefore the
    RNG stream of :func:`sample_repair` and the insertion order of
    :func:`repair_distribution` — is identical across interpreter
    invocations.
    """
    indices = [relation.column_index(c) for c in key]
    grouped: dict[tuple, list[Row]] = {}
    for row in sort_rows(relation):
        grouped.setdefault(tuple(row[i] for i in indices), []).append(row)
    return grouped


def repair_distribution(
    relation: Relation, key: Sequence[str] = (), weight: str | None = None
) -> Distribution[Relation]:
    """All possible worlds of ``repair-key_{key@weight}(relation)``.

    The output schema equals the input schema.  An empty input yields
    the empty relation with probability 1 (there are no key groups to
    repair), which is what makes fixpoints of inflationary queries such
    as Example 3.5 well defined.

    Examples
    --------
    >>> players = Relation(("Player", "Team", "Belief"),
    ...                    [("Bryant", "LA Lakers", 17), ("Bryant", "NY Knicks", 3)])
    >>> worlds = repair_distribution(players, key=("Player",), weight="Belief")
    >>> sorted(float(p) for p in worlds.as_floats().values())
    [0.15, 0.85]
    """
    relation = _merge_duplicate_weight_rows(relation, weight)
    grouped = _groups(relation, key)
    if not grouped:
        return Distribution.point(Relation.empty(relation.columns))
    widx = relation.column_index(weight) if weight is not None else None
    per_group: list[Distribution[Row]] = []
    for key_value in sorted(grouped, key=row_key):
        rows = grouped[key_value]
        per_group.append(Distribution({row: _weight_of(row, widx) for row in rows}))
    joint = product_distribution(per_group)
    columns = relation.columns
    return joint.map(lambda chosen: Relation(columns, chosen))


def sample_repair(
    relation: Relation,
    rng: random.Random,
    key: Sequence[str] = (),
    weight: str | None = None,
) -> Relation:
    """Draw one possible world of ``repair-key`` without enumerating.

    Runs in time linear in the relation size; this is the sampling
    primitive behind the Theorem 4.3 and Theorem 5.6 evaluators.

    RNG-stream contract: groups are visited in canonical key order and
    rows within a group in canonical row order; a uniform group consumes
    one ``randrange``, a weighted group one ``random()`` compared
    against a sequential float accumulation.  The columnar kernel's
    vectorized repair step replicates this stream bit-for-bit, which is
    what makes the two backends checksum-equal under a fixed seed.
    """
    relation = _merge_duplicate_weight_rows(relation, weight)
    grouped = _groups(relation, key)
    widx = relation.column_index(weight) if weight is not None else None
    chosen: list[Row] = []
    for key_value in sorted(grouped, key=row_key):
        rows = grouped[key_value]
        if widx is None:
            chosen.append(rows[rng.randrange(len(rows))])
        else:
            weights = [float(_weight_of(row, widx)) for row in rows]
            total = sum(weights)
            pick = rng.random() * total
            acc = 0.0
            selected = rows[-1]
            for row, w in zip(rows, weights):
                acc += w
                if pick < acc:
                    selected = row
                    break
            chosen.append(selected)
    return Relation(relation.columns, chosen)


def world_probability(
    relation: Relation,
    world: Relation,
    key: Sequence[str] = (),
    weight: str | None = None,
) -> Fraction:
    """Exact probability that ``repair-key`` produces ``world``.

    Zero when ``world`` is not a maximal repair of ``relation``.
    Useful for spot-checking samplers against enumeration.
    """
    relation = _merge_duplicate_weight_rows(relation, weight)
    grouped = _groups(relation, key)
    widx = relation.column_index(weight) if weight is not None else None
    world_groups = _groups(world, key)
    if set(world_groups) != set(grouped):
        return Fraction(0)
    probability = Fraction(1)
    for key_value, rows in grouped.items():
        chosen_rows = world_groups[key_value]
        if len(chosen_rows) != 1 or chosen_rows[0] not in rows:
            return Fraction(0)
        total = sum(_weight_of(row, widx) for row in rows)
        probability *= _weight_of(chosen_rows[0], widx) / total
    return probability
