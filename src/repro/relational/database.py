"""Immutable database snapshots.

A :class:`Database` maps relation names to :class:`~repro.relational.relation.Relation`
values.  Databases are immutable and hashable so that each snapshot can
serve as one *state* of the Markov chain over database instances induced
by a non-inflationary query (Section 3.1 of the paper).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation


class Database:
    """An immutable mapping from relation names to relations.

    Examples
    --------
    >>> db = Database({"C": Relation(("I",), [("a",)])})
    >>> db["C"].arity
    1
    >>> db.with_relation("C", Relation(("I",), []))["C"].rows
    frozenset()
    """

    __slots__ = ("_relations", "_hash")

    def __init__(self, relations: Mapping[str, Relation]):
        for name, rel in relations.items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"relation names must be non-empty strings: {name!r}")
            if not isinstance(rel, Relation):
                raise SchemaError(f"value for {name!r} is not a Relation: {rel!r}")
        self._relations: dict[str, Relation] = dict(relations)
        # Computed lazily on first __hash__: evaluators build many
        # throwaway intermediates (with_relation chains inside exact
        # transition enumeration) that are never used as dict keys.
        self._hash: int | None = None

    # -- mapping protocol -------------------------------------------------

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"no relation {name!r}; database has {sorted(self._relations)!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._relations))

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """Sorted relation names."""
        return sorted(self._relations)

    def relations(self) -> dict[str, Relation]:
        """A fresh name → relation dict (mutating it does not affect ``self``)."""
        return dict(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash(frozenset(self._relations.items()))
        return value

    def __repr__(self) -> str:
        parts = ", ".join(f"{n}[{len(r)}]" for n, r in sorted(self._relations.items()))
        return f"Database({parts})"

    # -- functional updates ------------------------------------------------

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A new database with ``name`` bound to ``relation``."""
        updated = dict(self._relations)
        updated[name] = relation
        return Database(updated)

    def with_relations(self, updates: Mapping[str, Relation]) -> "Database":
        """A new database with several relations replaced at once."""
        updated = dict(self._relations)
        updated.update(updates)
        return Database(updated)

    def restrict(self, names: Iterable[str]) -> "Database":
        """A new database containing only the named relations."""
        return Database({name: self[name] for name in names})

    # -- schema and domain --------------------------------------------------

    def schema(self) -> dict[str, tuple[str, ...]]:
        """Mapping of relation name to its column tuple."""
        return {name: rel.columns for name, rel in self._relations.items()}

    def active_domain(self) -> set[Any]:
        """All values occurring in any relation of the database."""
        domain: set[Any] = set()
        for rel in self._relations.values():
            domain |= rel.active_domain()
        return domain

    def total_rows(self) -> int:
        """Total number of rows over all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def contains_database(self, other: "Database") -> bool:
        """True when ``self`` is a superset of ``other`` relation-by-relation.

        Used to check the inflationarity condition of Definition 3.4
        (every possible world B of Q(A) must satisfy B ⊇ A).
        """
        for name, rel in other._relations.items():
            if name not in self._relations:
                return False
            mine = self._relations[name]
            if mine.columns != rel.columns or not rel.issubset(mine):
                return False
        return True


def database_from_rows(
    spec: Mapping[str, tuple[Sequence[str], Iterable[Sequence[Any]]]],
) -> Database:
    """Convenience constructor from ``{name: (columns, rows)}``.

    Examples
    --------
    >>> db = database_from_rows({"E": (("I", "J"), [("a", "b")])})
    >>> len(db["E"])
    1
    """
    return Database({name: Relation(cols, rows) for name, (cols, rows) in spec.items()})
