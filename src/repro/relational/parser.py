"""Text syntax for relational algebra with ``repair-key``.

Lets transition kernels be written the way the paper writes them.  The
Example 3.3 random-walk kernel, for instance::

    C := rename[J->I](project[J](repair-key[I@P](C join E)))
    E := E    % unchanged

Grammar (whitespace-insensitive; ``%`` comments to end of line)::

    interpretation := (NAME ":=" expr)+
    expr   := term (("union" | "∪" | "minus" | "−") term)*
    term   := factor (("join" | "⋈" | "times" | "×") factor)*
    factor := NAME                                   -- relation reference
            | "(" expr ")"
            | "project"    "[" names "]"       "(" expr ")"
            | "select"     "[" predicate "]"   "(" expr ")"
            | "rename"     "[" renames "]"     "(" expr ")"
            | "repair-key" "[" keyspec "]"     "(" expr ")"
            | "literal"    "[" names "]" "{" rows "}"
    keyspec   := names? ("@" NAME)?               -- key columns and weight
    renames   := NAME "->" NAME ("," NAME "->" NAME)*
    predicate := comparison ("," comparison)*     -- comma = conjunction
    comparison:= NAME ("=" | "!=") (NAME | constant)
    rows      := "(" constants ")" ("," "(" constants ")")*
    constant  := signed number ("/" number)? | 'quoted string' | bareword

``union`` / ``minus`` associate left with equal precedence; ``join`` /
``times`` bind tighter.  In comparisons an uppercase-or-known-column
right-hand side is a column reference when it names an input column;
quote it to force a string constant.  Numbers parse exactly
(``1/2`` → ``Fraction(1, 2)``, ``0.5`` → ``Fraction(1, 2)``).
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, NamedTuple

from repro.errors import AlgebraError, describe_position, position_details
from repro.relational.algebra import (
    Difference,
    Expression,
    Literal,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    RepairKey,
    Select,
    Union,
)
from repro.relational.predicates import (
    ColumnEq,
    Predicate,
    TruePredicate,
    ValueEq,
    ValueNe,
)
from repro.relational.relation import Relation


class AlgebraParseError(AlgebraError):
    """The algebra text parser rejected its input."""


_TOKEN_SPEC = [
    ("COMMENT", r"%[^\n]*"),
    ("WS", r"\s+"),
    ("ASSIGN", r":="),
    ("ARROW", r"->|→"),
    ("NEQ", r"!=|≠"),
    ("NUMBER", r"[+-]?\d+(?:\.\d+|/\d+)?"),
    ("STRING", r"'(?:[^'\\]|\\.)*'"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*(?:-[A-Za-z]+)?"),
    ("UNION_SYM", r"∪"),
    ("MINUS_SYM", r"−"),
    ("JOIN_SYM", r"⋈"),
    ("TIMES_SYM", r"×"),
    ("AT", r"@"),
    ("LBRACKET", r"\["),
    ("RBRACKET", r"\]"),
    ("LBRACE", r"\{"),
    ("RBRACE", r"\}"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("EQ", r"="),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

#: Word operators recognised at NAME positions.
_UNION_WORDS = {"union"}
_MINUS_WORDS = {"minus"}
_JOIN_WORDS = {"join"}
_TIMES_WORDS = {"times"}
_KEYWORDS = (
    _UNION_WORDS | _MINUS_WORDS | _JOIN_WORDS | _TIMES_WORDS
    | {"project", "select", "rename", "repair-key", "literal"}
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise AlgebraParseError(
                f"unexpected character {source[position]!r} at "
                f"{describe_position(source, position)}",
                details=position_details(source, position),
            )
        kind = match.lastgroup or ""
        if kind not in ("WS", "COMMENT"):
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


def _parse_constant(text: str) -> Any:
    if text.startswith("'"):
        return re.sub(r"\\(.)", r"\1", text[1:-1])
    if "/" in text:
        return Fraction(text)
    if "." in text:
        return Fraction(text)
    return int(text)


class _Parser:
    def __init__(self, tokens: list[_Token], source: str = ""):
        self._tokens = tokens
        self._source = source
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _fail(self, message: str, position: int | None = None) -> AlgebraParseError:
        if position is None:
            return AlgebraParseError(message)
        return AlgebraParseError(
            f"{message} at {describe_position(self._source, position)}",
            details=position_details(self._source, position),
        )

    def _peek(self) -> _Token | None:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self, expected: str | None = None) -> _Token:
        token = self._peek()
        if token is None:
            raise self._fail(
                f"unexpected end of input (expected {expected or 'more tokens'})",
                len(self._source) if self._source else None,
            )
        if expected is not None and token.kind != expected:
            raise self._fail(
                f"expected {expected} but found {token.text!r}", token.position
            )
        self._pos += 1
        return token

    def _constant(self, token: _Token) -> Any:
        """Parse a constant token, turning ``ValueError`` and the
        ``1/0``-style ``ZeroDivisionError`` into positioned parse errors
        instead of leaking raw built-in exceptions."""
        try:
            return _parse_constant(token.text)
        except (ValueError, ZeroDivisionError) as error:
            raise self._fail(
                f"invalid literal {token.text!r}: {error}", token.position
            ) from error

    def _at_word(self, words: set[str]) -> bool:
        token = self._peek()
        return token is not None and token.kind == "NAME" and token.text in words

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar ---------------------------------------------------------------

    def parse_expression(self) -> Expression:
        left = self._parse_term()
        while True:
            token = self._peek()
            if token is None:
                return left
            if token.kind == "UNION_SYM" or self._at_word(_UNION_WORDS):
                self._next()
                left = Union(left, self._parse_term())
            elif token.kind == "MINUS_SYM" or self._at_word(_MINUS_WORDS):
                self._next()
                left = Difference(left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            token = self._peek()
            if token is None:
                return left
            if token.kind == "JOIN_SYM" or self._at_word(_JOIN_WORDS):
                self._next()
                left = NaturalJoin(left, self._parse_factor())
            elif token.kind == "TIMES_SYM" or self._at_word(_TIMES_WORDS):
                self._next()
                left = Product(left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token is None:
            raise AlgebraParseError("unexpected end of input in expression")
        if token.kind == "LPAREN":
            self._next("LPAREN")
            inner = self.parse_expression()
            self._next("RPAREN")
            return inner
        if token.kind != "NAME":
            raise AlgebraParseError(
                f"unexpected token {token.text!r} at offset {token.position}"
            )
        name = self._next("NAME").text
        if name == "project":
            columns = self._bracketed_names()
            return Project(self._parenthesised(), columns)
        if name == "select":
            predicate = self._bracketed_predicate()
            return Select(self._parenthesised(), predicate)
        if name == "rename":
            mapping = self._bracketed_renames()
            return Rename(self._parenthesised(), mapping)
        if name == "repair-key":
            key, weight = self._bracketed_keyspec()
            return RepairKey(self._parenthesised(), key=key, weight=weight)
        if name == "literal":
            columns = self._bracketed_names()
            rows = self._braced_rows(len(columns))
            return Literal(Relation(columns, rows))
        if name in _KEYWORDS:
            raise AlgebraParseError(
                f"keyword {name!r} in relation position at offset {token.position}"
            )
        return RelationRef(name)

    # -- bracketed argument forms ---------------------------------------------------

    def _parenthesised(self) -> Expression:
        self._next("LPAREN")
        inner = self.parse_expression()
        self._next("RPAREN")
        return inner

    def _names_until(self, closing: str) -> tuple[str, ...]:
        names: list[str] = []
        token = self._peek()
        while token is not None and token.kind == "NAME":
            names.append(self._next("NAME").text)
            token = self._peek()
            if token is not None and token.kind == "COMMA":
                self._next("COMMA")
                token = self._peek()
            else:
                break
        return tuple(names)

    def _bracketed_names(self) -> tuple[str, ...]:
        self._next("LBRACKET")
        names = self._names_until("RBRACKET")
        self._next("RBRACKET")
        return names

    def _bracketed_renames(self) -> dict[str, str]:
        self._next("LBRACKET")
        mapping: dict[str, str] = {}
        while True:
            old = self._next("NAME").text
            self._next("ARROW")
            new = self._next("NAME").text
            if old in mapping:
                raise AlgebraParseError(f"column {old!r} renamed twice")
            mapping[old] = new
            token = self._peek()
            if token is not None and token.kind == "COMMA":
                self._next("COMMA")
                continue
            break
        self._next("RBRACKET")
        return mapping

    def _bracketed_keyspec(self) -> tuple[tuple[str, ...], str | None]:
        self._next("LBRACKET")
        key: list[str] = []
        weight: str | None = None
        token = self._peek()
        while token is not None and token.kind == "NAME":
            key.append(self._next("NAME").text)
            token = self._peek()
            if token is not None and token.kind == "COMMA":
                self._next("COMMA")
                token = self._peek()
            else:
                break
        token = self._peek()
        if token is not None and token.kind == "AT":
            self._next("AT")
            weight = self._next("NAME").text
        self._next("RBRACKET")
        return tuple(key), weight

    def _bracketed_predicate(self) -> Predicate:
        self._next("LBRACKET")
        predicate: Predicate = TruePredicate()
        first = True
        while True:
            token = self._peek()
            if token is not None and token.kind == "RBRACKET" and first:
                break
            comparison = self._parse_comparison()
            predicate = comparison if first else predicate & comparison
            first = False
            token = self._peek()
            if token is not None and token.kind == "COMMA":
                self._next("COMMA")
                continue
            break
        self._next("RBRACKET")
        return predicate

    def _parse_comparison(self) -> Predicate:
        column = self._next("NAME").text
        operator = self._peek()
        if operator is None or operator.kind not in ("EQ", "NEQ"):
            raise AlgebraParseError(
                f"expected = or != after column {column!r}"
            )
        self._next(operator.kind)
        value_token = self._peek()
        if value_token is None:
            raise AlgebraParseError("unexpected end of input in comparison")
        if value_token.kind == "NAME":
            other = self._next("NAME").text
            if operator.kind == "NEQ":
                raise AlgebraParseError(
                    "column-to-column comparisons support = only; "
                    f"quote {other!r} for a string constant"
                )
            return ColumnEq(column, other)
        if value_token.kind in ("NUMBER", "STRING"):
            self._next(value_token.kind)
            value = self._constant(value_token)
            if operator.kind == "EQ":
                return ValueEq(column, value)
            return ValueNe(column, value)
        raise AlgebraParseError(
            f"unexpected token {value_token.text!r} in comparison"
        )

    def _braced_rows(self, arity: int) -> list[tuple]:
        self._next("LBRACE")
        rows: list[tuple] = []
        token = self._peek()
        while token is not None and token.kind == "LPAREN":
            self._next("LPAREN")
            values: list[Any] = []
            while True:
                value_token = self._peek()
                if value_token is None:
                    raise AlgebraParseError("unexpected end of input in literal row")
                if value_token.kind in ("NUMBER", "STRING"):
                    self._next(value_token.kind)
                    values.append(self._constant(value_token))
                elif value_token.kind == "NAME":
                    values.append(self._next("NAME").text)
                else:
                    break
                token = self._peek()
                if token is not None and token.kind == "COMMA":
                    self._next("COMMA")
                    continue
                break
            self._next("RPAREN")
            if len(values) != arity:
                raise AlgebraParseError(
                    f"literal row has {len(values)} values, expected {arity}"
                )
            rows.append(tuple(values))
            token = self._peek()
            if token is not None and token.kind == "COMMA":
                self._next("COMMA")
                token = self._peek()
            else:
                break
        self._next("RBRACE")
        return rows


def parse_expression(source: str) -> Expression:
    """Parse one algebra expression from text.

    Examples
    --------
    >>> expr = parse_expression("rename[J->I](project[J](repair-key[I@P](C join E)))")
    >>> expr.is_deterministic()
    False
    """
    parser = _Parser(_tokenize(source), source)
    expression = parser.parse_expression()
    if not parser.at_end():
        token = parser._peek()
        raise parser._fail(
            "trailing input after the expression",
            token.position if token else None,
        )
    return expression


def parse_interpretation(source: str):
    """Parse a whole transition kernel: ``NAME := expr`` lines.

    Returns a :class:`repro.core.interpretation.Interpretation`.  An
    identity line (``E := E``) may simply be omitted — unlisted
    relations stay unchanged — but is accepted for fidelity to the
    paper's notation.

    Examples
    --------
    >>> kernel = parse_interpretation('''
    ...     C := rename[J->I](project[J](repair-key[I@P](C join E)))
    ...     E := E   % unchanged
    ... ''')
    >>> sorted(kernel.queries)
    ['C', 'E']
    """
    from repro.core.interpretation import Interpretation

    parser = _Parser(_tokenize(source), source)
    queries: dict[str, Expression] = {}
    spans: dict[str, tuple[int, int]] = {}
    while not parser.at_end():
        name_token = parser._next("NAME")
        name = name_token.text
        if name in _KEYWORDS:
            raise parser._fail(
                f"keyword {name!r} cannot name a relation", name_token.position
            )
        parser._next("ASSIGN")
        expression = parser.parse_expression()
        if name in queries:
            raise parser._fail(
                f"relation {name!r} assigned twice", name_token.position
            )
        queries[name] = expression
        last = parser._tokens[parser._pos - 1]
        spans[name] = (name_token.position, last.position + len(last.text))
    if not queries:
        raise AlgebraParseError("empty interpretation")
    kernel = Interpretation(queries)
    kernel.source_spans = spans
    return kernel
