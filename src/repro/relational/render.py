"""Rendering algebra expressions back to the textual syntax.

The inverse of :mod:`repro.relational.parser`: for any expression built
from the parseable constructs,
``parse_expression(render_expression(e))`` reconstructs a structurally
identical tree (verified by property tests).  Useful for debugging,
logging, and persisting kernels built through the Python API.

:class:`~repro.relational.algebra.ExtendedProject` and predicates
outside the comparison fragment (e.g. :class:`RowPredicate`) have no
textual form; rendering them raises :class:`AlgebraError`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.errors import AlgebraError
from repro.relational.algebra import (
    Difference,
    Expression,
    Literal,
    NaturalJoin,
    Product,
    Project,
    RelationRef,
    Rename,
    RepairKey,
    Select,
    Union,
)
from repro.relational.predicates import (
    AndPredicate,
    ColumnEq,
    Predicate,
    TruePredicate,
    ValueEq,
    ValueNe,
)

#: Binary operators and their textual keywords, by precedence tier.
_ADDITIVE = {Union: "union", Difference: "minus"}
_MULTIPLICATIVE = {NaturalJoin: "join", Product: "times"}


def _render_constant(value: Any) -> str:
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise AlgebraError(f"cannot render constant {value!r} in algebra syntax")


def _render_comparisons(predicate: Predicate) -> list[str]:
    if isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, AndPredicate):
        return _render_comparisons(predicate.left) + _render_comparisons(
            predicate.right
        )
    if isinstance(predicate, ValueEq):
        return [f"{predicate.column}={_render_constant(predicate.value)}"]
    if isinstance(predicate, ValueNe):
        return [f"{predicate.column}!={_render_constant(predicate.value)}"]
    if isinstance(predicate, ColumnEq):
        return [f"{predicate.left}={predicate.right}"]
    raise AlgebraError(
        f"predicate {predicate!r} has no textual form (only conjunctions of "
        "comparisons render)"
    )


def render_expression(expr: Expression) -> str:
    """Render an expression in the parser's grammar.

    Examples
    --------
    >>> from repro.relational import parse_expression
    >>> text = "rename[J->I](project[J](repair-key[I@P](C join E)))"
    >>> render_expression(parse_expression(text)) == text
    True
    """
    return _render(expr, parent_tier=0)


def _render(expr: Expression, parent_tier: int) -> str:
    # tiers: 0 = additive context, 1 = multiplicative, 2 = atom
    if type(expr) in _ADDITIVE:
        word = _ADDITIVE[type(expr)]
        text = f"{_render(expr.left, 0)} {word} {_render(expr.right, 1)}"
        return f"({text})" if parent_tier > 0 else text
    if type(expr) in _MULTIPLICATIVE:
        word = _MULTIPLICATIVE[type(expr)]
        text = f"{_render(expr.left, 1)} {word} {_render(expr.right, 2)}"
        return f"({text})" if parent_tier > 1 else text

    if isinstance(expr, RelationRef):
        return expr.name
    if isinstance(expr, Project):
        return f"project[{', '.join(expr.columns)}]({_render(expr.child, 0)})"
    if isinstance(expr, Rename):
        pairs = ", ".join(f"{old}->{new}" for old, new in expr.mapping.items())
        return f"rename[{pairs}]({_render(expr.child, 0)})"
    if isinstance(expr, Select):
        comparisons = ", ".join(_render_comparisons(expr.predicate))
        return f"select[{comparisons}]({_render(expr.child, 0)})"
    if isinstance(expr, RepairKey):
        inner = ", ".join(expr.key)
        if expr.weight is not None:
            inner += f"@{expr.weight}"
        return f"repair-key[{inner}]({_render(expr.child, 0)})"
    if isinstance(expr, Literal):
        relation = expr.relation
        rows = ", ".join(
            "(" + ", ".join(_render_constant(v) for v in row) + ")"
            for row in relation.sorted_rows()
        )
        return f"literal[{', '.join(relation.columns)}]{{{rows}}}"
    raise AlgebraError(f"expression {expr!r} has no textual form")


def render_interpretation(kernel) -> str:
    """Render a whole kernel as ``Name := expression`` lines
    (pc-tables, having no algebraic form, are rejected)."""
    if getattr(kernel, "pc_tables", None) is not None:
        raise AlgebraError(
            "kernels with attached pc-tables have no pure algebra rendering"
        )
    lines = [
        f"{name} := {render_expression(expression)}"
        for name, expression in sorted(kernel.queries.items())
    ]
    return "\n".join(lines)
