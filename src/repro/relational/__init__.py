"""Relational substrate: relations, databases, algebra, repair-key.

This package implements the data model of the paper (Section 2.2):
immutable relations and database snapshots, classical relational algebra,
the ``repair-key`` probabilistic operator, and both deterministic and
probabilistic (possible-worlds / sampling) evaluation.
"""

from repro.relational.algebra import (
    Difference,
    Expression,
    ExtendedProject,
    Literal,
    NaturalJoin,
    Product,
    Project,
    Rename,
    RelationRef,
    RepairKey,
    Select,
    Union,
    difference,
    evaluate,
    extended_project,
    join,
    literal,
    product,
    project,
    rel,
    rename,
    repair_key,
    select,
    union,
    validate,
)
from repro.relational.database import Database, database_from_rows
from repro.relational.predicates import (
    AndPredicate,
    ColumnEq,
    NotPredicate,
    OrPredicate,
    Predicate,
    RowPredicate,
    TruePredicate,
    ValueEq,
    ValueNe,
)
from repro.relational.parser import (
    AlgebraParseError,
    parse_expression,
    parse_interpretation,
)
from repro.relational.prob_eval import count_repair_keys, enumerate_worlds, sample_world
from repro.relational.relation import Relation, Row
from repro.relational.render import render_expression, render_interpretation
from repro.relational.repair import (
    repair_distribution,
    sample_repair,
    world_probability,
)

__all__ = [
    "AlgebraParseError",
    "AndPredicate",
    "ColumnEq",
    "Database",
    "Difference",
    "Expression",
    "ExtendedProject",
    "Literal",
    "NaturalJoin",
    "NotPredicate",
    "OrPredicate",
    "Predicate",
    "Product",
    "Project",
    "Relation",
    "RelationRef",
    "Rename",
    "RepairKey",
    "Row",
    "RowPredicate",
    "Select",
    "TruePredicate",
    "Union",
    "ValueEq",
    "ValueNe",
    "count_repair_keys",
    "database_from_rows",
    "difference",
    "enumerate_worlds",
    "evaluate",
    "extended_project",
    "join",
    "literal",
    "parse_expression",
    "parse_interpretation",
    "product",
    "project",
    "rel",
    "rename",
    "render_expression",
    "render_interpretation",
    "repair_distribution",
    "repair_key",
    "sample_repair",
    "sample_world",
    "select",
    "union",
    "validate",
    "world_probability",
]
