"""A canonical total order on the scalar values stored in relations.

Rows are tuples of mixed scalar values — strings, ints, ``Fraction``,
floats, bools — and several hot paths need to iterate a *set* of rows in
a reproducible order: the repair-key sampler consumes RNG draws
group-by-group, the exact enumerator inserts worlds into distributions,
and the memoized transition rows keep a cumulative-weight index.  Python
cannot compare ``3`` with ``"a"`` directly, and sorting by ``repr`` puts
``10`` before ``2``; worse, iterating a ``frozenset`` directly is
hash-seed dependent, which made sampler tallies vary *across interpreter
invocations* unless ``PYTHONHASHSEED`` was pinned.

:func:`canonical_key` fixes one total preorder on scalar values that

* is independent of the hash seed and of insertion order;
* collapses numerically equal values (``3 == Fraction(3) == 3.0`` are
  one set element, so they must sort identically);
* agrees with the dense-ID order of the columnar kernel's
  :class:`~repro.kernel.symbols.SymbolTable`, so array-lexicographic
  iteration over interned rows visits them in exactly this order.

Values sort by type rank first — numbers, then strings, then tuples,
then everything else by ``repr`` — and within a rank by natural order.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

__all__ = ["canonical_key", "row_key", "sort_rows", "database_sort_key"]


def canonical_key(value: Any) -> tuple:
    """A sort key realising the canonical order; see the module docstring."""
    if isinstance(value, bool) or isinstance(value, (int, float, Fraction)):
        # One rank for all numerics: values that compare equal (and thus
        # collapse in a set) must map to the same key.  Fraction() is an
        # exact, total embedding of bool/int/float (floats are binary
        # rationals; inf/nan never occur as relation values in practice
        # and fall through to the repr rank below if they do).
        try:
            return (0, Fraction(value))
        except (ValueError, OverflowError):
            return (3, repr(value))
    if isinstance(value, str):
        return (1, value)
    if isinstance(value, tuple):
        return (2, tuple(canonical_key(item) for item in value))
    return (3, repr(value))


def row_key(row: tuple) -> tuple:
    """Canonical sort key of a whole row (element-wise)."""
    return tuple(canonical_key(value) for value in row)


def sort_rows(rows) -> list:
    """The rows of a set/iterable in canonical order."""
    return sorted(rows, key=row_key)


def database_sort_key(db) -> tuple:
    """Canonical sort key of a whole database snapshot.

    Used to order the outcome states of a memoized transition row so
    cumulative-weight indexes are identical across processes and across
    backends (the columnar kernel's states implement an order-isomorphic
    ``canonical_sort_key`` of their own).
    """
    key = getattr(db, "canonical_sort_key", None)
    if key is not None:
        return key()
    return tuple(
        (name, db[name].columns, tuple(sorted(row_key(row) for row in db[name].rows)))
        for name in db.names()
    )
