"""Relational algebra AST extended with ``repair-key``.

This module defines the expression language of the paper's probabilistic
first-order interpretations (Definition 3.1): classical relational
algebra — selection, projection, natural join, renaming, union,
difference, product, constant relations — extended with the
``repair-key`` operator of [Koch, SIGMOD Record 2008] (Section 2.2 of
the paper).

Expressions are plain object trees.  Deterministic evaluation lives in
:func:`evaluate`; probabilistic evaluation (expressions containing
``repair-key``) lives in :mod:`repro.relational.prob_eval`.

Schema inference is static: :meth:`Expression.output_columns` computes
the result column tuple from the input schema, raising
:class:`~repro.errors.AlgebraError` for ill-formed expressions without
touching any data.

Lower-case helper constructors (:func:`select`, :func:`project`, ...)
mirror the paper's algebra notation and are the recommended way to build
expressions.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import AlgebraError
from repro.relational.database import Database
from repro.relational.predicates import Predicate
from repro.relational.relation import Relation

Schema = Mapping[str, tuple[str, ...]]


class Expression:
    """Base class of algebra expressions."""

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        """Columns of the result, inferred from the input ``schema``."""
        raise NotImplementedError

    def children(self) -> tuple["Expression", ...]:
        """Direct sub-expressions."""
        raise NotImplementedError

    def is_deterministic(self) -> bool:
        """True when no ``repair-key`` occurs anywhere in the expression."""
        return all(child.is_deterministic() for child in self.children())

    def referenced_relations(self) -> frozenset[str]:
        """Names of database relations read by the expression."""
        out: frozenset[str] = frozenset()
        for child in self.children():
            out |= child.referenced_relations()
        return out


class RelationRef(Expression):
    """Reference to a named relation of the database."""

    def __init__(self, name: str):
        if not name:
            raise AlgebraError("relation reference needs a non-empty name")
        self.name = name

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        try:
            return tuple(schema[self.name])
        except KeyError:
            raise AlgebraError(f"expression references unknown relation {self.name!r}") from None

    def children(self) -> tuple[Expression, ...]:
        return ()

    def referenced_relations(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


class Literal(Expression):
    """A constant relation embedded in the expression.

    The paper writes these as e.g. ``ρ_P({1})`` — a literal singleton
    used to attach uniform weights or dampening factors.
    """

    def __init__(self, relation: Relation):
        self.relation = relation

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        return self.relation.columns

    def children(self) -> tuple[Expression, ...]:
        return ()

    def __repr__(self) -> str:
        return f"lit{self.relation.columns!r}"


class Select(Expression):
    """Selection σ_pred(child)."""

    def __init__(self, child: Expression, predicate: Predicate):
        self.child = child
        self.predicate = predicate

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        cols = self.child.output_columns(schema)
        missing = self.predicate.referenced_columns() - set(cols)
        if missing:
            raise AlgebraError(
                f"selection predicate references columns {sorted(missing)!r} "
                f"not in input columns {cols!r}"
            )
        return cols

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"σ[{self.predicate!r}]({self.child!r})"


class Project(Expression):
    """Projection π_columns(child); set semantics (duplicates collapse)."""

    def __init__(self, child: Expression, columns: Sequence[str]):
        self.child = child
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise AlgebraError(f"projection columns contain duplicates: {self.columns!r}")

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        cols = self.child.output_columns(schema)
        missing = set(self.columns) - set(cols)
        if missing:
            raise AlgebraError(
                f"projection on columns {sorted(missing)!r} absent from input {cols!r}"
            )
        return self.columns

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"π[{','.join(self.columns)}]({self.child!r})"


class Rename(Expression):
    """Renaming ρ_{old→new}(child)."""

    def __init__(self, child: Expression, mapping: Mapping[str, str]):
        self.child = child
        self.mapping = dict(mapping)

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        cols = self.child.output_columns(schema)
        missing = set(self.mapping) - set(cols)
        if missing:
            raise AlgebraError(
                f"rename of columns {sorted(missing)!r} absent from input {cols!r}"
            )
        renamed = tuple(self.mapping.get(c, c) for c in cols)
        if len(set(renamed)) != len(renamed):
            raise AlgebraError(f"rename produces duplicate columns: {renamed!r}")
        return renamed

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        pairs = ",".join(f"{k}→{v}" for k, v in self.mapping.items())
        return f"ρ[{pairs}]({self.child!r})"


class Union(Expression):
    """Set union; both inputs must have identical column tuples."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        lcols = self.left.output_columns(schema)
        rcols = self.right.output_columns(schema)
        if lcols != rcols:
            raise AlgebraError(f"union of incompatible schemas {lcols!r} vs {rcols!r}")
        return lcols

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


class Difference(Expression):
    """Set difference; both inputs must have identical column tuples."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        lcols = self.left.output_columns(schema)
        rcols = self.right.output_columns(schema)
        if lcols != rcols:
            raise AlgebraError(f"difference of incompatible schemas {lcols!r} vs {rcols!r}")
        return lcols

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


class Product(Expression):
    """Cartesian product; the inputs must have disjoint column names."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        lcols = self.left.output_columns(schema)
        rcols = self.right.output_columns(schema)
        clash = set(lcols) & set(rcols)
        if clash:
            raise AlgebraError(
                f"product inputs share columns {sorted(clash)!r}; rename first"
            )
        return lcols + rcols

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


class NaturalJoin(Expression):
    """Natural join ⋈ on all shared column names."""

    def __init__(self, left: Expression, right: Expression):
        self.left = left
        self.right = right

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        lcols = self.left.output_columns(schema)
        rcols = self.right.output_columns(schema)
        return lcols + tuple(c for c in rcols if c not in lcols)

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈ {self.right!r})"


class ExtendedProject(Expression):
    """Generalized projection: each output column is either a copy of an
    input column or a constant.

    Needed to instantiate datalog rule heads, which may repeat variables
    and contain constants (e.g. ``H(X, X, 'a') ← B(X)``) — plain
    projection cannot duplicate a column or inject a constant.

    ``outputs`` maps output column names (in order) to sources: either
    ``("col", input_column)`` or ``("const", value)``.
    """

    def __init__(
        self,
        child: Expression,
        outputs: Sequence[tuple[str, tuple[str, Any]]],
    ):
        self.child = child
        self.outputs = tuple((name, (kind, value)) for name, (kind, value) in outputs)
        names = [name for name, _source in self.outputs]
        if len(set(names)) != len(names):
            raise AlgebraError(f"extended projection has duplicate outputs: {names!r}")
        for name, (kind, _value) in self.outputs:
            if kind not in ("col", "const"):
                raise AlgebraError(
                    f"extended projection source for {name!r} must be "
                    f"('col', name) or ('const', value), got kind {kind!r}"
                )

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        cols = self.child.output_columns(schema)
        for name, (kind, value) in self.outputs:
            if kind == "col" and value not in cols:
                raise AlgebraError(
                    f"extended projection output {name!r} copies missing "
                    f"column {value!r} (input has {cols!r})"
                )
        return tuple(name for name, _source in self.outputs)

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}←{value!r}" if kind == "const" else f"{name}←{value}"
            for name, (kind, value) in self.outputs
        )
        return f"π̂[{parts}]({self.child!r})"


class RepairKey(Expression):
    """The ``repair-key_{Ā@P}`` operator (Section 2.2 of the paper).

    Groups the input rows by the key columns ``key``; in each group,
    exactly one row is chosen with probability proportional to its value
    in the ``weight`` column.  The set of possible results (one chosen
    row per group) forms the possible worlds, each weighted by the
    product of its per-group choice probabilities (groups are
    independent).

    ``weight=None`` is the paper's abbreviation ``repair-key_Ā(R)``:
    uniform choice within each group.  ``key=()`` is the abbreviation
    ``repair-key_{@P}(R)``: a single row is chosen from the whole input.
    The output schema equals the input schema (weight column included),
    exactly as in the paper's Examples 3.3 and 3.7 where a projection is
    applied afterwards.

    Per footnote 1 of the paper, rows that agree on every non-weight
    column are first merged by summing their weights.
    """

    def __init__(self, child: Expression, key: Sequence[str] = (), weight: str | None = None):
        self.child = child
        self.key = tuple(key)
        # The ``analysis_code`` detail lets the static analyzer surface
        # these construction-time rejections under their stable RK003
        # diagnostic code instead of a generic parse error.
        if len(set(self.key)) != len(self.key):
            raise AlgebraError(
                f"repair-key key columns contain duplicates: {self.key!r}",
                details={"analysis_code": "RK003"},
            )
        self.weight = weight
        if weight is not None and weight in self.key:
            raise AlgebraError(
                f"weight column {weight!r} cannot also be a key column",
                details={"analysis_code": "RK003"},
            )

    def output_columns(self, schema: Schema) -> tuple[str, ...]:
        cols = self.child.output_columns(schema)
        missing = set(self.key) - set(cols)
        if missing:
            raise AlgebraError(
                f"repair-key key columns {sorted(missing)!r} absent from input {cols!r}"
            )
        if self.weight is not None and self.weight not in cols:
            raise AlgebraError(
                f"repair-key weight column {self.weight!r} absent from input {cols!r}"
            )
        return cols

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def is_deterministic(self) -> bool:
        return False

    def __repr__(self) -> str:
        at = f"@{self.weight}" if self.weight else ""
        return f"repair-key[{','.join(self.key)}{at}]({self.child!r})"


# ---------------------------------------------------------------------------
# Helper constructors mirroring the paper's notation.
# ---------------------------------------------------------------------------


def rel(name: str) -> RelationRef:
    """Reference a named database relation."""
    return RelationRef(name)


def literal(columns: Sequence[str], rows: Iterable[Sequence[Any]]) -> Literal:
    """Embed a constant relation, e.g. ``literal(("P",), [(1,)])``."""
    return Literal(Relation(columns, rows))


def select(child: Expression, predicate: Predicate) -> Select:
    """Selection σ."""
    return Select(child, predicate)


def project(child: Expression, *columns: str) -> Project:
    """Projection π."""
    return Project(child, columns)


def rename(child: Expression, **mapping: str) -> Rename:
    """Renaming ρ; keyword arguments map old names to new names."""
    return Rename(child, mapping)


def extended_project(
    child: Expression, outputs: Sequence[tuple[str, tuple[str, Any]]]
) -> ExtendedProject:
    """Generalized projection; see :class:`ExtendedProject`."""
    return ExtendedProject(child, outputs)


def union(left: Expression, right: Expression, *rest: Expression) -> Expression:
    """Union of two or more expressions."""
    out: Expression = Union(left, right)
    for nxt in rest:
        out = Union(out, nxt)
    return out


def difference(left: Expression, right: Expression) -> Difference:
    """Set difference."""
    return Difference(left, right)


def product(left: Expression, right: Expression) -> Product:
    """Cartesian product ×."""
    return Product(left, right)


def join(left: Expression, right: Expression, *rest: Expression) -> Expression:
    """Natural join ⋈ of two or more expressions."""
    out: Expression = NaturalJoin(left, right)
    for nxt in rest:
        out = NaturalJoin(out, nxt)
    return out


def repair_key(child: Expression, key: Sequence[str] = (), weight: str | None = None) -> RepairKey:
    """The repair-key operator; see :class:`RepairKey`."""
    return RepairKey(child, key, weight)


# ---------------------------------------------------------------------------
# Deterministic evaluation.
# ---------------------------------------------------------------------------


def evaluate(expr: Expression, db: Database) -> Relation:
    """Evaluate a *deterministic* expression (no repair-key) on ``db``.

    Raises :class:`AlgebraError` if the expression contains repair-key;
    use :mod:`repro.relational.prob_eval` for those.
    """
    if isinstance(expr, RelationRef):
        return db[expr.name]
    if isinstance(expr, Literal):
        return expr.relation
    if isinstance(expr, Select):
        child = evaluate(expr.child, db)
        cols = child.columns
        kept = [row for row in child if expr.predicate.evaluate(dict(zip(cols, row)))]
        return Relation(cols, kept)
    if isinstance(expr, Project):
        child = evaluate(expr.child, db)
        indices = [child.column_index(c) for c in expr.columns]
        return Relation(expr.columns, {tuple(row[i] for i in indices) for row in child})
    if isinstance(expr, Rename):
        child = evaluate(expr.child, db)
        out_cols = Rename(Literal(child), expr.mapping).output_columns({})
        return Relation(out_cols, child.rows)
    if isinstance(expr, ExtendedProject):
        child = evaluate(expr.child, db)
        out_cols = ExtendedProject(Literal(child), expr.outputs).output_columns({})
        sources = []
        for _name, (kind, value) in expr.outputs:
            if kind == "col":
                sources.append(("col", child.column_index(value)))
            else:
                sources.append(("const", value))
        rows = {
            tuple(row[value] if kind == "col" else value for kind, value in sources)
            for row in child
        }
        return Relation(out_cols, rows)
    if isinstance(expr, Union):
        return evaluate(expr.left, db).union(evaluate(expr.right, db))
    if isinstance(expr, Difference):
        return evaluate(expr.left, db).difference(evaluate(expr.right, db))
    if isinstance(expr, Product):
        left = evaluate(expr.left, db)
        right = evaluate(expr.right, db)
        clash = set(left.columns) & set(right.columns)
        if clash:
            raise AlgebraError(
                f"product inputs share columns {sorted(clash)!r}; rename first"
            )
        rows = [lrow + rrow for lrow in left for rrow in right]
        return Relation(left.columns + right.columns, rows)
    if isinstance(expr, NaturalJoin):
        return _natural_join(evaluate(expr.left, db), evaluate(expr.right, db))
    if isinstance(expr, RepairKey):
        raise AlgebraError(
            "expression contains repair-key; use repro.relational.prob_eval "
            "(enumerate_worlds / sample_world) instead of evaluate()"
        )
    raise AlgebraError(f"unknown expression node {expr!r}")


def _natural_join(left: Relation, right: Relation) -> Relation:
    """Hash-join implementation of the natural join.

    The hash table is built on the smaller input (the larger side is
    streamed), which matters in the evaluators' inner loops where a
    small frontier joins a large edge relation every step.
    """
    shared = [c for c in left.columns if c in right.columns]
    out_cols = left.columns + tuple(c for c in right.columns if c not in left.columns)
    if not left.rows or not right.rows:
        return Relation(out_cols, ())
    if not shared:
        rows = [lrow + rrow for lrow in left for rrow in right]
        return Relation(out_cols, rows)
    lidx = [left.column_index(c) for c in shared]
    ridx = [right.column_index(c) for c in shared]
    rkeep = [i for i, c in enumerate(right.columns) if c not in left.columns]
    rows = []
    if len(left) <= len(right):
        buckets: dict[tuple, list] = {}
        for lrow in left:
            buckets.setdefault(tuple(lrow[i] for i in lidx), []).append(lrow)
        for rrow in right:
            key = tuple(rrow[i] for i in ridx)
            matches = buckets.get(key)
            if matches:
                tail = tuple(rrow[i] for i in rkeep)
                for lrow in matches:
                    rows.append(lrow + tail)
    else:
        buckets = {}
        for rrow in right:
            buckets.setdefault(tuple(rrow[i] for i in ridx), []).append(rrow)
        for lrow in left:
            key = tuple(lrow[i] for i in lidx)
            for rrow in buckets.get(key, ()):
                rows.append(lrow + tuple(rrow[i] for i in rkeep))
    return Relation(out_cols, rows)


def validate(expr: Expression, schema: Schema) -> tuple[str, ...]:
    """Type-check an expression against a database schema.

    Returns the output columns; raises :class:`AlgebraError` or
    :class:`SchemaError` on any inconsistency.
    """
    return expr.output_columns(schema)
