"""Row predicates for the selection operator.

The predicate language is deliberately small and structured (so that
expressions can be printed and reasoned about), with
:class:`RowPredicate` as an escape hatch for arbitrary Python callables.
Predicates are evaluated against a row *viewed as a mapping* from column
name to value.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import AlgebraError


class Predicate:
    """Base class of all selection predicates."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Decide the predicate on one row (column name → value view)."""
        raise NotImplementedError

    def referenced_columns(self) -> frozenset[str]:
        """Columns the predicate reads (used for schema validation)."""
        raise NotImplementedError

    # Composition sugar: ``p & q``, ``p | q``, ``~p``.

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate(self, other)

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)


def _lookup(row: Mapping[str, Any], column: str) -> Any:
    try:
        return row[column]
    except KeyError:
        raise AlgebraError(f"predicate references unknown column {column!r}") from None


class TruePredicate(Predicate):
    """Always true (select everything)."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def referenced_columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"


class ColumnEq(Predicate):
    """``row[left] == row[right]`` for two column names."""

    def __init__(self, left: str, right: str):
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return _lookup(row, self.left) == _lookup(row, self.right)

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def __repr__(self) -> str:
        return f"{self.left}={self.right}"


class ValueEq(Predicate):
    """``row[column] == value`` for a constant value."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return _lookup(row, self.column) == self.value

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column}={self.value!r}"


class ValueNe(Predicate):
    """``row[column] != value`` for a constant value."""

    def __init__(self, column: str, value: Any):
        self.column = column
        self.value = value

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return _lookup(row, self.column) != self.value

    def referenced_columns(self) -> frozenset[str]:
        return frozenset({self.column})

    def __repr__(self) -> str:
        return f"{self.column}!={self.value!r}"


class AndPredicate(Predicate):
    """Conjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} AND {self.right!r})"


class OrPredicate(Predicate):
    """Disjunction of two predicates."""

    def __init__(self, left: Predicate, right: Predicate):
        self.left = left
        self.right = right

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def referenced_columns(self) -> frozenset[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} OR {self.right!r})"


class NotPredicate(Predicate):
    """Negation of a predicate."""

    def __init__(self, inner: Predicate):
        self.inner = inner

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.inner.evaluate(row)

    def referenced_columns(self) -> frozenset[str]:
        return self.inner.referenced_columns()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class RowPredicate(Predicate):
    """Escape hatch: wrap an arbitrary ``row-dict -> bool`` callable.

    ``columns`` must list every column the callable reads so that schema
    validation stays possible.
    """

    def __init__(self, func: Callable[[Mapping[str, Any]], bool], columns: tuple[str, ...], name: str = "<func>"):
        self.func = func
        self.columns = tuple(columns)
        self.name = name

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return bool(self.func(row))

    def referenced_columns(self) -> frozenset[str]:
        return frozenset(self.columns)

    def __repr__(self) -> str:
        return f"RowPredicate({self.name})"
