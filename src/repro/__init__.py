"""repro — probabilistic fixpoint and Markov chain query languages.

A from-scratch reproduction of Deutch, Koch & Milo, *On Probabilistic
Fixpoint and Markov Chain Query Languages* (PODS 2010): relational
algebra with the ``repair-key`` construct, probabilistic c-tables,
probabilistic datalog with probabilistic rules, inflationary and
non-inflationary (forever-query / Markov-chain) semantics, the paper's
exact and sampling evaluation algorithms, and its two 3-SAT hardness
constructions.

Quickstart
----------
>>> from fractions import Fraction
>>> import repro
>>> graph = repro.cycle_graph(4)
>>> query, db = repro.random_walk_query(graph, start="n0", target="n2")
>>> repro.evaluate_forever_exact(query, db).probability
Fraction(1, 4)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    ForeverQuery,
    InflationaryQuery,
    Interpretation,
    QueryEvent,
    RelationNonEmpty,
    TupleIn,
    build_state_chain,
    evaluate_forever_exact,
    evaluate_forever_mcmc,
    evaluate_forever_numeric,
    evaluate_forever_partitioned,
    evaluate_inflationary_exact,
    evaluate_inflationary_sampling,
    inflationary_interpretation,
    simulate_trajectory,
)
from repro.core.evaluation import ExactResult, SamplingResult
from repro.ctables import CTable, PCDatabase, boolean_variable, var_eq, var_ne
from repro.datalog import (
    InflationaryDatalogEngine,
    Program,
    Rule,
    evaluate_datalog_exact,
    evaluate_datalog_sampling,
    parse_program,
    parse_rule,
)
from repro.errors import (
    AlgebraError,
    BudgetExceededError,
    CheckpointError,
    ConditionError,
    DatalogError,
    EvaluationError,
    MarkovChainError,
    NotInflationaryError,
    ProbabilityError,
    ReproError,
    RunCancelledError,
    SchemaError,
    StateSpaceLimitExceeded,
)
from repro.markov import (
    MarkovChain,
    chain_from_edges,
    is_ergodic,
    is_irreducible,
    mixing_time,
    stationary_distribution,
)
from repro.probability import Distribution, hoeffding_sample_count, paper_sample_count
from repro.reductions import (
    CNFFormula,
    build_thm41_instance,
    build_thm51_instance,
    random_3cnf,
)
from repro.runtime import (
    Budget,
    Checkpoint,
    DegradationPolicy,
    RunContext,
    RunReport,
    evaluate_forever_resilient,
    load_checkpoint,
)
from repro.relational import (
    Database,
    Relation,
    parse_expression,
    parse_interpretation,
    difference,
    enumerate_worlds,
    evaluate,
    join,
    literal,
    product,
    project,
    rel,
    rename,
    repair_key,
    sample_world,
    select,
    union,
)
from repro.workloads import (
    BayesianNetwork,
    WeightedGraph,
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    layered_dag,
    pagerank_query,
    random_network,
    random_walk_query,
    reachability_program,
    reachability_query,
    sprinkler_network,
)

def _resolve_version() -> str:
    """The installed distribution version, or the source-tree fallback.

    When the package is installed (``pip install -e .``) this reads the
    authoritative version from the distribution metadata, so
    ``repro --version`` always matches ``pyproject.toml``; running
    straight from the source tree (``PYTHONPATH=src``) falls back to
    the pinned literal below, which must be kept in lockstep.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        return "1.0.0"


__version__ = _resolve_version()

__all__ = [
    "AlgebraError",
    "BayesianNetwork",
    "Budget",
    "BudgetExceededError",
    "CNFFormula",
    "CTable",
    "Checkpoint",
    "CheckpointError",
    "ConditionError",
    "Database",
    "DatalogError",
    "DegradationPolicy",
    "Distribution",
    "EvaluationError",
    "ExactResult",
    "ForeverQuery",
    "InflationaryDatalogEngine",
    "InflationaryQuery",
    "Interpretation",
    "MarkovChain",
    "MarkovChainError",
    "NotInflationaryError",
    "PCDatabase",
    "ProbabilityError",
    "Program",
    "QueryEvent",
    "Relation",
    "RelationNonEmpty",
    "ReproError",
    "Rule",
    "RunCancelledError",
    "RunContext",
    "RunReport",
    "SamplingResult",
    "SchemaError",
    "StateSpaceLimitExceeded",
    "TupleIn",
    "WeightedGraph",
    "barbell_graph",
    "boolean_variable",
    "build_state_chain",
    "build_thm41_instance",
    "build_thm51_instance",
    "chain_from_edges",
    "complete_graph",
    "cycle_graph",
    "difference",
    "enumerate_worlds",
    "erdos_renyi",
    "evaluate",
    "evaluate_datalog_exact",
    "evaluate_datalog_sampling",
    "evaluate_forever_exact",
    "evaluate_forever_mcmc",
    "evaluate_forever_numeric",
    "evaluate_forever_partitioned",
    "evaluate_forever_resilient",
    "evaluate_inflationary_exact",
    "evaluate_inflationary_sampling",
    "hoeffding_sample_count",
    "inflationary_interpretation",
    "is_ergodic",
    "is_irreducible",
    "join",
    "layered_dag",
    "literal",
    "load_checkpoint",
    "mixing_time",
    "pagerank_query",
    "paper_sample_count",
    "parse_expression",
    "parse_interpretation",
    "parse_program",
    "parse_rule",
    "product",
    "project",
    "random_3cnf",
    "random_network",
    "random_walk_query",
    "reachability_program",
    "reachability_query",
    "rel",
    "rename",
    "repair_key",
    "sample_world",
    "select",
    "simulate_trajectory",
    "sprinkler_network",
    "stationary_distribution",
    "union",
    "var_eq",
    "var_ne",
]
