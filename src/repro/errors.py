"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing schema problems from semantic ones.
"""

from __future__ import annotations

from typing import Any, Mapping


def line_and_column(source: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of a character offset in ``source``.

    Shared by the parsers and the static analyzer so every diagnostic
    and parse error renders positions the same way.
    """
    offset = max(0, min(offset, len(source)))
    line = source.count("\n", 0, offset) + 1
    column = offset - (source.rfind("\n", 0, offset) + 1) + 1
    return line, column


def position_details(source: str, offset: int) -> dict[str, int]:
    """Machine-readable source position for an error's ``details``."""
    line, column = line_and_column(source, offset)
    return {"offset": offset, "line": line, "column": column}


def describe_position(source: str, offset: int) -> str:
    """Human-readable source position, e.g. ``line 3, column 7``."""
    line, column = line_and_column(source, offset)
    return f"line {line}, column {column}"


class ReproError(Exception):
    """Base class of all errors raised by this library.

    Every error carries a ``details`` mapping of machine-readable
    diagnostics (empty by default) so callers — in particular the
    :mod:`repro.runtime` degradation policy — can react to *why* an
    operation failed without parsing the message text.

    ``retryable`` marks transient failures (a crashed worker, an
    injected fault, an overloaded server) that an idempotent caller may
    safely retry; it is consulted by the supervisor's chunk dispatch,
    the scheduler's re-admission path, and the HTTP client.
    """

    #: Whether retrying the failed operation can succeed (class default;
    #: instances may override via the ``retryable=`` keyword).
    retryable: bool = False

    def __init__(
        self,
        *args: object,
        details: Mapping[str, Any] | None = None,
        retryable: bool | None = None,
    ):
        super().__init__(*args)
        self.details: dict[str, Any] = dict(details or {})
        if retryable is not None:
            self.retryable = retryable

    def __reduce__(self):
        # The default Exception reduction drops keyword-only state, so a
        # BudgetExceededError crossing a process-pool boundary (parallel
        # sampling) would lose its ``details``.  Rebuild through a helper
        # that restores them.
        return (
            _rebuild_error,
            (type(self), self.args, self.details, self.retryable),
        )


def _rebuild_error(
    cls: type,
    args: tuple,
    details: Mapping[str, Any],
    retryable: bool = False,
) -> "ReproError":
    error = cls(*args)
    error.details = dict(details)
    error.retryable = retryable
    return error


class SchemaError(ReproError):
    """A relation, database, or query violates schema constraints.

    Raised for duplicate or unknown column names, arity mismatches,
    incompatible union schemas, and references to undefined relations.
    """


class AlgebraError(SchemaError):
    """An ill-formed relational-algebra expression was constructed or
    evaluated (for example, a join on columns that do not exist, or a
    reference to a relation missing from the database).  A subclass of
    :class:`SchemaError`: algebra shape errors *are* schema errors."""


class ProbabilityError(ReproError):
    """A probability value or distribution is invalid.

    Raised for negative weights, empty distributions, weights that do not
    sum to one, and sampling from an empty support.
    """


class ConditionError(ReproError):
    """An ill-formed c-table condition (for example, a comparison against
    a variable that is not declared in the pc-table's distribution)."""


class DatalogError(ReproError):
    """An ill-formed datalog program: unsafe rules, arity clashes, head
    predicates that are also EDB relations, or malformed syntax."""


class DatalogParseError(DatalogError):
    """The datalog text parser rejected its input."""


class MarkovChainError(ReproError):
    """A Markov-chain operation failed or is undefined for the given
    chain (for example, requesting the unique stationary distribution of
    a reducible chain)."""


class EvaluationError(ReproError):
    """Query evaluation failed: non-inflationary kernel passed to an
    inflationary evaluator, state-space explosion beyond the configured
    limit, or a transition kernel whose result schema does not match."""


class StateSpaceLimitExceeded(EvaluationError):
    """Exact evaluation aborted because the explored state space exceeded
    the caller-supplied ``max_states`` safety limit."""


class SolveRefusedError(EvaluationError):
    """A certified numeric solver could not prove its answer accurate
    enough and refused to return it.

    Raised by the sparse rung (:mod:`repro.sparse`) when the a
    posteriori residual certificate exceeds the requested ``epsilon``.
    ``details`` records the requested tolerance (``"epsilon"``), the
    bound actually certified (``"certified_bound"``), and the solver
    iterations spent, so the degradation ladder can fall through to an
    exact or sampling rung with an auditable reason instead of ever
    surfacing an uncertified float."""


class NotInflationaryError(EvaluationError):
    """A transition kernel produced a possible world that does not
    contain its input state, violating Definition 3.4."""


class BudgetExceededError(EvaluationError):
    """A :class:`~repro.runtime.Budget` resource limit was exhausted.

    ``details`` records which resource tripped (``"wall_clock"``,
    ``"steps"``, or ``"states"``), the limit, and the amount spent, so
    callers can decide whether to retry with a cheaper evaluator.
    """


class RunCancelledError(ReproError):
    """A cooperative cancellation token attached to the active
    :class:`~repro.runtime.RunContext` was triggered and the evaluator
    stopped at its next check point."""


class CheckpointError(ReproError):
    """A checkpoint file could not be read, has an incompatible version
    or kind, or does not match the run being resumed."""


class FaultInjectedError(ReproError):
    """A :class:`~repro.faults.FaultPlan` fired a ``raise`` or
    ``corrupt`` action at an instrumented site.  Transient by default
    (``retryable=True``): the fault-injection harness exists to prove
    the retry/restart paths recover, so injected failures look exactly
    like the transient infrastructure failures they simulate."""

    retryable = True


class WorkerCrashError(EvaluationError):
    """A supervised worker process died while a task chunk was in
    flight.  Retryable: task chunks are pure functions of their seed,
    so re-dispatching the chunk to a fresh worker reproduces the exact
    tally the crashed worker would have returned."""

    retryable = True


class WorkerStalledError(EvaluationError):
    """A supervised worker stopped heart-beating past the configured
    timeout while a task chunk was in flight and was killed.  Retryable
    for the same idempotency reason as :class:`WorkerCrashError`."""

    retryable = True


class WorkerPoolError(EvaluationError):
    """The supervised worker pool is no longer usable: the restart
    budget is exhausted or a task exceeded its retry allowance.  Not
    retryable — the pool itself has given up."""


class ServiceError(ReproError):
    """Base class of query-service failures (:mod:`repro.service`).

    Covers request validation, scheduling, and client-side transport
    problems; the HTTP front-end maps subclasses to status codes (see
    ``docs/service.md``)."""


class InvalidRequestError(ServiceError):
    """A query request is malformed: unknown semantics, missing fields,
    unexpected parameters, or values of the wrong type.  The HTTP
    front-end answers 400."""


class ProgramRejectedError(InvalidRequestError):
    """Static analysis found error-level diagnostics in a submitted
    program, so the service refused to schedule it.  ``details`` carries
    the rendered diagnostic list under ``"diagnostics"`` and the stable
    codes under ``"codes"``; the HTTP front-end answers 400 with both in
    the response body."""


class QueueFullError(ServiceError):
    """The scheduler's bounded queue is at capacity and the job was
    rejected at admission — *after* load shedding already tried every
    cheaper ladder rung.  The HTTP front-end answers 429 with a
    ``Retry-After`` header; clients should back off and resubmit."""

    retryable = True


class ServiceUnavailableError(ServiceError):
    """The service is shutting down (or has shut down) and cannot admit
    new work.  The HTTP front-end answers 503 with ``Retry-After``;
    clients talking to a replicated deployment should retry elsewhere."""

    retryable = True


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the scheduler's registry.
    The HTTP front-end answers 404."""
