"""Deterministic fault injection at named sites in the real code paths.

Chaos testing is only trustworthy when the chaos drives the *production*
code: a mocked worker that "crashes" exercises the mock, not the
supervisor.  This module therefore instruments a handful of named sites
inside the real runtime — the supervised worker's task loop, the
sampler's per-sample boundary, the checkpoint writer, the scheduler's
executor — with a single cheap hook, :func:`maybe_fire`.  With no plan
installed the hook is one global load and a ``None`` comparison; with a
plan installed it fires *deterministically*: specs trigger on exact hit
counts (``after``/``times``) or on a seeded per-site Bernoulli draw, so
a chaos scenario replays identically run after run.

Plans cross process boundaries through the ``REPRO_FAULT_PLAN``
environment variable (inline JSON, or ``@path`` to a JSON file), which
:func:`install` exports and supervised worker processes re-read — so a
plan installed in a test process reaches the forked/spawned workers it
is meant to kill.

Actions
-------
``crash``
    ``os._exit(70)`` — an abrupt worker death (no cleanup, no excuse).
    Only meaningful inside a worker *process*; never use it at an
    in-thread site.
``hang``
    Sleep for ``seconds`` (default far past any heartbeat timeout)
    without polling cancellation — a stuck worker.
``sleep``
    Sleep for ``seconds`` and continue — a slow response.
``raise``
    Raise :class:`~repro.errors.FaultInjectedError` (transient /
    retryable by default; set ``transient: false`` for a permanent
    failure).
``corrupt`` / ``torn-write``
    Returned to the instrumented call site, which implements the
    site-specific damage (poisoning a worker cache, tearing a
    checkpoint temp file mid-write).
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import FaultInjectedError, ReproError

#: Environment variable carrying the active plan across processes.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: The named injection sites wired into the runtime.  A spec may name
#: any site (tests register ad-hoc ones), but these are the ones the
#: production code paths consult.
SITE_SUPERVISOR_TASK = "supervisor.task"      # worker-side, per task chunk
SITE_WORKER_CACHE = "worker.cache"            # worker-side, per cached chunk
SITE_SAMPLER_SAMPLE = "sampler.sample"        # per completed MCMC sample
SITE_CHECKPOINT_WRITE = "checkpoint.write"    # inside Checkpoint.save
SITE_SCHEDULER_EXECUTE = "scheduler.execute"  # per job execution

KNOWN_SITES = (
    SITE_SUPERVISOR_TASK,
    SITE_WORKER_CACHE,
    SITE_SAMPLER_SAMPLE,
    SITE_CHECKPOINT_WRITE,
    SITE_SCHEDULER_EXECUTE,
)

_ACTIONS = ("crash", "hang", "sleep", "raise", "corrupt", "torn-write")

#: Actions :func:`FaultPlan.fire` performs itself; the rest are returned
#: to the call site.
_SELF_EXECUTING = ("crash", "hang", "sleep", "raise")

#: Hang duration when a spec does not set one — far past any heartbeat
#: timeout, short enough that an orphaned process exits on its own.
DEFAULT_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *where*, *what*, and *when*.

    ``after``/``times`` select hits by count: the spec fires on hits
    ``after .. after + times - 1`` (1-based, per process).  When
    ``probability`` is set the count window is ignored and each hit
    fires on a seeded Bernoulli draw instead — still deterministic for
    a fixed plan seed, because every site draws from its own
    seed-derived stream.

    ``generation`` restricts the spec to processes of that *spawn
    generation*: the parent process and a supervisor's original workers
    are generation 0; each replacement worker is spawned with the
    supervisor's cumulative restart count (see :func:`set_generation`).
    Hit counters are per process, so a worker-crash spec without a
    generation bound would also crash every replacement — the classic
    crash loop.  ``generation=0`` is how a chaos scenario says "kill
    the original workers once and let the restarts recover".
    """

    site: str
    action: str
    after: int = 1
    times: int = 1
    probability: float | None = None
    seconds: float = 0.0
    transient: bool = True
    generation: int | None = None

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ReproError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {_ACTIONS}"
            )
        if self.after < 1:
            raise ReproError(f"fault 'after' must be >= 1, got {self.after!r}")
        if self.times < 1:
            raise ReproError(f"fault 'times' must be >= 1, got {self.times!r}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1], got {self.probability!r}"
            )
        if self.seconds < 0:
            raise ReproError(f"fault seconds must be >= 0, got {self.seconds!r}")
        if self.generation is not None and self.generation < 0:
            raise ReproError(
                f"fault generation must be >= 0, got {self.generation!r}"
            )

    def as_dict(self) -> dict:
        payload: dict = {"site": self.site, "action": self.action}
        if self.after != 1:
            payload["after"] = self.after
        if self.times != 1:
            payload["times"] = self.times
        if self.probability is not None:
            payload["probability"] = self.probability
        if self.seconds:
            payload["seconds"] = self.seconds
        if not self.transient:
            payload["transient"] = False
        if self.generation is not None:
            payload["generation"] = self.generation
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise ReproError(f"fault spec must be an object, got {data!r}")
        unknown = sorted(
            set(data)
            - {"site", "action", "after", "times", "probability", "seconds",
               "transient", "generation"}
        )
        if unknown:
            raise ReproError(f"unknown fault spec fields: {unknown}")
        try:
            return cls(
                site=data["site"],
                action=data["action"],
                after=data.get("after", 1),
                times=data.get("times", 1),
                probability=data.get("probability"),
                seconds=data.get("seconds", 0.0),
                transient=data.get("transient", True),
                generation=data.get("generation"),
            )
        except KeyError as error:
            raise ReproError(
                f"fault spec is missing field {error.args[0]!r}"
            ) from None


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules plus per-site hit state.

    Hit counters and Bernoulli streams are *per process*: a plan that a
    supervisor's worker inherits through the environment starts its own
    counters, so "crash on the first task" means the first task each
    fresh worker process sees — exactly the semantics chaos scenarios
    want (a restarted worker must get a clean slate or the restart
    budget test would be vacuous).

    Examples
    --------
    >>> plan = FaultPlan([FaultSpec("s", "raise", after=2)])
    >>> plan.fire("s") is None   # first hit: no fault
    True
    >>> plan.fire("s")
    Traceback (most recent call last):
        ...
    repro.errors.FaultInjectedError: injected fault at site 's' (hit 2)
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {}
        #: Every firing, in order: ``{"site", "action", "hit"}`` dicts.
        self.fired: list[dict] = []

    # -- (de)serialisation ----------------------------------------------

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [spec.as_dict() for spec in self.specs],
        }

    @classmethod
    def from_json(cls, data: Any) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ReproError(f"fault plan must be a JSON object, got {data!r}")
        specs_data = data.get("specs")
        if not isinstance(specs_data, list):
            raise ReproError("fault plan needs a 'specs' list")
        return cls(
            specs=[FaultSpec.from_dict(spec) for spec in specs_data],
            seed=int(data.get("seed", 0)),
        )

    # -- firing ---------------------------------------------------------

    def _site_rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            # Stable per-site stream: hash the site name into the seed
            # via a fixed digest-free mix (hash() is salted per process).
            mix = sum(ord(ch) * (index + 1) for index, ch in enumerate(site))
            rng = self._rngs[site] = random.Random(self.seed * 1_000_003 + mix)
        return rng

    def _match(self, site: str) -> tuple[FaultSpec | None, int]:
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for spec in self.specs:
                if spec.site != site:
                    continue
                if spec.generation is not None and spec.generation != _GENERATION:
                    continue
                if spec.probability is not None:
                    if self._site_rng(site).random() < spec.probability:
                        return spec, hit
                elif spec.after <= hit < spec.after + spec.times:
                    return spec, hit
            return None, hit

    def fire(self, site: str, **context: Any) -> FaultSpec | None:
        """One hit at ``site``: execute or return the matching fault.

        Self-executing actions (``crash``/``hang``/``sleep``/``raise``)
        happen here; ``corrupt`` and ``torn-write`` are returned for the
        call site to implement.  Returns ``None`` when nothing fires.
        """
        spec, hit = self._match(site)
        if spec is None:
            return None
        with self._lock:
            self.fired.append(
                {"site": site, "action": spec.action, "hit": hit, **context}
            )
        observer = _OBSERVER
        if observer is not None:
            try:
                observer(site, spec)
            except Exception:  # noqa: BLE001 - observers must not mask faults
                pass
        tracer = getattr(_TRACE_TRACERS, "tracer", None)
        if tracer is not None and getattr(tracer, "enabled", False):
            # Written before the action executes, so even a crash/raise
            # leaves its mark in the trace (memory sinks inside a worker
            # ship back through the profiling span buffer).
            try:
                tracer.event(
                    "fault-injected",
                    site=site,
                    action=spec.action,
                    hit=hit,
                    transient=spec.transient,
                    generation=_GENERATION,
                )
            except Exception:  # noqa: BLE001 - tracing must not mask faults
                pass
        if spec.action == "crash":
            os._exit(70)
        if spec.action == "hang":
            time.sleep(spec.seconds or DEFAULT_HANG_SECONDS)
            return None
        if spec.action == "sleep":
            time.sleep(spec.seconds)
            return None
        if spec.action == "raise":
            raise FaultInjectedError(
                f"injected fault at site {site!r} (hit {hit})",
                details={"site": site, "hit": hit, **context},
                retryable=spec.transient,
            )
        return spec

    def counts(self) -> dict[str, int]:
        """Firings per ``site:action`` (for metrics/chaos reports)."""
        with self._lock:
            table: dict[str, int] = {}
            for record in self.fired:
                key = f"{record['site']}:{record['action']}"
                table[key] = table.get(key, 0) + 1
            return table


# -- the process-wide active plan -------------------------------------------

_ACTIVE: FaultPlan | None = None
_ACTIVE_LOCK = threading.Lock()

#: This process's spawn generation (see :class:`FaultSpec.generation`).
_GENERATION = 0

#: Optional ``(site, spec)`` callback invoked on every firing in this
#: process — the bridge from the chaos harness into a metrics registry
#: (the serving layer publishes ``repro_faults_injected_total`` with
#: it).  Worker *processes* count their own firings; only parent-side
#: sites reach the parent's registry.
_OBSERVER: Callable[[str, "FaultSpec"], None] | None = None


def set_observer(observer: Callable[[str, FaultSpec], None] | None) -> None:
    """Install (or clear, with ``None``) the process-wide firing observer."""
    global _OBSERVER
    _OBSERVER = observer


#: Per-thread tracer receiving ``fault-injected`` events.  Thread-local
#: because runs are thread-affine (the scheduler executes each job on
#: one worker thread; a supervised worker process runs tasks on its main
#: thread), so concurrent jobs never cross-pollinate each other's traces.
_TRACE_TRACERS = threading.local()


def bind_trace_tracer(tracer: Any) -> None:
    """Route this thread's injection hits into ``tracer`` as events.

    Called by :class:`~repro.runtime.context.RunContext` whenever a run
    starts with tracing enabled; pass ``None`` to unbind.  Disabled or
    stale tracers are ignored at fire time, so leaving a binding behind
    after a run ends is harmless.
    """
    _TRACE_TRACERS.tracer = tracer


def set_generation(generation: int) -> None:
    """Declare this process's spawn generation (worker startup)."""
    global _GENERATION
    _GENERATION = generation


def generation() -> int:
    return _GENERATION


def active() -> FaultPlan | None:
    """The installed plan, if any."""
    return _ACTIVE


def install(plan: FaultPlan, export_env: bool = True) -> FaultPlan:
    """Make ``plan`` the process-wide active plan.

    With ``export_env`` (the default) the plan is also written to
    ``REPRO_FAULT_PLAN`` so worker processes spawned later inherit it.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = plan
        if export_env:
            os.environ[FAULT_PLAN_ENV] = json.dumps(plan.to_json())
    return plan


def uninstall() -> None:
    """Remove the active plan (and its environment export)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None
        os.environ.pop(FAULT_PLAN_ENV, None)


def load_from_env(environ: Mapping[str, str] | None = None) -> FaultPlan | None:
    """Parse ``REPRO_FAULT_PLAN`` (inline JSON or ``@path``), if set."""
    environ = environ if environ is not None else os.environ
    raw = environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    if raw.startswith("@"):
        try:
            with open(raw[1:], encoding="utf-8") as handle:
                raw = handle.read()
        except OSError as error:
            raise ReproError(
                f"cannot read fault plan file {raw[1:]!r}: {error}"
            ) from error
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ReproError(f"{FAULT_PLAN_ENV} is not valid JSON: {error}") from error
    return FaultPlan.from_json(data)


def install_from_env() -> FaultPlan | None:
    """Install the environment's plan in this process (worker startup).

    Idempotent and cheap when the variable is unset; the installed plan
    gets fresh per-process hit counters (see :class:`FaultPlan`).
    """
    plan = load_from_env()
    if plan is not None:
        install(plan, export_env=False)
    return plan


def maybe_fire(site: str, **context: Any) -> FaultSpec | None:
    """Fire ``site`` on the active plan, or do nothing.

    This is the hook embedded in production code paths; with no plan
    installed it costs one global read.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site, **context)
