"""Deterministic fault injection for chaos-testing the runtime.

See :mod:`repro.faults.plan` for the model.  The public surface:

* :class:`FaultSpec` / :class:`FaultPlan` — seeded, replayable fault
  scenarios targeting named sites in the production code paths.
* :func:`install` / :func:`uninstall` / :func:`active` — process-wide
  plan management (with ``REPRO_FAULT_PLAN`` propagation to workers).
* :func:`maybe_fire` — the cheap hook the runtime calls at each site.
"""

from repro.faults.plan import (
    DEFAULT_HANG_SECONDS,
    FAULT_PLAN_ENV,
    KNOWN_SITES,
    SITE_CHECKPOINT_WRITE,
    SITE_SAMPLER_SAMPLE,
    SITE_SCHEDULER_EXECUTE,
    SITE_SUPERVISOR_TASK,
    SITE_WORKER_CACHE,
    FaultPlan,
    FaultSpec,
    active,
    bind_trace_tracer,
    generation,
    install,
    install_from_env,
    load_from_env,
    maybe_fire,
    set_generation,
    set_observer,
    uninstall,
)

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "FAULT_PLAN_ENV",
    "KNOWN_SITES",
    "SITE_CHECKPOINT_WRITE",
    "SITE_SAMPLER_SAMPLE",
    "SITE_SCHEDULER_EXECUTE",
    "SITE_SUPERVISOR_TASK",
    "SITE_WORKER_CACHE",
    "FaultPlan",
    "FaultSpec",
    "active",
    "bind_trace_tracer",
    "generation",
    "install",
    "install_from_env",
    "load_from_env",
    "maybe_fire",
    "set_generation",
    "set_observer",
    "uninstall",
]
