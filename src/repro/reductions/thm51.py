"""The Theorem 5.1 construction: absolute approximation is NP-hard for
non-inflationary queries.

Given a 3-CNF F with clauses c₁..c_m, the non-inflationary program
pipelines randomly sampled assignments through the clause chain::

    r(q0, L)  :- a(L).                                  % fresh assignment enters
    r(Y, L)   :- r(X, L), r(X, L2), o(X, Y), cl(Y, L2). % survives clause Y?
    done(a)   :- r(qm, _).                              % a survivor reached the end
    done(X)   :- done(X).                               % Done persists forever

with ``a`` a pc-table re-sampled at every iteration (non-inflationary
pc-table semantics, Section 3.1).  Proposition 5.3: the literals at
level qᵢ form an assignment consistent with the entering one and
satisfying c₁..cᵢ, if such exists.  Hence (Lemma 5.2) the long-run
probability of ``a ∈ done`` is **1 when F is satisfiable** (a satisfying
assignment is eventually sampled and then survives to the end, after
which ``done`` holds forever) and **0 otherwise** — so any absolute
approximation with ε < 1/2 decides 3-SAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.events import QueryEvent, TupleIn
from repro.core.evaluation.exact_noninflationary import evaluate_forever_exact
from repro.core.evaluation.results import ExactResult
from repro.core.interpretation import Interpretation
from repro.core.queries import ForeverQuery, simulate_trajectory
from repro.ctables.conditions import var_eq
from repro.ctables.pctable import CTable, PCDatabase, boolean_variable
from repro.datalog.ast import Program
from repro.datalog.compiler import noninflationary_interpretation
from repro.datalog.parser import parse_program
from repro.probability.rng import RngLike, make_rng
from repro.reductions.cnf import CNFFormula
from repro.reductions.thm41 import clause_name, literal_name
from repro.relational.database import Database
from repro.relational.relation import Relation


@dataclass(frozen=True)
class Thm51Instance:
    """One reduction output: the forever-query and its initial database."""

    formula: CNFFormula
    program: Program
    query: ForeverQuery
    initial: Database
    event: QueryEvent

    def expected_probability(self) -> int:
        """Lemma 5.2 ground truth: 1 iff F is satisfiable, else 0."""
        return 1 if self.formula.is_satisfiable() else 0


def _assignment_ctable(formula: CNFFormula) -> PCDatabase:
    entries = []
    variables = {}
    for v in range(1, formula.num_variables + 1):
        entries.append(((literal_name(v),), var_eq(f"x{v}", 1)))
        entries.append(((literal_name(-v),), var_eq(f"x{v}", 0)))
        variables[f"x{v}"] = boolean_variable()
    return PCDatabase(tables={"a": CTable(("L",), entries)}, variables=variables)


def build_thm51_instance(formula: CNFFormula) -> Thm51Instance:
    """Build the Theorem 5.1 reduction for one formula."""
    program = parse_program(
        f"""
        r({clause_name(0)}, L) :- a(L).
        r(Y, L) :- r(X, L), r(X, L2), o(X, Y), cl(Y, L2).
        done(a) :- r({clause_name(formula.num_clauses)}, _).
        done(X) :- done(X).
        """
    )
    pc = _assignment_ctable(formula)

    order_rows = [
        (clause_name(i), clause_name(i + 1)) for i in range(formula.num_clauses)
    ]
    membership_rows = [
        (clause_name(i + 1), literal_name(literal))
        for i, clause in enumerate(formula.clauses)
        for literal in clause
    ]
    edb_schema: dict[str, tuple[str, ...]] = {
        "o": ("C1", "C2"),
        "cl": ("C", "L"),
        "a": ("L",),
    }
    base_kernel = noninflationary_interpretation(program, edb_schema)
    kernel = Interpretation(base_kernel.queries, pc_tables=pc)

    # Initial state: the all-false assignment instantiates ``a``; the
    # IDB relations start empty.  The long-run result is independent of
    # this choice (the initial ``a`` only affects the transient).
    all_false = {f"x{v}": 0 for v in range(1, formula.num_variables + 1)}
    initial = Database(
        {
            "o": Relation(("C1", "C2"), order_rows),
            "cl": Relation(("C", "L"), membership_rows),
            "a": pc.tables["a"].instantiate(all_false),
            "r": Relation.empty(("c0", "c1")),
            "done": Relation.empty(("c0",)),
        }
    )
    event = TupleIn("done", ("a",))
    return Thm51Instance(
        formula=formula,
        program=program,
        query=ForeverQuery(kernel, event),
        initial=initial,
        event=event,
    )


def exact_probability(
    instance: Thm51Instance, max_states: int = 200_000
) -> ExactResult:
    """Exact long-run probability via the Theorem 5.5 machinery.

    The state chain is exponential in the formula size — which is the
    point of the theorem; keep instances tiny.
    """
    return evaluate_forever_exact(
        instance.query, instance.initial, max_states=max_states
    )


def simulated_probability(
    instance: Thm51Instance,
    steps: int,
    rng: RngLike = None,
) -> float:
    """Fraction of a single long trajectory during which the event holds
    (converges to 1 for satisfiable F, stays 0 for unsatisfiable F)."""
    generator = make_rng(rng)
    trajectory = simulate_trajectory(instance.query, instance.initial, steps, generator)
    hits = sum(instance.event.holds(state) for state in trajectory[1:])
    return hits / steps


def decide_sat_via_absolute_approximation(
    formula: CNFFormula,
    epsilon: float = 0.4,
    steps: int | None = None,
    rng: RngLike = None,
) -> bool:
    """The Theorem 5.1 decision procedure: approximate the query result
    with absolute error ε < 1/2 and answer "satisfiable" iff it exceeds
    1/2.

    The stand-in approximator is trajectory simulation run long enough
    for the pipeline to flush (m + 2 steps per sampled assignment;
    ``steps`` defaults to a generous multiple of 2ⁿ·(m+2) so a
    satisfying assignment is sampled with overwhelming probability —
    exponential, as Theorem 5.1 says any such procedure must be).
    """
    instance = build_thm51_instance(formula)
    if steps is None:
        pipeline = formula.num_clauses + 2
        steps = 64 * (2**formula.num_variables) * pipeline
    estimate = simulated_probability(instance, steps, rng=rng)
    if not 0 < epsilon < 0.5:
        raise ValueError("epsilon must lie in (0, 0.5) for the reduction")
    return estimate > 0.5
