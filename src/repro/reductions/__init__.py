"""Mechanised hardness constructions (Theorems 4.1 and 5.1) and the
3-CNF machinery they reduce from."""

from repro.reductions.cnf import (
    CNFError,
    CNFFormula,
    random_3cnf,
    satisfiable_formula,
    unsatisfiable_formula,
)
from repro.reductions.thm41 import (
    Thm41Instance,
    build_thm41_instance,
    build_thm41_pctable_instance,
    build_thm41_repairkey_instance,
    clause_name,
    decide_sat_via_relative_approximation,
    literal_name,
)
from repro.reductions.thm41 import exact_probability as thm41_exact_probability
from repro.reductions.thm41 import sampled_probability as thm41_sampled_probability
from repro.reductions.thm51 import (
    Thm51Instance,
    build_thm51_instance,
    decide_sat_via_absolute_approximation,
    simulated_probability,
)
from repro.reductions.thm51 import exact_probability as thm51_exact_probability

__all__ = [
    "CNFError",
    "CNFFormula",
    "Thm41Instance",
    "Thm51Instance",
    "build_thm41_instance",
    "build_thm41_pctable_instance",
    "build_thm41_repairkey_instance",
    "build_thm51_instance",
    "clause_name",
    "decide_sat_via_absolute_approximation",
    "decide_sat_via_relative_approximation",
    "literal_name",
    "random_3cnf",
    "satisfiable_formula",
    "simulated_probability",
    "thm41_exact_probability",
    "thm41_sampled_probability",
    "thm51_exact_probability",
    "unsatisfiable_formula",
]
