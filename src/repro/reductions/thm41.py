"""The Theorem 4.1 construction: relative approximation is NP-hard.

Given a 3-CNF formula F over variables v₁..vₙ with clauses c₁..c_m, the
construction builds a linear datalog program and a probabilistic
database such that the query probability p satisfies (Lemma 4.2)

    p = ♯models(F) / 2ⁿ   (so p ≥ 2⁻ⁿ iff F is satisfiable, else p = 0).

A PTIME *relative* approximation would decide "p = 0?" and hence 3-SAT.

Database (conditions (1) + (2') of the theorem — linear datalog, no
repair-key, over a probabilistic c-table):

* ``a(L)`` — a pc-table holding, per variable vᵢ, the literal tuples
  ``(vi)`` and ``(!vi)`` under the complementary conditions xᵢ = 1 /
  xᵢ = 0 of an unbiased boolean random variable xᵢ: each valuation is a
  truth assignment;
* ``o(C1, C2)`` — the clause chain c₀ → c₁ → ... → c_m (the paper seeds
  the derivation at a synthetic marker c₀, so ``o`` holds m edges);
* ``cl(C, L)`` — clause membership: ``(cᵢ, l)`` for each literal l of cᵢ.

Program (``r`` is the only IDB in rule bodies — linear)::

    r(q0).
    r(Y) :- r(X), o(X, Y), cl(Y, L), a(L).
    done(a) :- r(qm).

Variant (2) of the theorem replaces the c-table by a weighted base
relation ``atab(I, L, P)`` with rows (i, vi, 1), (i, !vi, 1) and the
repair-key rule ``a(I*, L)@P :- atab(I, L, P)`` — the rule fires once
(its body is ground), choosing one literal per variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.events import QueryEvent, TupleIn
from repro.core.evaluation.results import ExactResult, SamplingResult
from repro.ctables.conditions import var_eq
from repro.ctables.pctable import CTable, PCDatabase, boolean_variable
from repro.datalog.ast import Program
from repro.datalog.engine import evaluate_datalog_exact, evaluate_datalog_sampling
from repro.datalog.parser import parse_program
from repro.probability.rng import RngLike
from repro.reductions.cnf import CNFFormula
from repro.relational.database import Database
from repro.relational.relation import Relation


def literal_name(literal: int) -> str:
    """Constant naming a literal: ``v3`` for x₃, ``nv3`` for ¬x₃."""
    return f"v{literal}" if literal > 0 else f"nv{-literal}"


def clause_name(index: int) -> str:
    """Constant naming the i-th chain position (``q0`` is the seed)."""
    return f"q{index}"


@dataclass(frozen=True)
class Thm41Instance:
    """One reduction output: program + database (+ pc-table) + event."""

    formula: CNFFormula
    program: Program
    edb: Database
    pc_tables: PCDatabase | None
    event: QueryEvent
    variant: str

    def expected_probability(self) -> Fraction:
        """Lemma 4.2 ground truth: ♯models / 2ⁿ, by brute force."""
        return Fraction(
            self.formula.count_models(), 2**self.formula.num_variables
        )


def _chain_relations(formula: CNFFormula) -> dict[str, Relation]:
    order_rows = [
        (clause_name(i), clause_name(i + 1)) for i in range(formula.num_clauses)
    ]
    membership_rows = [
        (clause_name(i + 1), literal_name(literal))
        for i, clause in enumerate(formula.clauses)
        for literal in clause
    ]
    return {
        "o": Relation(("C1", "C2"), order_rows),
        "cl": Relation(("C", "L"), membership_rows),
    }


def build_thm41_pctable_instance(formula: CNFFormula) -> Thm41Instance:
    """Variant (2'): linear datalog without repair-key over a pc-table."""
    program = parse_program(
        f"""
        r({clause_name(0)}).
        r(Y) :- r(X), o(X, Y), cl(Y, L), a(L).
        done(a) :- r({clause_name(formula.num_clauses)}).
        """
    )
    entries = []
    variables = {}
    for v in range(1, formula.num_variables + 1):
        entries.append(((literal_name(v),), var_eq(f"x{v}", 1)))
        entries.append(((literal_name(-v),), var_eq(f"x{v}", 0)))
        variables[f"x{v}"] = boolean_variable()
    pc = PCDatabase(tables={"a": CTable(("L",), entries)}, variables=variables)
    return Thm41Instance(
        formula=formula,
        program=program,
        edb=Database(_chain_relations(formula)),
        pc_tables=pc,
        event=TupleIn("done", ("a",)),
        variant="2'",
    )


def build_thm41_repairkey_instance(formula: CNFFormula) -> Thm41Instance:
    """Variant (2): repair-key applied to the base relation ``atab``."""
    program = parse_program(
        f"""
        a(I*, L) :- atab(I, L, P).
        r({clause_name(0)}).
        r(Y) :- r(X), o(X, Y), cl(Y, L), a(I, L).
        done(a) :- r({clause_name(formula.num_clauses)}).
        """
    )
    atab_rows = []
    for v in range(1, formula.num_variables + 1):
        atab_rows.append((v, literal_name(v), 1))
        atab_rows.append((v, literal_name(-v), 1))
    relations = _chain_relations(formula)
    relations["atab"] = Relation(("I", "L", "P"), atab_rows)
    return Thm41Instance(
        formula=formula,
        program=program,
        edb=Database(relations),
        pc_tables=None,
        event=TupleIn("done", ("a",)),
        variant="2",
    )


def build_thm41_instance(formula: CNFFormula, variant: str = "2'") -> Thm41Instance:
    """Build the reduction; ``variant`` selects "2'" (pc-table) or "2"
    (repair-key on base relations)."""
    if variant == "2'":
        return build_thm41_pctable_instance(formula)
    if variant == "2":
        return build_thm41_repairkey_instance(formula)
    raise ValueError(f"unknown Theorem 4.1 variant {variant!r}; use \"2\" or \"2'\"")


def exact_probability(instance: Thm41Instance, max_states: int = 1_000_000) -> ExactResult:
    """Exact query probability of the reduction instance (exponential —
    this is the ♯P-hard problem; small n only)."""
    return evaluate_datalog_exact(
        instance.program,
        instance.edb,
        instance.event,
        pc_tables=instance.pc_tables,
        max_states=max_states,
    )


def sampled_probability(
    instance: Thm41Instance,
    samples: int,
    rng: RngLike = None,
) -> SamplingResult:
    """Theorem 4.3 sampler on the reduction instance — an *absolute*
    approximation.  With p as small as 2⁻ⁿ, distinguishing p > 0 from
    p = 0 needs Ω(2ⁿ) samples: the gap between the Table 1 columns."""
    return evaluate_datalog_sampling(
        instance.program,
        instance.edb,
        instance.event,
        pc_tables=instance.pc_tables,
        samples=samples,
        rng=rng,
    )


def decide_sat_via_relative_approximation(
    formula: CNFFormula,
    variant: str = "2'",
    max_states: int = 1_000_000,
) -> bool:
    """The Theorem 4.1 decision procedure, with the exact evaluator
    standing in for the hypothetical PTIME relative approximator (any
    relative approximation preserves "= 0" exactly, which is all the
    reduction uses): F is satisfiable iff the approximated p is non-zero.
    """
    instance = build_thm41_instance(formula, variant)
    return exact_probability(instance, max_states=max_states).probability != 0
