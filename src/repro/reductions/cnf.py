"""CNF formulas, SAT solving, and model counting.

The hardness constructions of Theorems 4.1 and 5.1 reduce from 3-SAT;
this module provides the formula type they reduce *from*, a brute-force
model counter (ground truth for Lemma 4.2: the query probability equals
♯models / 2ⁿ), a DPLL satisfiability decider for larger instances, and
random / crafted instance generators.

Literals use the DIMACS convention: variables are 1..n, a positive
integer i is the literal xᵢ, a negative integer −i is ¬xᵢ.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.probability.rng import RngLike, make_rng


class CNFError(ReproError):
    """An ill-formed CNF formula."""


@dataclass(frozen=True)
class CNFFormula:
    """A CNF formula over variables 1..num_variables.

    Examples
    --------
    >>> f = CNFFormula(2, [(1, 2), (-1, 2)])
    >>> f.count_models()
    2
    >>> f.is_satisfiable()
    True
    """

    num_variables: int
    clauses: tuple[tuple[int, ...], ...]

    def __init__(self, num_variables: int, clauses: Iterable[Sequence[int]]):
        object.__setattr__(self, "num_variables", num_variables)
        normalised = tuple(tuple(clause) for clause in clauses)
        object.__setattr__(self, "clauses", normalised)
        if num_variables < 1:
            raise CNFError("a formula needs at least one variable")
        if not normalised:
            raise CNFError("a formula needs at least one clause")
        for clause in normalised:
            if not clause:
                raise CNFError("empty clause (formula trivially unsatisfiable)")
            for literal in clause:
                if literal == 0 or abs(literal) > num_variables:
                    raise CNFError(
                        f"literal {literal} outside variables 1..{num_variables}"
                    )

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    # -- semantics ---------------------------------------------------------

    def clause_satisfied(self, clause_index: int, assignment: Sequence[bool]) -> bool:
        """Is clause ``clause_index`` true under ``assignment`` (0-based
        list of variable truth values)?"""
        return any(
            assignment[abs(lit) - 1] == (lit > 0)
            for lit in self.clauses[clause_index]
        )

    def satisfied_by(self, assignment: Sequence[bool]) -> bool:
        """Is the whole formula true under ``assignment``?"""
        if len(assignment) != self.num_variables:
            raise CNFError(
                f"assignment has {len(assignment)} values, formula has "
                f"{self.num_variables} variables"
            )
        return all(
            self.clause_satisfied(i, assignment) for i in range(self.num_clauses)
        )

    def models(self) -> Iterable[tuple[bool, ...]]:
        """All satisfying assignments (brute force; 2ⁿ iterations)."""
        for bits in itertools.product((False, True), repeat=self.num_variables):
            if self.satisfied_by(bits):
                yield bits

    def count_models(self) -> int:
        """♯SAT by brute force."""
        return sum(1 for _ in self.models())

    def is_satisfiable(self) -> bool:
        """Satisfiability via DPLL (unit propagation + pure literals)."""
        return _dpll([set(clause) for clause in self.clauses])

    def __repr__(self) -> str:
        inner = " ∧ ".join(
            "(" + " ∨ ".join(_render(l) for l in clause) + ")"
            for clause in self.clauses
        )
        return f"CNF[{self.num_variables} vars]: {inner}"


def _render(literal: int) -> str:
    return f"x{literal}" if literal > 0 else f"¬x{-literal}"


def _dpll(clauses: list[set[int]]) -> bool:
    """A small DPLL decider over clause sets."""
    assignment: set[int] = set()
    while True:
        # Unit propagation.
        unit = next((next(iter(c)) for c in clauses if len(c) == 1), None)
        if unit is None:
            break
        new_clauses = []
        for clause in clauses:
            if unit in clause:
                continue
            reduced = clause - {-unit}
            if not reduced:
                return False
            new_clauses.append(reduced)
        clauses = new_clauses
        assignment.add(unit)
    if not clauses:
        return True
    # Branch on the first literal of the first clause.
    literal = next(iter(clauses[0]))
    for choice in (literal, -literal):
        branch = []
        conflict = False
        for clause in clauses:
            if choice in clause:
                continue
            reduced = clause - {-choice}
            if not reduced:
                conflict = True
                break
            branch.append(reduced)
        if not conflict and _dpll(branch):
            return True
    return False


# -- instance generators ------------------------------------------------------


def random_3cnf(
    num_variables: int, num_clauses: int, rng: RngLike = None
) -> CNFFormula:
    """A uniformly random 3-CNF: each clause picks 3 distinct variables
    and independent signs.

    Around the clause/variable ratio 4.27 random instances sit at the
    satisfiability threshold; the benchmarks sweep both sides.
    """
    if num_variables < 3:
        raise CNFError("random 3-CNF needs at least 3 variables")
    generator = make_rng(rng)
    clauses = []
    for _ in range(num_clauses):
        variables = generator.sample(range(1, num_variables + 1), 3)
        clauses.append(
            tuple(v if generator.random() < 0.5 else -v for v in variables)
        )
    return CNFFormula(num_variables, clauses)


def unsatisfiable_formula(num_variables: int = 3) -> CNFFormula:
    """A small canonical unsatisfiable formula: all 8 sign patterns over
    the first three variables (padded to ``num_variables``)."""
    if num_variables < 3:
        raise CNFError("needs at least 3 variables")
    clauses = [
        (s1 * 1, s2 * 2, s3 * 3)
        for s1 in (1, -1)
        for s2 in (1, -1)
        for s3 in (1, -1)
    ]
    return CNFFormula(num_variables, clauses)


def satisfiable_formula(num_variables: int = 3) -> CNFFormula:
    """A small canonical satisfiable formula with a unique model
    (x₁ = x₂ = x₃ = true, remaining variables free)."""
    if num_variables < 3:
        raise CNFError("needs at least 3 variables")
    clauses = [(1, 1, 1), (2, 2, 2), (3, 3, 3)]
    return CNFFormula(num_variables, clauses)
