"""The serving layer: persistent sessions, scheduling, HTTP front-end.

The paper's evaluators are one-shot functions; this package turns them
into a long-running **query service**:

* :mod:`repro.service.request` — the validated wire format
  (:class:`QueryRequest`) with canonical session/result keys;
* :mod:`repro.service.session` — :class:`EngineSession` /
  :class:`SessionPool`: parse once, keep the transition cache warm;
* :mod:`repro.service.scheduler` — :class:`JobScheduler`: bounded
  two-lane queue, worker threads, per-job budgets, cancellation;
* :mod:`repro.service.result_cache` — :class:`ResultCache`: LRU of
  finished deterministic results;
* :mod:`repro.service.metrics` — :class:`ServiceMetrics` counters and
  latency histograms;
* :mod:`repro.service.service` — :class:`QueryService`, the facade;
* :mod:`repro.service.http` / :mod:`repro.service.client` — the stdlib
  HTTP server and its urllib client (``repro serve`` / ``repro submit``).
"""

from repro.service.client import ServiceClient
from repro.service.http import ServiceServer, make_server
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.request import PRIORITIES, SEMANTICS, QueryRequest
from repro.service.result_cache import DEFAULT_RESULT_CACHE_SIZE, ResultCache
from repro.service.scheduler import (
    CANCELLED,
    DEFAULT_QUEUE_SIZE,
    DEFAULT_WORKERS,
    DONE,
    FAILED,
    FINISHED_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobScheduler,
)
from repro.service.service import (
    DEFAULT_MAX_BUDGET,
    QueryService,
    ServiceConfig,
)
from repro.service.session import (
    DEFAULT_SESSION_POOL_SIZE,
    DEFAULT_TRANSITION_CACHE_SIZE,
    EngineSession,
    SessionPool,
    result_payload,
)

__all__ = [
    "CANCELLED",
    "DEFAULT_MAX_BUDGET",
    "DEFAULT_QUEUE_SIZE",
    "DEFAULT_RESULT_CACHE_SIZE",
    "DEFAULT_SESSION_POOL_SIZE",
    "DEFAULT_TRANSITION_CACHE_SIZE",
    "DEFAULT_WORKERS",
    "DONE",
    "FAILED",
    "FINISHED_STATES",
    "QUEUED",
    "RUNNING",
    "EngineSession",
    "Job",
    "JobScheduler",
    "LatencyHistogram",
    "PRIORITIES",
    "QueryRequest",
    "QueryService",
    "ResultCache",
    "SEMANTICS",
    "ServiceClient",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceServer",
    "SessionPool",
    "make_server",
    "result_payload",
]
