"""Persistent engine sessions: parse once, keep the kernel warm.

A one-shot CLI run pays the full bill on every invocation: parse the
program, decode the database, build the chain or walk it cold.  An
:class:`EngineSession` is the long-lived alternative — the parsed
kernel (or datalog program), the decoded initial :class:`Database`, and
one warm :class:`~repro.perf.cache.TransitionCache` live as long as the
session does, so repeated queries against the same program (different
events, seeds, ε/δ, modes) skip everything but the actual evaluation,
and even that draws memoized transition rows.

Sessions are immutable after preparation apart from the cache and the
served-request counters, and the cache is thread-safe, so one session
may serve concurrent scheduler workers.  A :class:`SessionPool` bounds
how many prepared programs stay resident (LRU beyond ``maxsize``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Mapping

from repro.analysis import AnalysisResult, DiagnosticReport, analyze_source
from repro.analysis.datalog import check_rules
from repro.analysis.kernel import check_kernel
from repro.core import ForeverQuery, InflationaryQuery
from repro.core.events import parse_event
from repro.errors import InvalidRequestError, ProgramRejectedError, ReproError
from repro.io import database_from_json, pc_database_from_json
from repro.perf.cache import TransitionCache
from repro.runtime import DegradationPolicy, RunContext, evaluate_forever_resilient
from repro.service.request import QueryRequest

#: Default capacity of a session's warm transition cache.
DEFAULT_TRANSITION_CACHE_SIZE = 4096

#: Default number of resident sessions in a pool.
DEFAULT_SESSION_POOL_SIZE = 32


def _exact_payload(result) -> dict:
    payload = {
        "kind": "exact",
        "method": result.method,
        "probability": str(result.probability),
        "probability_float": float(result.probability),
        "states_explored": result.states_explored,
    }
    if result.details.get("backend"):
        payload["backend"] = result.details["backend"]
    return payload


def _sampling_payload(result) -> dict:
    payload = {
        "kind": "sampling",
        "method": result.method,
        "estimate": result.estimate,
        "samples": result.samples,
        "positive": result.positive,
        "epsilon": result.epsilon,
        "delta": result.delta,
    }
    for key in ("burn_in", "workers", "backend"):
        if result.details.get(key) is not None:
            payload[key] = result.details[key]
    if result.details.get("cache"):
        payload["transition_cache"] = dict(result.details["cache"])
    return payload


def _sparse_payload(result) -> dict:
    lo, hi = result.interval
    payload = {
        "kind": "sparse",
        "method": result.method,
        "probability_float": result.probability,
        "interval": [lo, hi],
        "certificate": result.certificate.as_dict(),
        "states_explored": result.states_explored,
    }
    for key in ("backend", "sccs", "leaf_sccs", "irreducible"):
        if result.details.get(key) is not None:
            payload[key] = result.details[key]
    return payload


def result_payload(result) -> dict:
    """JSON-friendly rendering of an evaluator result."""
    # Certified results also expose .probability (a float), so the
    # certificate check must come first.
    if hasattr(result, "certificate"):
        return _sparse_payload(result)
    if hasattr(result, "probability"):
        return _exact_payload(result)
    return _sampling_payload(result)


def _rejection(report: DiagnosticReport) -> ProgramRejectedError:
    """A 400-mapped error carrying the analyzer's findings.

    The rejecting codes are the error-level ones when any exist;
    otherwise (event admission promotes ``DD002``) every reported code.
    """
    primary = report.errors or list(report)
    summary = primary[0].message if primary else "program rejected"
    codes = list(report.error_codes()) or list(report.codes())
    return ProgramRejectedError(
        f"program rejected by static analysis: {summary}",
        details={
            "diagnostics": [d.as_dict() for d in report],
            "codes": codes,
        },
    )


class EngineSession:
    """A prepared program: parsed artifacts plus a warm transition cache.

    Build one with :meth:`prepare`; evaluate any number of requests that
    share its :meth:`~repro.service.request.QueryRequest.session_key`
    with :meth:`evaluate`.

    Examples
    --------
    >>> request = QueryRequest.from_json({
    ...     "semantics": "forever",
    ...     "program": "C := rename[J->I](project[J](repair-key[I@P](C join E)))",
    ...     "database": {"relations": {
    ...         "C": {"columns": ["I"], "rows": [["a"]]},
    ...         "E": {"columns": ["I", "J", "P"],
    ...               "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]]}}},
    ...     "event": "C(b)",
    ... })
    >>> session = EngineSession.prepare(request)
    >>> session.evaluate(request)["probability"]
    '1/3'
    >>> session.requests_served
    1
    """

    def __init__(
        self,
        key: str,
        semantics: str,
        kernel=None,
        program=None,
        database=None,
        pc_tables=None,
        cache_size: int = DEFAULT_TRANSITION_CACHE_SIZE,
    ):
        self.key = key
        self.semantics = semantics
        self.kernel = kernel
        self.program = program
        self.database = database
        self.pc_tables = pc_tables
        self.analysis: AnalysisResult | None = None
        self.created_at = time.time()
        self.requests_served = 0
        self._served_lock = threading.Lock()
        self._cache_size = cache_size
        # Columnar bundle: None = not yet requested; a str = compile
        # failed with that reason; a tuple = (CompiledKernel,
        # ColumnarDatabase, columnar TransitionCache), built once and
        # shared by every columnar request on this session.
        self._columnar: "tuple | str | None" = None
        self._columnar_lock = threading.Lock()
        self._cache: TransitionCache | None = None
        if kernel is not None:
            memo_kernel = kernel
            if semantics == "inflationary":
                # The inflationary fixpoint check enumerates the pc-free
                # kernel; memoize that one (see evaluate_inflationary_sampling).
                memo_kernel = kernel.without_pc_tables()
            self._cache = TransitionCache(memo_kernel, maxsize=cache_size)

    @classmethod
    def prepare(
        cls,
        request: QueryRequest,
        cache_size: int = DEFAULT_TRANSITION_CACHE_SIZE,
    ) -> "EngineSession":
        """Parse, statically analyze, and compile a request's program once.

        The full analyzer (:mod:`repro.analysis`) runs here, at admission
        time; a program with error-level diagnostics never becomes a
        session — :class:`~repro.errors.ProgramRejectedError` carries the
        diagnostic list (rendered as HTTP 400 by the service).  Event-
        dependent checks are *not* run here (a session is shared across
        events); see :meth:`check_event`.
        """
        database = database_from_json(dict(request.database))
        pc = (
            pc_database_from_json(dict(request.pc_tables))
            if request.pc_tables is not None
            else None
        )
        analysis = analyze_source(
            request.semantics, request.program, database=database, pc_tables=pc
        )
        if analysis.report.has_errors:
            raise _rejection(analysis.report)
        session = cls(
            key=request.session_key(),
            semantics=request.semantics,
            kernel=analysis.kernel,
            program=analysis.program,
            database=database,
            pc_tables=pc,
            cache_size=cache_size,
        )
        session.analysis = analysis
        return session

    # -- introspection --------------------------------------------------

    @property
    def cache(self) -> TransitionCache | None:
        """The session's warm transition cache (``None`` for datalog)."""
        return self._cache

    @property
    def hints(self):
        """The analyzer's :class:`~repro.analysis.hints.PlanHints` (or None)."""
        return self.analysis.hints if self.analysis is not None else None

    def check_event(self, event_text: str) -> DiagnosticReport:
        """Run the event-dependent checks for one request.

        Sessions are shared across events, so :meth:`prepare` cannot run
        these.  Returns the report (warnings like dead rules included);
        raises :class:`~repro.errors.ProgramRejectedError` when the event
        itself is broken (``PE002``) or provably constant-false against
        this program (``DD002``/``DD003`` are error-level here: evaluating
        would silently return probability 0 for a typo).
        """
        report = DiagnosticReport()
        try:
            event = parse_event(event_text)
        except ReproError as error:
            report.add("PE002", f"cannot parse the query event: {error}")
            raise _rejection(report)
        if self.program is not None:
            full = check_rules(
                list(self.program.rules),
                database=self.database,
                pc_tables=self.pc_tables,
                event=event,
            )
        else:
            full = check_kernel(
                self.kernel,
                database=self.database,
                event=event,
                semantics=self.semantics,
            )
        event_codes = {"DD001", "DD002", "DD003", "DD004", "PH003"}
        for diagnostic in full:
            if diagnostic.code in event_codes:
                report.extend([diagnostic])
        if any(d.code in ("DD002", "DD003") for d in report):
            raise _rejection(report)
        return report

    def _columnar_artifacts(self, context: RunContext | None):
        """The session's compiled columnar bundle, built on first use.

        Returns ``(CompiledKernel, ColumnarDatabase, TransitionCache)``
        or ``None`` when the program is kernel-ineligible — the reason
        is remembered, and every affected request counts one fallback
        (``repro_kernel_fallback_total``).
        """
        with self._columnar_lock:
            state = self._columnar
            if state is None:
                from repro.kernel import KernelCompileError, compile_kernel

                try:
                    compiled, initial = compile_kernel(self.kernel, self.database)
                except KernelCompileError as error:
                    state = str(error)
                else:
                    state = (
                        compiled,
                        initial,
                        TransitionCache(compiled, maxsize=self._cache_size),
                    )
                self._columnar = state
        if isinstance(state, str):
            from repro.core.evaluation.backend import record_fallback

            record_fallback(state, context)
            return None
        return state

    def _compiled_query(self, query_cls, event, context: RunContext | None):
        """``query_cls`` over the compiled kernel, or ``None`` → frozenset.

        Returns ``(query, columnar_initial, columnar_cache)``.  The
        kernel compiles once per session; the event compiles per
        request (sessions are shared across events).
        """
        artifacts = self._columnar_artifacts(context)
        if artifacts is None:
            return None
        compiled, initial, cache = artifacts
        from repro.core.evaluation.backend import record_fallback
        from repro.kernel import KernelCompileError, compile_event

        try:
            compiled_event = compile_event(event, compiled)
        except KernelCompileError as error:
            record_fallback(str(error), context)
            return None
        return query_cls(compiled, compiled_event), initial, cache

    def stats(self) -> dict:
        """JSON-friendly session snapshot for the metrics endpoint."""
        hints = self.hints
        columnar = self._columnar
        return {
            "key": self.key,
            "semantics": self.semantics,
            "created_at": self.created_at,
            "requests_served": self.requests_served,
            "transition_cache": self._cache.stats() if self._cache else None,
            "plan_hints": hints.as_dict() if hints is not None else None,
            "columnar": (
                {"compiled": True, "transition_cache": columnar[2].stats()}
                if isinstance(columnar, tuple)
                else {"compiled": False, "reason": columnar}
                if columnar is not None
                else None
            ),
        }

    # -- evaluation -----------------------------------------------------

    def evaluate(
        self,
        request: QueryRequest,
        context: RunContext | None = None,
    ) -> dict:
        """Evaluate one request on this prepared engine.

        Returns the JSON-friendly result payload.  Raises any
        :class:`~repro.errors.ReproError` the evaluators raise —
        budget exhaustion and cancellation included — unchanged, so the
        scheduler can classify the failure.
        """
        if request.session_key() != self.key:
            raise InvalidRequestError(
                "request does not belong to this session "
                f"(session {self.key[:12]}…, request {request.session_key()[:12]}…)"
            )
        dispatch = {
            "forever": self._evaluate_forever,
            "inflationary": self._evaluate_inflationary,
            "datalog": self._evaluate_datalog,
        }
        kernel_ops_before = self._op_timings_snapshot()
        payload = dispatch[self.semantics](request, context)
        self._record_kernel_ops(context, kernel_ops_before)
        with self._served_lock:
            self.requests_served += 1
        return payload

    def _op_timings_snapshot(self) -> "dict[str, dict[str, float]] | None":
        columnar = self._columnar
        if isinstance(columnar, tuple):
            return columnar[0].op_timings()
        return None

    def _record_kernel_ops(
        self,
        context: RunContext | None,
        before: "dict[str, dict[str, float]] | None",
    ) -> None:
        """Attribute this request's share of the compiled kernel's
        cumulative per-operator timings to the run's resource ledger.

        The session's compiled kernel is shared, so the counters only
        ever grow; the request's share is the delta across ``evaluate``.
        A request that triggered the compile has no *before* snapshot —
        the whole total is its share.
        """
        if context is None:
            return
        columnar = self._columnar
        if not isinstance(columnar, tuple):
            return
        after = columnar[0].op_timings()
        prior = before or {}
        delta: dict[str, dict[str, float]] = {}
        for op, stats in after.items():
            base = prior.get(op, {"calls": 0, "seconds": 0.0})
            calls = stats["calls"] - base["calls"]
            seconds = stats["seconds"] - base["seconds"]
            if calls > 0 or seconds > 0:
                delta[op] = {"calls": calls, "seconds": seconds}
        if delta:
            context.ledger.record_kernel_ops(delta)

    @property
    def _deterministic(self) -> bool:
        hints = self.hints
        return hints is not None and hints.deterministic

    def _parallel_config(self, params: Mapping[str, Any]):
        workers = params.get("workers") or 1
        if workers <= 1:
            return None
        from repro.perf import ParallelConfig

        return ParallelConfig(workers=workers)

    def _walk_cache(self, params: Mapping[str, Any]) -> TransitionCache | None:
        """The warm cache, unless the request opts out.

        ``cache_size: 0`` disables caching for the request (the
        polynomial ``sample_transition`` path, e.g. for kernels with
        exponential per-state support); any other value keeps the
        session cache — per-request sizes would defeat sharing.
        """
        if params.get("cache_size") == 0:
            return None
        return self._cache

    def _evaluate_partitioned(
        self,
        query,
        params: Mapping[str, Any],
        max_states: int,
        context: RunContext | None,
    ) -> dict | None:
        """The ``partition: "auto"`` path (``PP001``).

        Executes the admission-time partition plan: each independent
        component on its own rung, recombined by independence.  Returns
        ``None`` when the plan does not apply (single component, event
        does not decompose) — the caller evaluates whole-program.
        """
        from repro.runtime.partition_exec import can_partition, evaluate_partitioned

        plan = self.analysis.partition if self.analysis is not None else None
        if plan is None or not can_partition(plan, query.event):
            return None
        policy = None
        if not isinstance(query, InflationaryQuery):
            policy = DegradationPolicy(
                mode=params.get("fallback") or "none",
                sparse_epsilon=params.get("epsilon") or 1e-6,
                mcmc_epsilon=params.get("epsilon") or 0.1,
                mcmc_delta=params.get("delta") or 0.05,
                mcmc_samples=params.get("samples"),
                mcmc_burn_in=params.get("burn_in"),
                mcmc_cache_size=params.get("cache_size"),
            )
        prefer_sparse = params.get("backend") == "sparse"
        result = evaluate_partitioned(
            query,
            self.database,
            plan,
            max_states=max_states,
            policy=policy,
            context=context,
            seed=params.get("seed"),
            backend="columnar" if params.get("backend") == "columnar" else None,
            prefer_sparse=prefer_sparse,
            workers=params.get("workers") or 1,
        )
        payload = result_payload(result)
        payload["partition"] = {
            "components": len(plan.components),
            "evaluated": len(result.details["components"]),
            "pruned": list(result.details["pruned"]),
        }
        if context is not None:
            downgrades = context.report().downgrades
            if downgrades:
                payload["downgrades"] = [d.as_dict() for d in downgrades]
        return payload

    def _evaluate_forever(
        self, request: QueryRequest, context: RunContext | None
    ) -> dict:
        from repro.core import (
            evaluate_forever_exact,
            evaluate_forever_lumped,
            evaluate_forever_mcmc,
        )

        params = request.params
        query = ForeverQuery(self.kernel, parse_event(request.event))
        initial = self.database
        max_states = params.get("max_states") or 20_000
        if params.get("partition") == "auto":
            partitioned = self._evaluate_partitioned(
                query, params, max_states, context
            )
            if partitioned is not None:
                return partitioned
        fallback = params.get("fallback") or "none"
        cache = self._walk_cache(params)
        backend_param: str | None = None
        prefer_sparse = params.get("backend") == "sparse"
        if params.get("backend") == "columnar":
            if (params.get("workers") or 1) > 1:
                # Compiled plans hold closures and arrays that do not
                # pickle; the parallel dispatch ships the original query
                # and each worker compiles in-process.
                backend_param = "columnar"
            else:
                compiled = self._compiled_query(
                    ForeverQuery, query.event, context
                )
                if compiled is not None:
                    query, initial, columnar_cache = compiled
                    cache = (
                        None if params.get("cache_size") == 0 else columnar_cache
                    )
                    backend_param = "columnar"
        if fallback != "none" or prefer_sparse:
            policy = DegradationPolicy(
                mode=fallback,
                sparse_epsilon=params.get("epsilon") or 1e-6,
                mcmc_epsilon=params.get("epsilon") or 0.1,
                mcmc_delta=params.get("delta") or 0.05,
                mcmc_samples=params.get("samples"),
                mcmc_burn_in=params.get("burn_in"),
                mcmc_workers=params.get("workers") or 1,
                mcmc_cache_size=params.get("cache_size"),
            )
            result = evaluate_forever_resilient(
                query,
                initial,
                max_states=max_states,
                policy=policy,
                context=context,
                rng=params.get("seed"),
                cache=cache,
                hints=self.hints,
                backend=backend_param,
                prefer_sparse=prefer_sparse,
            )
            payload = result_payload(result)
            if context is not None:
                downgrades = context.report().downgrades
                if downgrades:
                    payload["downgrades"] = [d.as_dict() for d in downgrades]
            return payload
        wants_sampling = (
            bool(params.get("mcmc"))
            or params.get("samples") is not None
            or params.get("epsilon") is not None
        )
        if wants_sampling and self._deterministic:
            # PH001: the kernel makes no probabilistic choice — the
            # requested estimate would converge on a number a single
            # exact run computes outright.
            result = evaluate_forever_exact(
                query, initial, max_states=max_states,
                context=context, cache=cache, backend=backend_param,
            )
            payload = result_payload(result)
            payload["hint_applied"] = "PH001"
            return payload
        if wants_sampling:
            result = evaluate_forever_mcmc(
                query,
                initial,
                epsilon=params.get("epsilon") or 0.1,
                delta=params.get("delta") or 0.05,
                samples=params.get("samples"),
                burn_in=params.get("burn_in"),
                rng=params.get("seed"),
                context=context,
                cache=cache,
                parallel=self._parallel_config(params),
                backend=backend_param,
            )
            return result_payload(result)
        if params.get("lumped"):
            result = evaluate_forever_lumped(
                query, initial, max_states=max_states,
                context=context, cache=cache, backend=backend_param,
            )
            return result_payload(result)
        result = evaluate_forever_exact(
            query, initial, max_states=max_states,
            context=context, cache=cache, backend=backend_param,
        )
        return result_payload(result)

    def _evaluate_inflationary(
        self, request: QueryRequest, context: RunContext | None
    ) -> dict:
        from repro.core import (
            evaluate_inflationary_exact,
            evaluate_inflationary_sampling,
        )

        params = request.params
        query = InflationaryQuery(self.kernel, parse_event(request.event))
        initial = self.database
        if params.get("partition") == "auto":
            partitioned = self._evaluate_partitioned(
                query, params, params.get("max_states") or 100_000, context
            )
            if partitioned is not None:
                return partitioned
        cache = self._walk_cache(params)
        backend_param: str | None = None
        used_columnar = False
        if params.get("backend") == "columnar":
            if (params.get("workers") or 1) > 1:
                # See _evaluate_forever: compiled plans do not pickle.
                backend_param = "columnar"
            else:
                compiled = self._compiled_query(
                    InflationaryQuery, query.event, context
                )
                if compiled is not None:
                    query, initial, columnar_cache = compiled
                    cache = (
                        None if params.get("cache_size") == 0 else columnar_cache
                    )
                    backend_param = "columnar"
                    used_columnar = True
        wants_sampling = (
            params.get("samples") is not None or params.get("epsilon") is not None
        )
        if wants_sampling and self._deterministic:
            result = evaluate_inflationary_exact(
                query,
                initial,
                max_states=params.get("max_states") or 100_000,
                context=context,
            )
            payload = result_payload(result)
            if used_columnar:
                payload["backend"] = "columnar"
            payload["hint_applied"] = "PH001"
            return payload
        if wants_sampling:
            result = evaluate_inflationary_sampling(
                query,
                initial,
                epsilon=params.get("epsilon") or 0.05,
                delta=params.get("delta") or 0.05,
                samples=params.get("samples"),
                rng=params.get("seed"),
                context=context,
                cache=cache,
                parallel=self._parallel_config(params),
                backend=backend_param,
            )
            return result_payload(result)
        result = evaluate_inflationary_exact(
            query,
            initial,
            max_states=params.get("max_states") or 100_000,
            context=context,
        )
        payload = result_payload(result)
        if used_columnar:
            payload["backend"] = "columnar"
        return payload

    def _evaluate_datalog(
        self, request: QueryRequest, context: RunContext | None
    ) -> dict:
        from repro.datalog import evaluate_datalog_exact, evaluate_datalog_sampling

        params = request.params
        event = parse_event(request.event)
        wants_sampling = (
            params.get("samples") is not None or params.get("epsilon") is not None
        )
        if wants_sampling and self._deterministic:
            result = evaluate_datalog_exact(
                self.program,
                self.database,
                event,
                pc_tables=self.pc_tables,
                max_states=params.get("max_states") or 100_000,
                context=context,
            )
            payload = result_payload(result)
            payload["pc_worlds"] = result.details.get("pc_worlds", 1)
            payload["hint_applied"] = "PH001"
            return payload
        if wants_sampling:
            result = evaluate_datalog_sampling(
                self.program,
                self.database,
                event,
                pc_tables=self.pc_tables,
                epsilon=params.get("epsilon") or 0.05,
                delta=params.get("delta") or 0.05,
                samples=params.get("samples"),
                rng=params.get("seed"),
                context=context,
            )
            return result_payload(result)
        result = evaluate_datalog_exact(
            self.program,
            self.database,
            event,
            pc_tables=self.pc_tables,
            max_states=params.get("max_states") or 100_000,
            context=context,
        )
        payload = result_payload(result)
        payload["pc_worlds"] = result.details.get("pc_worlds", 1)
        return payload


class SessionPool:
    """A bounded, thread-safe LRU pool of :class:`EngineSession`.

    ``get_or_create`` is the only entry point: the pool either returns
    the resident session for the request's
    :meth:`~repro.service.request.QueryRequest.session_key` (a *hit* —
    parse work and cache warmth are reused) or prepares a fresh one,
    evicting the least-recently-used session beyond ``maxsize``.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_SESSION_POOL_SIZE,
        transition_cache_size: int = DEFAULT_TRANSITION_CACHE_SIZE,
    ):
        if maxsize < 1:
            raise ReproError(f"session pool maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self.transition_cache_size = transition_cache_size
        self._sessions: OrderedDict[str, EngineSession] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def get_or_create(self, request: QueryRequest) -> EngineSession:
        """The resident session for the request, preparing it on miss."""
        key = request.session_key()
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self.hits += 1
                self._sessions.move_to_end(key)
                return session
            self.misses += 1
        # Prepare outside the lock: parsing can be slow and two racing
        # requests for the same program at worst parse twice.
        session = EngineSession.prepare(
            request, cache_size=self.transition_cache_size
        )
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
            self._sessions[key] = session
            if len(self._sessions) > self.maxsize:
                self._sessions.popitem(last=False)
                self.evictions += 1
        return session

    def stats(self) -> dict:
        """JSON-friendly pool snapshot for the metrics endpoint.

        Counters and the session list are read in one critical section,
        so a concurrent eviction can't pair a new size with stale
        counters; per-session stats are rendered outside the lock (they
        take the sessions' own locks).
        """
        with self._lock:
            sessions = list(self._sessions.values())
            hits, misses, evictions = self.hits, self.misses, self.evictions
        total = hits + misses
        return {
            "size": len(sessions),
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": (hits / total) if total else None,
            "sessions": [session.stats() for session in sessions],
        }
