"""A bounded LRU of finished query results, keyed by canonical SHA-256.

The key is :meth:`QueryRequest.cache_key
<repro.service.request.QueryRequest.cache_key>` — a canonical hash of
(program text, database, event, evaluation parameters incl. seed,
semantics) — so *identical requests* are served from memory without
re-evaluation.  Exact results are always cacheable; sampling results
only when their seed is pinned (an unseeded run is fresh randomness by
contract), which the service checks via
:meth:`QueryRequest.is_cacheable` before consulting this cache.

Entries are plain JSON-friendly payload dicts (never evaluator
objects), so a cached response is byte-identical to the original one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.errors import ServiceError

#: Default number of retained results.
DEFAULT_RESULT_CACHE_SIZE = 1024


class ResultCache:
    """Thread-safe bounded LRU of result payloads with hit/miss counters.

    Examples
    --------
    >>> cache = ResultCache(maxsize=2)
    >>> cache.get("k1") is None
    True
    >>> cache.put("k1", {"probability": "1/3"})
    >>> cache.get("k1")
    {'probability': '1/3'}
    >>> (cache.hits, cache.misses)
    (1, 1)
    """

    def __init__(self, maxsize: int = DEFAULT_RESULT_CACHE_SIZE):
        if maxsize < 1:
            raise ServiceError(f"result cache maxsize must be >= 1, got {maxsize!r}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Any | None:
        """The cached payload for ``key``, or ``None`` (counted)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            self._entries.move_to_end(key)
            return entry

    def put(self, key: str, payload: Any) -> None:
        """Retain ``payload`` under ``key``, evicting LRU beyond bound."""
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            if len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        """JSON-friendly counter snapshot for the metrics endpoint.

        Read in one critical section so a concurrent eviction can't make
        the snapshot pair a new size with stale counters.
        """
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
            size = len(self._entries)
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": (hits / total) if total else None,
        }
