"""Bounded job scheduling: admission, lanes, workers, cancellation.

The serving layer's concurrency heart.  A :class:`JobScheduler` owns

* a **bounded queue** with two lanes — ``high`` before ``normal``,
  FIFO within a lane — whose total capacity is ``queue_size``; a
  submission beyond it is rejected at admission with
  :class:`~repro.errors.QueueFullError` (the HTTP front-end maps this
  to 429 with ``Retry-After``) instead of letting latency grow without
  bound;
* **load shedding before rejection**: as the queue fills past
  watermarks, admitted jobs are degraded to cheaper ladder rungs —
  first tighter budgets, then coarser sampling accuracy (larger ε/δ or
  halved explicit sample counts, *reported honestly* on the result) —
  so overload degrades answers gracefully instead of dropping them;
  every shed decision is recorded on the job, on its
  :class:`~repro.runtime.RunReport`, and in the metrics registry;
* a pool of **worker threads** that execute jobs through the callable
  the owner injects (the :class:`~repro.service.service.QueryService`
  method that consults the result cache and the session pool);
* **retry re-admission**: a job failing with a *retryable* error (a
  crashed worker pool, an injected transient fault) is re-queued with
  full-jitter backoff up to ``max_job_retries`` times instead of
  failing outright — chunks and jobs are idempotent computations, so
  the retried run reproduces the same answer;
* **per-job budgets**: every admitted job gets a
  :class:`~repro.runtime.RunContext` with the request's budget,
  resolved against the server's default and clamped to its admission
  cap, so one pathological query exhausts its own budget (recorded in
  its :class:`~repro.runtime.RunReport`), never the server;
* **idempotent submits**: a client-generated request id maps repeated
  submissions (an HTTP retry after a lost response) onto the already
  admitted job instead of double-scheduling the work;
* a **registry** of job records — queued/running/done/failed/cancelled
  — polled by ``GET /v1/jobs/<id>`` and pruned of the oldest finished
  entries beyond ``registry_limit``;
* **cancellation** at any point: a queued job is marked and skipped, a
  running one has its context's cooperative token cancelled and stops
  within one transition step.  Shutdown leaves no job behind in a
  non-terminal state: queued jobs are cancelled at shutdown, and with
  ``cancel_running=True`` any job whose worker fails to stop within
  the join grace is force-finished as cancelled.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.errors import (
    JobNotFoundError,
    QueueFullError,
    ReproError,
    RunCancelledError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.faults import SITE_SCHEDULER_EXECUTE, maybe_fire
from repro.obs.logs import get_logger, job_logger
from repro.obs.trace import MemorySink, Tracer
from repro.runtime import Budget, RunContext
from repro.runtime.retry import RetryPolicy, is_retryable
from repro.service.metrics import ServiceMetrics
from repro.service.request import QueryRequest

logger = get_logger("scheduler")

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

FINISHED_STATES = (DONE, FAILED, CANCELLED)

#: Default bounded-queue capacity.
DEFAULT_QUEUE_SIZE = 64

#: Default worker-thread count.
DEFAULT_WORKERS = 2

#: Finished jobs retained for polling before pruning.
DEFAULT_REGISTRY_LIMIT = 1024

#: Default per-job trace event bound when job tracing is enabled.
DEFAULT_TRACE_EVENTS = 2048

#: Default retry allowance for jobs failing with retryable errors.
DEFAULT_JOB_RETRIES = 2

#: Queue-depth fractions at which the shedding ladder engages.
SHED_BUDGET_WATERMARK = 0.5    # tighten budgets
SHED_ACCURACY_WATERMARK = 0.8  # also coarsen sampling accuracy

#: Budget scale applied at the first shedding rung.
SHED_BUDGET_SCALE = 0.5

#: ε/δ inflation at the accuracy rung (capped), and the cap.
SHED_ACCURACY_SCALE = 2.0
SHED_ACCURACY_CAP = 0.5

#: Default sampler accuracy assumed when a shed request names none.
_DEFAULT_EPSILON = 0.1
_DEFAULT_DELTA = 0.05

#: ``Retry-After`` seconds suggested on 429 rejections.
REJECT_RETRY_AFTER = 1.0


def _round3(seconds: float | None) -> float | None:
    return round(seconds, 3) if seconds is not None else None


def _scale_budget(budget: Budget, scale: float) -> Budget:
    """A budget with every bounded axis scaled down (integers kept >= 1)."""
    def axis(value: float | int | None, integral: bool) -> Any:
        if value is None:
            return None
        return max(1, int(value * scale)) if integral else value * scale

    return Budget(
        wall_clock=axis(budget.wall_clock, integral=False),
        max_steps=axis(budget.max_steps, integral=True),
        max_states=axis(budget.max_states, integral=True),
    )


def _coarsen_accuracy(request: QueryRequest) -> tuple[QueryRequest, str] | None:
    """One accuracy rung down, or ``None`` when nothing can be shed.

    Explicit sample counts are halved (never below 1); otherwise the
    (ε, δ) guarantee is inflated by :data:`SHED_ACCURACY_SCALE` and
    capped at :data:`SHED_ACCURACY_CAP`.  The degraded parameters ride
    on the request itself, so the result's reported guarantee — and its
    cache key — are those of the computation actually run.
    """
    if not request._wants_sampling():
        return None
    params = dict(request.params)
    samples = params.get("samples")
    if samples is not None:
        halved = max(1, int(samples) // 2)
        if halved == samples:
            return None
        params["samples"] = halved
        note = f"samples halved {samples} -> {halved}"
    else:
        epsilon = params.get("epsilon")
        delta = params.get("delta")
        eps_before = _DEFAULT_EPSILON if epsilon is None else float(epsilon)
        dlt_before = _DEFAULT_DELTA if delta is None else float(delta)
        eps_after = min(SHED_ACCURACY_CAP, eps_before * SHED_ACCURACY_SCALE)
        dlt_after = min(SHED_ACCURACY_CAP, dlt_before * SHED_ACCURACY_SCALE)
        if eps_after == eps_before and dlt_after == dlt_before:
            return None
        params["epsilon"] = eps_after
        params["delta"] = dlt_after
        note = (
            f"accuracy coarsened epsilon {eps_before} -> {eps_after}, "
            f"delta {dlt_before} -> {dlt_after}"
        )
    return replace(request, params=params), note


@dataclass
class Job:
    """One scheduled query: request, lifecycle, result, accounting."""

    id: str
    request: QueryRequest
    budget: Budget
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    context: RunContext | None = None
    result: Any = None
    error: dict | None = None
    report: dict | None = None
    cache_hit: bool = False
    cancel_requested: bool = False
    trace: list[dict] | None = None
    #: Load-shedding actions applied at admission (empty = none).
    shed: list[str] = field(default_factory=list)
    #: Execution attempts so far (> 1 after a retry re-admission).
    attempts: int = 0
    #: Earliest wall-clock time the next attempt may start (backoff).
    not_before: float = 0.0
    #: Client-supplied idempotency key, if any.
    request_id: str | None = None

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES

    def queue_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def as_dict(self, include_request: bool = False) -> dict:
        """JSON-friendly job record for the HTTP API."""
        payload: dict = {
            "id": self.id,
            "state": self.state,
            "semantics": self.request.semantics,
            "priority": self.request.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": self.queue_seconds(),
            "run_seconds": self.run_seconds(),
            "cache_hit": self.cache_hit,
            "result": self.result,
            "error": self.error,
            "report": self.report,
            "trace_available": self.trace is not None,
            "shed": list(self.shed),
            "attempts": self.attempts,
        }
        if include_request:
            payload["request"] = self.request.as_dict()
        return payload


class JobScheduler:
    """Bounded two-lane work queue with a thread worker pool.

    Parameters
    ----------
    executor:
        ``executor(job) -> payload`` — runs the job's query and returns
        its JSON-friendly result payload; it may set ``job.cache_hit``.
        Everything it raises is classified here: a
        :class:`~repro.errors.RunCancelledError` finishes the job as
        ``cancelled``, any other :class:`~repro.errors.ReproError` as
        ``failed`` with the error's type/message/details recorded.
    workers / queue_size:
        Pool width and admission bound.
    default_budget / max_budget:
        Per-job budget resolution (see
        :meth:`QueryRequest.make_budget`): the default fills axes the
        request leaves open; the cap clamps every admitted job.
    metrics:
        A :class:`~repro.service.metrics.ServiceMetrics` to notify;
        one is created when omitted.  Its backing
        :class:`~repro.obs.metrics.MetricsRegistry` is handed to every
        job's :class:`~repro.runtime.RunContext`, so run-level counters
        (downgrades, steps, states) land in the same registry the
        ``/v1/metrics`` endpoints render.
    trace_events:
        When > 0, every job runs with an in-memory
        :class:`~repro.obs.trace.Tracer` bounded to this many step
        events; the finished trace is kept on ``job.trace`` and served
        by ``GET /v1/jobs/<id>/trace``.  ``0`` disables job tracing
        (the :data:`~repro.obs.trace.NULL_TRACER` fast path).

    Examples
    --------
    >>> scheduler = JobScheduler(lambda job: {"answer": 42}, workers=1)
    >>> request = QueryRequest.from_json({
    ...     "semantics": "forever", "program": "C := C", "event": "C(a)",
    ...     "database": {"relations": {"C": {"columns": ["I"], "rows": [["a"]]}}}})
    >>> scheduler.start()
    >>> job = scheduler.submit(request)
    >>> scheduler.wait(job.id, timeout=10.0).result
    {'answer': 42}
    >>> scheduler.shutdown()
    """

    def __init__(
        self,
        executor: Callable[[Job], Any],
        workers: int = DEFAULT_WORKERS,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        default_budget: Budget | None = None,
        max_budget: Budget | None = None,
        metrics: ServiceMetrics | None = None,
        registry_limit: int = DEFAULT_REGISTRY_LIMIT,
        trace_events: int = 0,
        max_job_retries: int = DEFAULT_JOB_RETRIES,
        retry_policy: RetryPolicy | None = None,
        load_shedding: bool = True,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers!r}")
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size!r}")
        if registry_limit < 1:
            raise ServiceError(f"registry_limit must be >= 1, got {registry_limit!r}")
        if trace_events < 0:
            raise ServiceError(f"trace_events must be >= 0, got {trace_events!r}")
        if max_job_retries < 0:
            raise ServiceError(
                f"max_job_retries must be >= 0, got {max_job_retries!r}"
            )
        self._executor = executor
        self.workers = workers
        self.queue_size = queue_size
        self.default_budget = default_budget
        self.max_budget = max_budget
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.registry_limit = registry_limit
        self.trace_events = trace_events
        self.max_job_retries = max_job_retries
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RetryPolicy(max_attempts=max_job_retries + 1,
                             base_delay=0.05, max_delay=1.0)
        )
        self.load_shedding = load_shedding
        self._retry_rng = random.Random(0x5EDA)
        self._run_steps = self.metrics.registry.counter(
            "repro_run_steps_total",
            "Transition steps consumed by finished jobs",
        )
        self._run_states = self.metrics.registry.counter(
            "repro_run_states_total",
            "Chain states materialised by finished jobs",
        )
        self._shed_total = self.metrics.registry.counter(
            "repro_load_shed_total",
            "Admission-time load-shedding actions, by rung",
        )
        self._job_retries = self.metrics.registry.counter(
            "repro_job_retries_total",
            "Retryable job failures re-admitted with backoff",
        )
        self._lanes = {"high": deque(), "normal": deque()}
        self._jobs: dict[str, Job] = {}
        self._order: deque[str] = deque()  # submission order, for pruning
        self._request_ids: dict[str, str] = {}  # idempotency key -> job id
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._job_finished = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._shutdown = False
        self._in_flight = 0
        self._counter = itertools.count(1)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._running:
                return
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop the pool; queued jobs are cancelled, not silently lost.

        After the join grace, with ``cancel_running=True``, any job a
        wedged worker left in ``running`` is force-finished as
        ``cancelled`` — shutdown never strands a job in a non-terminal
        state.  :meth:`_finish_locked` is idempotent, so a worker thread
        completing late cannot double-finish the record.
        """
        with self._lock:
            self._running = False
            self._shutdown = True
            for lane in self._lanes.values():
                for job in lane:
                    if job.state == QUEUED:
                        self._finish_locked(job, CANCELLED, error={
                            "type": "RunCancelledError",
                            "message": "server shutting down",
                            "details": {},
                        })
                lane.clear()
            if cancel_running:
                for job in self._jobs.values():
                    if job.state == RUNNING and job.context is not None:
                        job.context.cancel()
            self._work_available.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
            if cancel_running:
                with self._lock:
                    for job in self._jobs.values():
                        if job.state == RUNNING:
                            self._finish_locked(job, CANCELLED, error={
                                "type": "RunCancelledError",
                                "message": "server shut down while job was running",
                                "details": {},
                            })
        self._threads.clear()

    # -- admission ------------------------------------------------------

    def submit(self, request: QueryRequest, request_id: str | None = None) -> Job:
        """Admit one request; raises :class:`QueueFullError` at capacity.

        ``request_id`` is a client-generated idempotency key: a repeat
        submission carrying a key already mapped to a registered job
        returns that job instead of scheduling the work twice.  As the
        queue fills past the shedding watermarks, the admitted job is
        degraded to a cheaper rung (see the module docstring) before the
        hard capacity rejection kicks in.
        """
        with self._lock:
            if self._shutdown:
                raise ServiceUnavailableError(
                    "server is shutting down; not accepting new jobs",
                    details={"retry_after": REJECT_RETRY_AFTER},
                )
            if request_id is not None:
                known = self._request_ids.get(request_id)
                if known is not None and known in self._jobs:
                    job_logger(logger, known).info(
                        "duplicate submit collapsed (request_id=%s)", request_id,
                    )
                    return self._jobs[known]
            depth = sum(len(lane) for lane in self._lanes.values())
            if depth >= self.queue_size:
                self.metrics.job_rejected()
                logger.warning(
                    "queue full (%d/%d), rejecting %s submission",
                    depth, self.queue_size, request.semantics,
                )
                raise QueueFullError(
                    f"queue is full ({depth}/{self.queue_size} jobs queued); "
                    "retry later or raise --queue-size",
                    details={
                        "depth": depth,
                        "queue_size": self.queue_size,
                        "retry_after": REJECT_RETRY_AFTER,
                    },
                )
            shed: list[str] = []
            admitted = request
            fill = depth / self.queue_size
            if self.load_shedding and fill >= SHED_ACCURACY_WATERMARK:
                coarser = _coarsen_accuracy(admitted)
                if coarser is not None:
                    admitted, note = coarser
                    shed.append(f"{note} at queue depth {depth}/{self.queue_size}")
                    self._shed_total.inc(rung="accuracy")
            budget = admitted.make_budget(self.default_budget, self.max_budget)
            if (
                self.load_shedding
                and fill >= SHED_BUDGET_WATERMARK
                and not budget.is_unlimited
            ):
                budget = _scale_budget(budget, SHED_BUDGET_SCALE)
                shed.append(
                    f"budget scaled x{SHED_BUDGET_SCALE} "
                    f"at queue depth {depth}/{self.queue_size}"
                )
                self._shed_total.inc(rung="budget")
            job = Job(
                id=f"job-{next(self._counter)}-{uuid.uuid4().hex[:6]}",
                request=admitted,
                budget=budget,
                shed=shed,
                request_id=request_id,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._lanes[admitted.priority].append(job)
            if request_id is not None:
                self._request_ids[request_id] = job.id
            self._prune_locked()
            self.metrics.job_submitted()
            self._work_available.notify()
        job_logger(logger, job.id).info(
            "queued semantics=%s priority=%s depth=%d shed=%d",
            request.semantics, request.priority, depth + 1, len(job.shed),
        )
        return job

    # -- registry -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job record, or :class:`JobNotFoundError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """All registered jobs, oldest first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (finished jobs are a no-op)."""
        job = self.get(job_id)
        with self._lock:
            job.cancel_requested = True
            if job.state == QUEUED:
                self._finish_locked(job, CANCELLED, error={
                    "type": "RunCancelledError",
                    "message": "cancelled while queued",
                    "details": {},
                })
            elif job.state == RUNNING and job.context is not None:
                job.context.cancel()
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (or ``timeout`` seconds pass)."""
        job = self.get(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not job.finished:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            f"timed out waiting for job {job_id} "
                            f"(state: {job.state})"
                        )
                self._job_finished.wait(timeout=remaining)
        return job

    def stats(self) -> dict:
        """Queue/worker gauges for the metrics endpoint."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "queue_size": self.queue_size,
                "queue_depth": sum(len(lane) for lane in self._lanes.values()),
                "in_flight": self._in_flight,
                "running": self._running,
                "states": states,
                "registered_jobs": len(self._jobs),
            }

    # -- internals ------------------------------------------------------

    def _prune_locked(self) -> None:
        """Drop the oldest finished jobs beyond ``registry_limit``."""
        while len(self._jobs) > self.registry_limit:
            for job_id in list(self._order):
                job = self._jobs[job_id]
                if job.finished:
                    self._order.remove(job_id)
                    del self._jobs[job_id]
                    if job.request_id is not None:
                        self._request_ids.pop(job.request_id, None)
                    break
            else:
                return  # nothing finished to prune; registry all live

    def _finish_locked(self, job: Job, state: str, error: dict | None = None) -> None:
        if job.finished:
            # Idempotence guard: shutdown's force-finish and a worker
            # thread completing late may race to finish the same job;
            # whoever gets here first wins, the second call is a no-op.
            return
        job.state = state
        job.error = error
        job.finished_at = time.time()
        outcome = {DONE: "done", FAILED: "failed"}.get(state, "cancelled")
        if job.context is not None:
            if state == DONE:
                # Raw executors (and cache hits) don't touch the context;
                # a job that returned is an "ok" run.
                job.context.finish()
            elif error is not None:
                job.context.record_event(f"{error['type']}: {error['message']}")
            job.report = job.context.report().as_dict()
            spent = job.report.get("spent", {})
            self._run_steps.inc(int(spent.get("steps") or 0))
            self._run_states.inc(int(spent.get("states") or 0))
            tracer = job.context.tracer
            if tracer.enabled:
                tracer.run_record(
                    job_id=job.id,
                    outcome=outcome,
                    semantics=job.request.semantics,
                    report=job.report,
                )
                if isinstance(tracer.sink, MemorySink):
                    job.trace = tracer.sink.records
        self.metrics.job_finished(
            job.request.semantics,
            outcome,
            job.queue_seconds(),
            job.run_seconds(),
            cache_hit=job.cache_hit,
        )
        job_logger(logger, job.id).info(
            "finished state=%s queue_s=%s run_s=%s cache_hit=%s%s",
            state,
            _round3(job.queue_seconds()),
            _round3(job.run_seconds()),
            job.cache_hit,
            f" error={error['type']}" if error else "",
        )
        self._job_finished.notify_all()

    def _next_job_locked(self) -> Job | None:
        now = time.time()
        for lane_name in ("high", "normal"):
            lane = self._lanes[lane_name]
            deferred: list[Job] = []
            picked: Job | None = None
            while lane:
                job = lane.popleft()
                if job.state != QUEUED:
                    continue
                if job.not_before > now:
                    # Still backing off after a retryable failure; leave
                    # it in the lane without losing its FIFO position.
                    deferred.append(job)
                    continue
                picked = job
                break
            for job in reversed(deferred):
                lane.appendleft(job)
            if picked is not None:
                return picked
        return None

    def _wake_timeout_locked(self) -> float | None:
        """Seconds until the earliest backing-off job becomes runnable."""
        now = time.time()
        pending = [
            job.not_before - now
            for lane in self._lanes.values()
            for job in lane
            if job.state == QUEUED and job.not_before > now
        ]
        if not pending:
            return None
        return max(0.01, min(pending))

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                job = self._next_job_locked()
                while job is None:
                    if not self._running:
                        return
                    self._work_available.wait(timeout=self._wake_timeout_locked())
                    job = self._next_job_locked()
                job.state = RUNNING
                job.started_at = time.time()
                job.attempts += 1
                # The budget clock starts when execution starts, not at
                # submission: queue wait is the server's problem, the
                # run budget is the job's.
                tracer = None
                if self.trace_events:
                    tracer = Tracer(MemorySink(), max_events=self.trace_events)
                job.context = RunContext(
                    job.budget,
                    tracer=tracer,
                    metrics=self.metrics.registry,
                    run_id=job.id,
                )
                for note in job.shed:
                    job.context.record_event(f"load shed at admission: {note}")
                if job.shed:
                    job.context.ledger.add("admission", shed=len(job.shed))
                if job.attempts > 1:
                    job.context.record_event(
                        f"retry attempt {job.attempts}/{self.max_job_retries + 1}"
                    )
                    job.context.ledger.add("scheduler", retries=1)
                if job.cancel_requested:
                    job.context.cancel()
                self._in_flight += 1
            job_logger(logger, job.id).debug(
                "started worker=%s attempt=%d traced=%s",
                threading.current_thread().name, job.attempts, tracer is not None,
            )
            try:
                maybe_fire(SITE_SCHEDULER_EXECUTE, job=job.id, attempt=job.attempts)
                payload = self._executor(job)
            except RunCancelledError as cancelled:
                self._record_failure(job, CANCELLED, cancelled)
            except ReproError as error:
                if not self._maybe_requeue(job, error):
                    self._record_failure(job, FAILED, error)
            except Exception as unexpected:  # noqa: BLE001 - server must survive
                self._record_failure(job, FAILED, unexpected)
            else:
                with self._lock:
                    if not job.finished:
                        job.result = payload
                        self._finish_locked(job, DONE)
            finally:
                with self._lock:
                    self._in_flight -= 1

    def _maybe_requeue(self, job: Job, error: ReproError) -> bool:
        """Re-admit a retryably-failed job with backoff; ``False`` = give up.

        The executed computation is idempotent (seeded sampling, exact
        evaluation), so a retried job reproduces the same answer; only
        transient infrastructure failures (a crashed worker pool, an
        injected fault) are marked retryable in the first place.
        """
        if not is_retryable(error):
            return False
        with self._lock:
            if (
                not self._running
                or job.cancel_requested
                or job.finished
                or job.attempts > self.max_job_retries
            ):
                return False
            pause = self.retry_policy.delay(job.attempts - 1, rng=self._retry_rng)
            job.state = QUEUED
            job.started_at = None
            job.context = None
            job.result = None
            job.not_before = time.time() + pause
            self._lanes[job.request.priority].append(job)
            self._job_retries.inc(error=type(error).__name__)
            self._work_available.notify()
        job_logger(logger, job.id).warning(
            "retryable failure (%s: %s); re-admitted for attempt %d/%d "
            "after %.3fs backoff",
            type(error).__name__, error,
            job.attempts + 1, self.max_job_retries + 1, pause,
        )
        return True

    def _record_failure(self, job: Job, state: str, error: BaseException) -> None:
        details = dict(getattr(error, "details", {}) or {})
        with self._lock:
            self._finish_locked(job, state, error={
                "type": type(error).__name__,
                "message": str(error),
                "details": details,
            })
