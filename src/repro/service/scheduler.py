"""Bounded job scheduling: admission, lanes, workers, cancellation.

The serving layer's concurrency heart.  A :class:`JobScheduler` owns

* a **bounded queue** with two lanes — ``high`` before ``normal``,
  FIFO within a lane — whose total capacity is ``queue_size``; a
  submission beyond it is rejected at admission with
  :class:`~repro.errors.QueueFullError` (the HTTP front-end maps this
  to 429) instead of letting latency grow without bound;
* a pool of **worker threads** that execute jobs through the callable
  the owner injects (the :class:`~repro.service.service.QueryService`
  method that consults the result cache and the session pool);
* **per-job budgets**: every admitted job gets a
  :class:`~repro.runtime.RunContext` with the request's budget,
  resolved against the server's default and clamped to its admission
  cap, so one pathological query exhausts its own budget (recorded in
  its :class:`~repro.runtime.RunReport`), never the server;
* a **registry** of job records — queued/running/done/failed/cancelled
  — polled by ``GET /v1/jobs/<id>`` and pruned of the oldest finished
  entries beyond ``registry_limit``;
* **cancellation** at any point: a queued job is marked and skipped, a
  running one has its context's cooperative token cancelled and stops
  within one transition step.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import (
    JobNotFoundError,
    QueueFullError,
    ReproError,
    RunCancelledError,
    ServiceError,
)
from repro.obs.logs import get_logger, job_logger
from repro.obs.trace import MemorySink, Tracer
from repro.runtime import Budget, RunContext
from repro.service.metrics import ServiceMetrics
from repro.service.request import QueryRequest

logger = get_logger("scheduler")

# Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

FINISHED_STATES = (DONE, FAILED, CANCELLED)

#: Default bounded-queue capacity.
DEFAULT_QUEUE_SIZE = 64

#: Default worker-thread count.
DEFAULT_WORKERS = 2

#: Finished jobs retained for polling before pruning.
DEFAULT_REGISTRY_LIMIT = 1024

#: Default per-job trace event bound when job tracing is enabled.
DEFAULT_TRACE_EVENTS = 2048


def _round3(seconds: float | None) -> float | None:
    return round(seconds, 3) if seconds is not None else None


@dataclass
class Job:
    """One scheduled query: request, lifecycle, result, accounting."""

    id: str
    request: QueryRequest
    budget: Budget
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    context: RunContext | None = None
    result: Any = None
    error: dict | None = None
    report: dict | None = None
    cache_hit: bool = False
    cancel_requested: bool = False
    trace: list[dict] | None = None

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES

    def queue_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def run_seconds(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def as_dict(self, include_request: bool = False) -> dict:
        """JSON-friendly job record for the HTTP API."""
        payload: dict = {
            "id": self.id,
            "state": self.state,
            "semantics": self.request.semantics,
            "priority": self.request.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queue_seconds": self.queue_seconds(),
            "run_seconds": self.run_seconds(),
            "cache_hit": self.cache_hit,
            "result": self.result,
            "error": self.error,
            "report": self.report,
            "trace_available": self.trace is not None,
        }
        if include_request:
            payload["request"] = self.request.as_dict()
        return payload


class JobScheduler:
    """Bounded two-lane work queue with a thread worker pool.

    Parameters
    ----------
    executor:
        ``executor(job) -> payload`` — runs the job's query and returns
        its JSON-friendly result payload; it may set ``job.cache_hit``.
        Everything it raises is classified here: a
        :class:`~repro.errors.RunCancelledError` finishes the job as
        ``cancelled``, any other :class:`~repro.errors.ReproError` as
        ``failed`` with the error's type/message/details recorded.
    workers / queue_size:
        Pool width and admission bound.
    default_budget / max_budget:
        Per-job budget resolution (see
        :meth:`QueryRequest.make_budget`): the default fills axes the
        request leaves open; the cap clamps every admitted job.
    metrics:
        A :class:`~repro.service.metrics.ServiceMetrics` to notify;
        one is created when omitted.  Its backing
        :class:`~repro.obs.metrics.MetricsRegistry` is handed to every
        job's :class:`~repro.runtime.RunContext`, so run-level counters
        (downgrades, steps, states) land in the same registry the
        ``/v1/metrics`` endpoints render.
    trace_events:
        When > 0, every job runs with an in-memory
        :class:`~repro.obs.trace.Tracer` bounded to this many step
        events; the finished trace is kept on ``job.trace`` and served
        by ``GET /v1/jobs/<id>/trace``.  ``0`` disables job tracing
        (the :data:`~repro.obs.trace.NULL_TRACER` fast path).

    Examples
    --------
    >>> scheduler = JobScheduler(lambda job: {"answer": 42}, workers=1)
    >>> request = QueryRequest.from_json({
    ...     "semantics": "forever", "program": "C := C", "event": "C(a)",
    ...     "database": {"relations": {"C": {"columns": ["I"], "rows": [["a"]]}}}})
    >>> scheduler.start()
    >>> job = scheduler.submit(request)
    >>> scheduler.wait(job.id, timeout=10.0).result
    {'answer': 42}
    >>> scheduler.shutdown()
    """

    def __init__(
        self,
        executor: Callable[[Job], Any],
        workers: int = DEFAULT_WORKERS,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        default_budget: Budget | None = None,
        max_budget: Budget | None = None,
        metrics: ServiceMetrics | None = None,
        registry_limit: int = DEFAULT_REGISTRY_LIMIT,
        trace_events: int = 0,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers!r}")
        if queue_size < 1:
            raise ServiceError(f"queue_size must be >= 1, got {queue_size!r}")
        if registry_limit < 1:
            raise ServiceError(f"registry_limit must be >= 1, got {registry_limit!r}")
        if trace_events < 0:
            raise ServiceError(f"trace_events must be >= 0, got {trace_events!r}")
        self._executor = executor
        self.workers = workers
        self.queue_size = queue_size
        self.default_budget = default_budget
        self.max_budget = max_budget
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.registry_limit = registry_limit
        self.trace_events = trace_events
        self._run_steps = self.metrics.registry.counter(
            "repro_run_steps_total",
            "Transition steps consumed by finished jobs",
        )
        self._run_states = self.metrics.registry.counter(
            "repro_run_states_total",
            "Chain states materialised by finished jobs",
        )
        self._lanes = {"high": deque(), "normal": deque()}
        self._jobs: dict[str, Job] = {}
        self._order: deque[str] = deque()  # submission order, for pruning
        self._lock = threading.Lock()
        self._work_available = threading.Condition(self._lock)
        self._job_finished = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._running = False
        self._in_flight = 0
        self._counter = itertools.count(1)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        with self._lock:
            if self._running:
                return
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop the pool; queued jobs are cancelled, not silently lost."""
        with self._lock:
            self._running = False
            for lane in self._lanes.values():
                for job in lane:
                    if job.state == QUEUED:
                        self._finish_locked(job, CANCELLED, error={
                            "type": "RunCancelledError",
                            "message": "server shutting down",
                            "details": {},
                        })
                lane.clear()
            if cancel_running:
                for job in self._jobs.values():
                    if job.state == RUNNING and job.context is not None:
                        job.context.cancel()
            self._work_available.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        self._threads.clear()

    # -- admission ------------------------------------------------------

    def submit(self, request: QueryRequest) -> Job:
        """Admit one request; raises :class:`QueueFullError` at capacity."""
        budget = request.make_budget(self.default_budget, self.max_budget)
        job = Job(
            id=f"job-{next(self._counter)}-{uuid.uuid4().hex[:6]}",
            request=request,
            budget=budget,
        )
        with self._lock:
            depth = sum(len(lane) for lane in self._lanes.values())
            if depth >= self.queue_size:
                self.metrics.job_rejected()
                logger.warning(
                    "queue full (%d/%d), rejecting %s submission",
                    depth, self.queue_size, request.semantics,
                )
                raise QueueFullError(
                    f"queue is full ({depth}/{self.queue_size} jobs queued); "
                    "retry later or raise --queue-size",
                    details={"depth": depth, "queue_size": self.queue_size},
                )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._lanes[request.priority].append(job)
            self._prune_locked()
            self.metrics.job_submitted()
            self._work_available.notify()
        job_logger(logger, job.id).info(
            "queued semantics=%s priority=%s depth=%d",
            request.semantics, request.priority, depth + 1,
        )
        return job

    # -- registry -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job record, or :class:`JobNotFoundError`."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """All registered jobs, oldest first."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job (finished jobs are a no-op)."""
        job = self.get(job_id)
        with self._lock:
            job.cancel_requested = True
            if job.state == QUEUED:
                self._finish_locked(job, CANCELLED, error={
                    "type": "RunCancelledError",
                    "message": "cancelled while queued",
                    "details": {},
                })
            elif job.state == RUNNING and job.context is not None:
                job.context.cancel()
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes (or ``timeout`` seconds pass)."""
        job = self.get(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while not job.finished:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ServiceError(
                            f"timed out waiting for job {job_id} "
                            f"(state: {job.state})"
                        )
                self._job_finished.wait(timeout=remaining)
        return job

    def stats(self) -> dict:
        """Queue/worker gauges for the metrics endpoint."""
        with self._lock:
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "workers": self.workers,
                "queue_size": self.queue_size,
                "queue_depth": sum(len(lane) for lane in self._lanes.values()),
                "in_flight": self._in_flight,
                "running": self._running,
                "states": states,
                "registered_jobs": len(self._jobs),
            }

    # -- internals ------------------------------------------------------

    def _prune_locked(self) -> None:
        """Drop the oldest finished jobs beyond ``registry_limit``."""
        while len(self._jobs) > self.registry_limit:
            for job_id in list(self._order):
                job = self._jobs[job_id]
                if job.finished:
                    self._order.remove(job_id)
                    del self._jobs[job_id]
                    break
            else:
                return  # nothing finished to prune; registry all live

    def _finish_locked(self, job: Job, state: str, error: dict | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.time()
        outcome = {DONE: "done", FAILED: "failed"}.get(state, "cancelled")
        if job.context is not None:
            if state == DONE:
                # Raw executors (and cache hits) don't touch the context;
                # a job that returned is an "ok" run.
                job.context.finish()
            elif error is not None:
                job.context.record_event(f"{error['type']}: {error['message']}")
            job.report = job.context.report().as_dict()
            spent = job.report.get("spent", {})
            self._run_steps.inc(int(spent.get("steps") or 0))
            self._run_states.inc(int(spent.get("states") or 0))
            tracer = job.context.tracer
            if tracer.enabled:
                tracer.run_record(
                    job_id=job.id,
                    outcome=outcome,
                    semantics=job.request.semantics,
                    report=job.report,
                )
                if isinstance(tracer.sink, MemorySink):
                    job.trace = tracer.sink.records
        self.metrics.job_finished(
            job.request.semantics,
            outcome,
            job.queue_seconds(),
            job.run_seconds(),
            cache_hit=job.cache_hit,
        )
        job_logger(logger, job.id).info(
            "finished state=%s queue_s=%s run_s=%s cache_hit=%s%s",
            state,
            _round3(job.queue_seconds()),
            _round3(job.run_seconds()),
            job.cache_hit,
            f" error={error['type']}" if error else "",
        )
        self._job_finished.notify_all()

    def _next_job_locked(self) -> Job | None:
        for lane_name in ("high", "normal"):
            lane = self._lanes[lane_name]
            while lane:
                job = lane.popleft()
                if job.state == QUEUED:
                    return job
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._lock:
                job = self._next_job_locked()
                while job is None:
                    if not self._running:
                        return
                    self._work_available.wait()
                    job = self._next_job_locked()
                job.state = RUNNING
                job.started_at = time.time()
                # The budget clock starts when execution starts, not at
                # submission: queue wait is the server's problem, the
                # run budget is the job's.
                tracer = None
                if self.trace_events:
                    tracer = Tracer(MemorySink(), max_events=self.trace_events)
                job.context = RunContext(
                    job.budget,
                    tracer=tracer,
                    metrics=self.metrics.registry,
                    run_id=job.id,
                )
                if job.cancel_requested:
                    job.context.cancel()
                self._in_flight += 1
            job_logger(logger, job.id).debug(
                "started worker=%s traced=%s",
                threading.current_thread().name, tracer is not None,
            )
            try:
                payload = self._executor(job)
            except RunCancelledError as cancelled:
                self._record_failure(job, CANCELLED, cancelled)
            except ReproError as error:
                self._record_failure(job, FAILED, error)
            except Exception as unexpected:  # noqa: BLE001 - server must survive
                self._record_failure(job, FAILED, unexpected)
            else:
                with self._lock:
                    job.result = payload
                    self._finish_locked(job, DONE)
            finally:
                with self._lock:
                    self._in_flight -= 1

    def _record_failure(self, job: Job, state: str, error: BaseException) -> None:
        details = dict(getattr(error, "details", {}) or {})
        with self._lock:
            self._finish_locked(job, state, error={
                "type": type(error).__name__,
                "message": str(error),
                "details": details,
            })
