"""Serving metrics, backed by the unified observability registry.

:class:`ServiceMetrics` keeps its historical API — the scheduler calls
the ``job_*`` hooks, :meth:`ServiceMetrics.snapshot` renders the JSON
the ``GET /v1/metrics`` endpoint returns — but every counter and
latency histogram now lives in a shared
:class:`~repro.obs.metrics.MetricsRegistry` instead of ad-hoc locked
attributes.  That one registry is also what ``RunContext`` (downgrade
counters), the scheduler (step/state totals), and the cache/pool
callback gauges publish into, so ``/v1/metrics?format=prometheus``
exposes the whole engine through a single exposition endpoint.

Metric names (see ``docs/observability.md`` for the full table):

==================================  =========  ==========================
``repro_jobs_submitted_total``      counter    accepted submissions
``repro_jobs_finished_total``       counter    by ``outcome`` label
``repro_jobs_rejected_total``       counter    admission + queue rejects
``repro_admission_rejections_total`` counter   by diagnostic ``code``
``repro_result_cache_hits_total``   counter    result-cache short-cuts
``repro_job_queue_seconds``         histogram  by ``semantics`` label
``repro_job_run_seconds``           histogram  by ``semantics`` label
==================================  =========  ==========================

:class:`LatencyHistogram` (the original fixed-bucket histogram) is kept
for callers that want a standalone histogram without a registry.
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

#: Upper bounds (seconds) of the latency buckets; the last bucket is
#: unbounded.  Spans cache hits (~µs) to multi-minute exact builds.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (thread-safe, standalone).

    Examples
    --------
    >>> histogram = LatencyHistogram()
    >>> histogram.observe(0.003)
    >>> histogram.observe(0.2)
    >>> histogram.count, round(histogram.sum, 3)
    (2, 0.203)
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if seconds <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += seconds
            if seconds > self.max:
                self.max = seconds

    def as_dict(self) -> dict:
        """JSON-friendly rendering: bucket bounds, counts, summary."""
        with self._lock:
            counts = list(self._counts)
            return {
                "buckets": [*self.buckets, "+Inf"],
                "counts": counts,
                "count": self.count,
                "sum": self.sum,
                "max": self.max,
                "mean": (self.sum / self.count) if self.count else None,
            }


class ServiceMetrics:
    """Aggregated serving counters plus per-semantics latency histograms.

    The scheduler calls the ``job_*`` hooks.  All state lives in the
    ``registry`` (created on demand, or passed in to share one registry
    across the whole service); the legacy attribute views
    (``metrics.rejected`` etc.) read the registry counters.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._submitted = self.registry.counter(
            "repro_jobs_submitted_total", "Jobs accepted into the queue"
        )
        self._finished = self.registry.counter(
            "repro_jobs_finished_total", "Jobs finished, by outcome"
        )
        self._rejected = self.registry.counter(
            "repro_jobs_rejected_total",
            "Submissions rejected (admission checks or full queue)",
        )
        self._admission = self.registry.counter(
            "repro_admission_rejections_total",
            "Programs rejected by static analysis, by diagnostic code",
        )
        self._cache_hits = self.registry.counter(
            "repro_result_cache_hits_total",
            "Jobs answered from the result cache",
        )
        self._queue_wait = self.registry.histogram(
            "repro_job_queue_seconds",
            "Seconds jobs spent queued before execution",
            buckets=DEFAULT_BUCKETS,
        )
        self._run = self.registry.histogram(
            "repro_job_run_seconds",
            "Seconds jobs spent executing",
            buckets=DEFAULT_BUCKETS,
        )

    # -- legacy attribute views ----------------------------------------

    @property
    def submitted(self) -> int:
        return int(self._submitted.total())

    @property
    def completed(self) -> int:
        return int(self._finished.value(outcome="done"))

    @property
    def failed(self) -> int:
        return int(self._finished.value(outcome="failed"))

    @property
    def cancelled(self) -> int:
        return int(self._finished.value(outcome="cancelled"))

    @property
    def rejected(self) -> int:
        return int(self._rejected.total())

    @property
    def result_cache_hits(self) -> int:
        return int(self._cache_hits.total())

    @property
    def admission_rejections(self) -> dict[str, int]:
        return {
            dict(labels).get("code", "unknown"): int(value)
            for labels, value in self._admission.collect()
        }

    # -- hooks ----------------------------------------------------------

    def job_submitted(self) -> None:
        self._submitted.inc()

    def job_rejected(self) -> None:
        self._rejected.inc()

    def admission_rejected(self, codes) -> None:
        """Record one program rejected by static analysis.

        ``codes`` are the diagnostic codes (``RK001``, ``SF001``, ...)
        that caused the rejection; each is counted so ``/v1/metrics``
        shows *why* programs bounce, not just how many.
        """
        self._rejected.inc()
        for code in codes or ("unknown",):
            self._admission.inc(code=code)

    def job_finished(
        self,
        semantics: str,
        outcome: str,
        queue_seconds: float | None,
        run_seconds: float | None,
        cache_hit: bool = False,
    ) -> None:
        """Record one finished job (``outcome``: done/failed/cancelled)."""
        if outcome not in ("done", "failed"):
            outcome = "cancelled"
        self._finished.inc(outcome=outcome)
        if cache_hit:
            self._cache_hits.inc()
        if queue_seconds is not None:
            self._queue_wait.observe(queue_seconds, semantics=semantics)
        if run_seconds is not None:
            self._run.observe(run_seconds, semantics=semantics)

    # -- rendering ------------------------------------------------------

    def _latency_table(self, histogram) -> dict:
        return {
            dict(key)["semantics"]: histogram.as_dict(**dict(key))
            for key in histogram.label_keys()
        }

    def snapshot(self, gauges: Mapping[str, object] | None = None) -> dict:
        """The full metrics document for ``GET /v1/metrics``."""
        payload: dict = {
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "result_cache_hits": self.result_cache_hits,
            },
            "admission_rejections": dict(
                sorted(self.admission_rejections.items())
            ),
            "latency": {
                "queue_wait_seconds": self._latency_table(self._queue_wait),
                "run_seconds": self._latency_table(self._run),
            },
        }
        if gauges:
            payload.update(gauges)
        return payload

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the backing registry."""
        return self.registry.render_prometheus()
