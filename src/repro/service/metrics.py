"""Serving metrics: counters and fixed-bucket latency histograms.

Everything here is cheap enough to update on every job (a few integer
increments under a lock) and renders straight to the JSON the
``GET /v1/metrics`` endpoint returns.  Histograms use fixed
upper-bound buckets (Prometheus-style cumulative counts are derivable
by the scraper), one histogram per query semantics, split into *queue
wait* and *run* time so saturation (growing waits) is distinguishable
from slow queries (growing runs).
"""

from __future__ import annotations

import threading
from typing import Mapping

#: Upper bounds (seconds) of the latency buckets; the last bucket is
#: unbounded.  Spans cache hits (~µs) to multi-minute exact builds.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (thread-safe).

    Examples
    --------
    >>> histogram = LatencyHistogram()
    >>> histogram.observe(0.003)
    >>> histogram.observe(0.2)
    >>> histogram.count, round(histogram.sum, 3)
    (2, 0.203)
    """

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if seconds <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += seconds
            if seconds > self.max:
                self.max = seconds

    def as_dict(self) -> dict:
        """JSON-friendly rendering: bucket bounds, counts, summary."""
        with self._lock:
            counts = list(self._counts)
            return {
                "buckets": [*self.buckets, "+Inf"],
                "counts": counts,
                "count": self.count,
                "sum": self.sum,
                "max": self.max,
                "mean": (self.sum / self.count) if self.count else None,
            }


class ServiceMetrics:
    """Aggregated serving counters plus per-semantics latency histograms.

    The scheduler calls the ``job_*`` hooks; queue/cache/session gauges
    are sampled live from their owners when :meth:`snapshot` renders.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.rejected = 0
        self.result_cache_hits = 0
        self.admission_rejections: dict[str, int] = {}
        self._queue_wait: dict[str, LatencyHistogram] = {}
        self._run: dict[str, LatencyHistogram] = {}

    def _histogram(self, table: dict, semantics: str) -> LatencyHistogram:
        with self._lock:
            histogram = table.get(semantics)
            if histogram is None:
                histogram = table[semantics] = LatencyHistogram()
            return histogram

    # -- hooks ----------------------------------------------------------

    def job_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def job_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def admission_rejected(self, codes) -> None:
        """Record one program rejected by static analysis.

        ``codes`` are the diagnostic codes (``RK001``, ``SF001``, ...)
        that caused the rejection; each is counted so ``/v1/metrics``
        shows *why* programs bounce, not just how many.
        """
        with self._lock:
            self.rejected += 1
            for code in codes or ("unknown",):
                self.admission_rejections[code] = (
                    self.admission_rejections.get(code, 0) + 1
                )

    def job_finished(
        self,
        semantics: str,
        outcome: str,
        queue_seconds: float | None,
        run_seconds: float | None,
        cache_hit: bool = False,
    ) -> None:
        """Record one finished job (``outcome``: done/failed/cancelled)."""
        with self._lock:
            if outcome == "done":
                self.completed += 1
            elif outcome == "failed":
                self.failed += 1
            else:
                self.cancelled += 1
            if cache_hit:
                self.result_cache_hits += 1
        if queue_seconds is not None:
            self._histogram(self._queue_wait, semantics).observe(queue_seconds)
        if run_seconds is not None:
            self._histogram(self._run, semantics).observe(run_seconds)

    # -- rendering ------------------------------------------------------

    def snapshot(self, gauges: Mapping[str, object] | None = None) -> dict:
        """The full metrics document for ``GET /v1/metrics``."""
        with self._lock:
            payload: dict = {
                "jobs": {
                    "submitted": self.submitted,
                    "completed": self.completed,
                    "failed": self.failed,
                    "cancelled": self.cancelled,
                    "rejected": self.rejected,
                    "result_cache_hits": self.result_cache_hits,
                },
                "admission_rejections": dict(
                    sorted(self.admission_rejections.items())
                ),
            }
            queue_wait = dict(self._queue_wait)
            run = dict(self._run)
        payload["latency"] = {
            "queue_wait_seconds": {
                semantics: histogram.as_dict()
                for semantics, histogram in sorted(queue_wait.items())
            },
            "run_seconds": {
                semantics: histogram.as_dict()
                for semantics, histogram in sorted(run.items())
            },
        }
        if gauges:
            payload.update(gauges)
        return payload
