"""A small urllib client for the query service's HTTP API.

Used by the ``repro submit`` / ``repro jobs`` CLI subcommands, the CI
smoke test, and anyone scripting against a running ``repro serve``.
Server-side errors are translated back into the exception types the
service raised — the ``error.type`` field round-trips, along with the
server's diagnostic ``details`` payload, the HTTP ``status``, and any
``Retry-After`` hint — so client code handles
:class:`~repro.errors.QueueFullError` the same way whether the service
is in-process or across the wire.

The client retries transparently with the stack's shared
:data:`~repro.runtime.retry.HTTP_RETRY` policy (full-jitter backoff
honouring the server's ``Retry-After``): rejected-at-capacity (429),
shutting-down (503), and connection failures are retried; everything
else raises immediately.  Submits are made safe to retry by stamping a
client-generated ``X-Request-Id`` on every ``POST /v1/jobs`` — the
server collapses a duplicate submit onto the already admitted job, so
a retry after a lost response never schedules the work twice.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable

from repro.errors import (
    InvalidRequestError,
    JobNotFoundError,
    ProgramRejectedError,
    QueueFullError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.runtime.retry import HTTP_RETRY, RetryPolicy, idempotency_key, is_retryable

_ERROR_TYPES = {
    "InvalidRequestError": InvalidRequestError,
    "ProgramRejectedError": ProgramRejectedError,
    "QueueFullError": QueueFullError,
    "JobNotFoundError": JobNotFoundError,
    "ServiceUnavailableError": ServiceUnavailableError,
}

#: Poll interval for :meth:`ServiceClient.wait`.
POLL_SECONDS = 0.1


def _raise_service_error(
    status: int, payload: Any, retry_after: float | None = None
) -> None:
    error = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(error, dict):
        exception: ServiceError = ServiceError(
            f"service returned HTTP {status}: {payload!r}"
        )
    else:
        kind = _ERROR_TYPES.get(error.get("type"), ServiceError)
        exception = kind(
            error.get("message") or f"service returned HTTP {status}",
            details=error.get("details") or {},
        )
    exception.status = status  # type: ignore[attr-defined]
    if retry_after is not None:
        exception.retry_after = retry_after  # type: ignore[attr-defined]
    raise exception


def _parse_retry_after(raw: str | None) -> float | None:
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


class ServiceClient:
    """Talk to one running query service.

    Examples
    --------
    ::

        client = ServiceClient("http://127.0.0.1:8352")
        job = client.submit({"semantics": "forever", ...})
        done = client.wait(job["id"], timeout=60.0)
        print(done["result"]["probability"])
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: RetryPolicy | None = HTTP_RETRY,
        rng: random.Random | None = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self._rng = rng if rng is not None else random.Random()

    def _call(
        self,
        method: str,
        path: str,
        body: Any = None,
        headers: dict[str, str] | None = None,
        idempotent: bool = True,
    ) -> Any:
        request_headers = {"Accept": "application/json"}
        if headers:
            request_headers.update(headers)
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            request_headers["Content-Type"] = "application/json"

        def attempt() -> Any:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data, headers=request_headers, method=method,
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return json.loads(response.read())
            except urllib.error.HTTPError as http_error:
                try:
                    payload = json.loads(http_error.read())
                except (ValueError, OSError):
                    payload = None
                _raise_service_error(
                    http_error.code,
                    payload,
                    _parse_retry_after(http_error.headers.get("Retry-After")),
                )
            except urllib.error.URLError as url_error:
                # A connection failure is transient from the client's
                # side — but only safe to retry for idempotent calls.
                raise ServiceError(
                    f"cannot reach service at {self.base_url}: "
                    f"{url_error.reason}",
                    retryable=idempotent,
                )

        if self.retry is None:
            return attempt()
        retryable: Callable[[BaseException], bool] = (
            lambda error: idempotent and is_retryable(error)
        )
        return self.retry.call(attempt, retryable=retryable, rng=self._rng)

    # -- API ------------------------------------------------------------

    def submit(self, request_body: dict, request_id: str | None = None) -> dict:
        """``POST /v1/jobs`` — returns the accepted job record.

        Stamps ``X-Request-Id`` with ``request_id`` (a fresh random key
        when not given), which makes the submit idempotent: every retry
        of this call reuses the *same* key, and the server collapses
        duplicates onto the first admitted job.
        """
        if request_id is None:
            request_id = idempotency_key()
        return self._call(
            "POST", "/v1/jobs",
            body=request_body,
            headers={"X-Request-Id": request_id},
        )

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """``GET /v1/jobs`` — all registered jobs."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/<id>``."""
        return self._call("DELETE", f"/v1/jobs/{job_id}")

    def trace(self, job_id: str) -> list[dict]:
        """``GET /v1/jobs/<id>/trace`` — the job's trace records."""
        return self._call("GET", f"/v1/jobs/{job_id}/trace")["trace"]

    def profile(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>/profile`` — span tree + resource ledger."""
        return self._call("GET", f"/v1/jobs/{job_id}/profile")

    def metrics(self) -> dict:
        """``GET /v1/metrics``."""
        return self._call("GET", "/v1/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — raw text exposition."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as http_error:
            try:
                payload = json.loads(http_error.read())
            except (ValueError, OSError):
                payload = None
            _raise_service_error(http_error.code, payload)
        except urllib.error.URLError as url_error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {url_error.reason}"
            )

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._call("GET", "/v1/healthz")

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Poll until the job reaches a finished state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(state: {record['state']})"
                )
            time.sleep(POLL_SECONDS)
