"""A small urllib client for the query service's HTTP API.

Used by the ``repro submit`` / ``repro jobs`` CLI subcommands, the CI
smoke test, and anyone scripting against a running ``repro serve``.
Server-side errors are translated back into the exception types the
service raised — the ``error.type`` field round-trips — so client code
handles :class:`~repro.errors.QueueFullError` the same way whether the
service is in-process or across the wire.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.errors import (
    InvalidRequestError,
    JobNotFoundError,
    ProgramRejectedError,
    QueueFullError,
    ServiceError,
)

_ERROR_TYPES = {
    "InvalidRequestError": InvalidRequestError,
    "ProgramRejectedError": ProgramRejectedError,
    "QueueFullError": QueueFullError,
    "JobNotFoundError": JobNotFoundError,
}

#: Poll interval for :meth:`ServiceClient.wait`.
POLL_SECONDS = 0.1


def _raise_service_error(status: int, payload: Any) -> None:
    error = payload.get("error") if isinstance(payload, dict) else None
    if not isinstance(error, dict):
        raise ServiceError(f"service returned HTTP {status}: {payload!r}")
    kind = _ERROR_TYPES.get(error.get("type"), ServiceError)
    raise kind(
        error.get("message") or f"service returned HTTP {status}",
        details=error.get("details") or {},
    )


class ServiceClient:
    """Talk to one running query service.

    Examples
    --------
    ::

        client = ServiceClient("http://127.0.0.1:8352")
        job = client.submit({"semantics": "forever", ...})
        done = client.wait(job["id"], timeout=60.0)
        print(done["result"]["probability"])
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(self, method: str, path: str, body: Any = None) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                payload = json.loads(response.read())
        except urllib.error.HTTPError as http_error:
            try:
                payload = json.loads(http_error.read())
            except (ValueError, OSError):
                payload = None
            _raise_service_error(http_error.code, payload)
        except urllib.error.URLError as url_error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {url_error.reason}"
            )
        return payload

    # -- API ------------------------------------------------------------

    def submit(self, request_body: dict) -> dict:
        """``POST /v1/jobs`` — returns the accepted job record."""
        return self._call("POST", "/v1/jobs", body=request_body)

    def job(self, job_id: str) -> dict:
        """``GET /v1/jobs/<id>``."""
        return self._call("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> list[dict]:
        """``GET /v1/jobs`` — all registered jobs."""
        return self._call("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/<id>``."""
        return self._call("DELETE", f"/v1/jobs/{job_id}")

    def trace(self, job_id: str) -> list[dict]:
        """``GET /v1/jobs/<id>/trace`` — the job's trace records."""
        return self._call("GET", f"/v1/jobs/{job_id}/trace")["trace"]

    def metrics(self) -> dict:
        """``GET /v1/metrics``."""
        return self._call("GET", "/v1/metrics")

    def metrics_prometheus(self) -> str:
        """``GET /v1/metrics?format=prometheus`` — raw text exposition."""
        request = urllib.request.Request(
            f"{self.base_url}/v1/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as http_error:
            try:
                payload = json.loads(http_error.read())
            except (ValueError, OSError):
                payload = None
            _raise_service_error(http_error.code, payload)
        except urllib.error.URLError as url_error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {url_error.reason}"
            )

    def healthz(self) -> dict:
        """``GET /v1/healthz``."""
        return self._call("GET", "/v1/healthz")

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        """Poll until the job reaches a finished state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(state: {record['state']})"
                )
            time.sleep(POLL_SECONDS)
