"""Closed-loop load generator for a :class:`QueryService`.

The seed of the ROADMAP scale-out item: hammer one in-process service
with ``concurrency`` client threads, each submitting requests
synchronously (submit → wait → record), and report latency percentiles
and sustained throughput.  Closed-loop clients never outrun the
service, so the numbers measure service capacity, not queue growth.

The default workload is a mix of Thm 5.6 forever-query MCMC requests
over the walk workloads at several sizes — each with a distinct seed so
the result cache cannot collapse the run into one evaluation — but any
list of prepared :class:`QueryRequest` objects can be driven.
"""

from __future__ import annotations

import statistics
import threading
import time
from dataclasses import dataclass, field

from repro.io import database_to_json
from repro.service.request import QueryRequest
from repro.service.service import QueryService, ServiceConfig
from repro.workloads import (
    complete_graph,
    cycle_graph,
    grid_graph,
    random_walk_query,
)

__all__ = ["LoadgenReport", "default_corpus", "run_loadgen"]

#: The Thm 5.6 request mix: (name, graph, start, target).
_WORKLOADS = (
    ("cycle8", lambda: cycle_graph(8), "n0", "n4"),
    ("complete12", lambda: complete_graph(12), "n0", "n4"),
    ("grid6x6", lambda: grid_graph(6, 6), "g0_0", "g3_3"),
)

_WALK_PROGRAM = "C := rename[J->I](project[J](repair-key[I@P](C join E)))"


@dataclass
class LoadgenReport:
    """Latency/throughput summary of one closed-loop run."""

    requests: int
    concurrency: int
    duration_s: float
    completed: int
    failed: int
    latencies_s: list[float] = field(repr=False, default_factory=list)

    @property
    def qps(self) -> float:
        return self.completed / self.duration_s if self.duration_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank latency percentile in seconds (q in [0, 100])."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        rank = max(0, min(len(ordered) - 1, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "concurrency": self.concurrency,
            "completed": self.completed,
            "failed": self.failed,
            "duration_s": round(self.duration_s, 4),
            "qps": round(self.qps, 2),
            "latency_ms": {
                "p50": round(self.percentile(50) * 1e3, 2),
                "p90": round(self.percentile(90) * 1e3, 2),
                "p99": round(self.percentile(99) * 1e3, 2),
                "mean": round(
                    statistics.mean(self.latencies_s) * 1e3
                    if self.latencies_s
                    else 0.0,
                    2,
                ),
                "max": round(
                    max(self.latencies_s) * 1e3 if self.latencies_s else 0.0, 2
                ),
            },
        }


def default_corpus(
    total: int,
    samples: int = 40,
    burn_in: int = 5,
    backend: str | None = None,
) -> list[QueryRequest]:
    """``total`` distinct forever-MCMC requests cycling the workload mix.

    Seeds differ per request, so every request is real work (distinct
    cache key) rather than a result-cache hit.
    """
    databases = {}
    for name, build, start, target in _WORKLOADS:
        _, db = random_walk_query(build(), start, target)
        databases[name] = (database_to_json(db), target)
    requests = []
    for i in range(total):
        name, _, _, target = _WORKLOADS[i % len(_WORKLOADS)]
        db_json, target = databases[name]
        params = {"mcmc": True, "samples": samples, "burn_in": burn_in, "seed": i}
        if backend is not None:
            params["backend"] = backend
        requests.append(
            QueryRequest(
                semantics="forever",
                program=_WALK_PROGRAM,
                database=db_json,
                event=f"C({target})",
                params=params,
            )
        )
    return requests


def run_loadgen(
    requests: list[QueryRequest],
    concurrency: int = 4,
    service: QueryService | None = None,
    timeout: float = 120.0,
) -> LoadgenReport:
    """Drive ``requests`` through a service with closed-loop clients.

    Owns (starts and shuts down) the service unless one is passed in.
    Request latency is wall-clock from submit to job completion; a job
    that errors or times out counts as failed and contributes no
    latency sample.
    """
    own_service = service is None
    if own_service:
        service = QueryService(ServiceConfig(workers=concurrency))
        service.start()
    assert service is not None
    lock = threading.Lock()
    latencies: list[float] = []
    failures = [0]
    cursor = [0]

    def next_request() -> QueryRequest | None:
        with lock:
            if cursor[0] >= len(requests):
                return None
            request = requests[cursor[0]]
            cursor[0] += 1
            return request

    def client() -> None:
        while True:
            request = next_request()
            if request is None:
                return
            start = time.perf_counter()
            try:
                job = service.submit(request)
                job = service.wait(job.id, timeout=timeout)
                ok = job.state == "done"
            except Exception:
                ok = False
            elapsed = time.perf_counter() - start
            with lock:
                if ok:
                    latencies.append(elapsed)
                else:
                    failures[0] += 1

    threads = [
        threading.Thread(target=client, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    begin = time.perf_counter()
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        duration = time.perf_counter() - begin
        if own_service:
            service.shutdown()
    return LoadgenReport(
        requests=len(requests),
        concurrency=concurrency,
        duration_s=duration,
        completed=len(latencies),
        failed=failures[0],
        latencies_s=latencies,
    )
