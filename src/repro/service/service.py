"""The query service facade: sessions + scheduler + caches + metrics.

:class:`QueryService` wires the serving pillars together behind two
methods — :meth:`~QueryService.submit` and :meth:`~QueryService.job` —
that the HTTP front-end (and tests) call directly:

* admission and execution go through the
  :class:`~repro.service.scheduler.JobScheduler` (bounded queue,
  priority lanes, per-job budgets, cancellation);
* each job executes on the
  :class:`~repro.service.session.SessionPool`'s prepared
  :class:`~repro.service.session.EngineSession` for its program, so the
  parse/compile work and the warm transition cache are shared across
  requests;
* deterministic requests (exact, or sampling with a pinned seed) are
  answered from the :class:`~repro.service.result_cache.ResultCache`
  when an identical computation already ran;
* everything observable lands in one
  :class:`~repro.service.metrics.ServiceMetrics` snapshot for
  ``GET /v1/metrics``.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

from repro import faults
from repro.core.evaluation.backend import fallback_reasons as kernel_fallback_reasons
from repro.core.evaluation.backend import fallback_total as kernel_fallback_total
from repro.errors import JobNotFoundError, ProgramRejectedError
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Budget
from repro.service.metrics import ServiceMetrics
from repro.service.request import QueryRequest
from repro.service.result_cache import DEFAULT_RESULT_CACHE_SIZE, ResultCache
from repro.service.scheduler import (
    DEFAULT_JOB_RETRIES,
    DEFAULT_QUEUE_SIZE,
    DEFAULT_REGISTRY_LIMIT,
    DEFAULT_TRACE_EVENTS,
    DEFAULT_WORKERS,
    Job,
    JobScheduler,
)
from repro.service.session import (
    DEFAULT_SESSION_POOL_SIZE,
    DEFAULT_TRANSITION_CACHE_SIZE,
    SessionPool,
)

#: Cap applied to every admitted job when the operator does not set one.
#: Unbounded serving jobs are an availability hazard (Proposition 5.4's
#: exponential state spaces), so the service always has *some* ceiling.
DEFAULT_MAX_BUDGET = Budget(wall_clock=300.0, max_steps=50_000_000)


@dataclass(frozen=True)
class ServiceConfig:
    """Operator-facing knobs for one :class:`QueryService`.

    ``default_budget`` fills budget axes a request leaves open;
    ``max_budget`` clamps every admitted job (see
    :meth:`QueryRequest.make_budget`).  ``trace_events`` bounds the
    per-job in-memory trace served by ``GET /v1/jobs/<id>/trace``
    (``0`` disables job tracing entirely).
    """

    workers: int = DEFAULT_WORKERS
    queue_size: int = DEFAULT_QUEUE_SIZE
    default_budget: Budget | None = None
    max_budget: Budget = field(default_factory=lambda: DEFAULT_MAX_BUDGET)
    session_pool_size: int = DEFAULT_SESSION_POOL_SIZE
    transition_cache_size: int = DEFAULT_TRANSITION_CACHE_SIZE
    result_cache_size: int = DEFAULT_RESULT_CACHE_SIZE
    registry_limit: int = DEFAULT_REGISTRY_LIMIT
    trace_events: int = DEFAULT_TRACE_EVENTS
    max_job_retries: int = DEFAULT_JOB_RETRIES
    load_shedding: bool = True


class QueryService:
    """One serving instance: submit queries, poll jobs, scrape metrics.

    Examples
    --------
    >>> service = QueryService(ServiceConfig(workers=1))
    >>> service.start()
    >>> request = QueryRequest.from_json({
    ...     "semantics": "forever",
    ...     "program": "C := rename[J->I](project[J](repair-key[I@P](C join E)))",
    ...     "database": {"relations": {
    ...         "C": {"columns": ["I"], "rows": [["a"]]},
    ...         "E": {"columns": ["I", "J", "P"],
    ...               "rows": [["a", "b", 1], ["b", "a", 1], ["a", "a", 1]]}}},
    ...     "event": "C(b)",
    ... })
    >>> job = service.submit(request)
    >>> service.wait(job.id, timeout=30.0).result["probability"]
    '1/3'
    >>> service.shutdown()
    """

    def __init__(self, config: ServiceConfig | None = None):
        self.config = config if config is not None else ServiceConfig()
        self.started_at: float | None = None
        self.registry = MetricsRegistry()
        self.metrics = ServiceMetrics(self.registry)
        self.sessions = SessionPool(
            maxsize=self.config.session_pool_size,
            transition_cache_size=self.config.transition_cache_size,
        )
        self.results = ResultCache(maxsize=self.config.result_cache_size)
        self.scheduler = JobScheduler(
            self._execute,
            workers=self.config.workers,
            queue_size=self.config.queue_size,
            default_budget=self.config.default_budget,
            max_budget=self.config.max_budget,
            metrics=self.metrics,
            registry_limit=self.config.registry_limit,
            trace_events=self.config.trace_events,
            max_job_retries=self.config.max_job_retries,
            load_shedding=self.config.load_shedding,
        )
        self._register_gauges()
        # Chaos visibility: every fault-plan firing in *this* process
        # lands in the scraped registry (worker processes count their
        # own firings; the supervisor's restart/retry counters cover
        # them).  Process-global, last service wins — fine for the one
        # service a serving process runs.
        faults_injected = self.registry.counter(
            "repro_faults_injected_total",
            "Fault-plan firings observed in the serving process",
        )
        faults.set_observer(
            lambda site, spec: faults_injected.inc(site=site, action=spec.action)
        )

    def _register_gauges(self) -> None:
        """Callback gauges: each reads its owner's ``stats()`` — one
        consistent critical section under the owner's lock — only at
        scrape time, never caching a possibly-stale sample."""
        self.registry.gauge(
            "repro_scheduler_queue_depth", "Jobs waiting in the bounded queue",
            fn=lambda: self.scheduler.stats()["queue_depth"],
        )
        self.registry.gauge(
            "repro_scheduler_in_flight", "Jobs currently executing",
            fn=lambda: self.scheduler.stats()["in_flight"],
        )
        self.registry.gauge(
            "repro_result_cache_entries", "Results retained in the LRU cache",
            fn=lambda: self.results.stats()["size"],
        )
        self.registry.gauge(
            "repro_session_pool_sessions", "Prepared engine sessions resident",
            fn=lambda: self.sessions.stats()["size"],
        )
        self.registry.gauge(
            "repro_uptime_seconds", "Seconds since the service started",
            fn=lambda: (time.time() - self.started_at) if self.started_at else 0.0,
        )
        self.registry.gauge(
            "repro_kernel_fallback_total",
            "Columnar-backend requests served on the frozenset path",
            fn=kernel_fallback_total,
        )
        from repro.perf.supervisor import warm_pool_heartbeat_ages

        self.registry.gauge(
            "repro_worker_heartbeat_age_seconds",
            "Seconds since each warm-pool worker's last heartbeat",
            fn=warm_pool_heartbeat_ages,
            fn_label="worker",
        )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self.started_at is None:
            self.started_at = time.time()
        self.scheduler.start()

    def shutdown(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop the workers; queued jobs finish as ``cancelled``."""
        self.scheduler.shutdown(wait=wait, cancel_running=cancel_running)

    # -- the serving API ------------------------------------------------

    def submit(self, request: QueryRequest, request_id: str | None = None) -> Job:
        """Admit one request (raises :class:`QueueFullError` at capacity).

        Admission runs the static analyzer first (via the session pool,
        so an accepted program's parse work is already done when a
        worker picks the job up): a program with error-level diagnostics
        — or an event that is provably constant-false against it — is
        rejected here with :class:`~repro.errors.ProgramRejectedError`
        (HTTP 400, diagnostics in the body) and never enters the queue.

        ``request_id`` is the client's idempotency key (``X-Request-Id``
        over HTTP): a retried submit carrying the same key returns the
        already admitted job instead of scheduling it twice.
        """
        try:
            session = self.sessions.get_or_create(request)
            session.check_event(request.event)
        except ProgramRejectedError as error:
            self.metrics.admission_rejected(error.details.get("codes", ()))
            raise
        return self.scheduler.submit(request, request_id=request_id)

    def job(self, job_id: str) -> Job:
        """The job record (raises :class:`JobNotFoundError`)."""
        return self.scheduler.get(job_id)

    def jobs(self) -> list[Job]:
        """All registered jobs, oldest first."""
        return self.scheduler.jobs()

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job."""
        return self.scheduler.cancel(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes."""
        return self.scheduler.wait(job_id, timeout=timeout)

    # -- observability --------------------------------------------------

    def healthz(self) -> dict:
        """Liveness document for ``GET /v1/healthz``."""
        stats = self.scheduler.stats()
        return {
            "status": "ok" if stats["running"] else "stopped",
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else None
            ),
            "workers": stats["workers"],
            "queue_depth": stats["queue_depth"],
            "in_flight": stats["in_flight"],
        }

    def metrics_snapshot(self) -> dict:
        """The full metrics document for ``GET /v1/metrics``."""
        return self.metrics.snapshot(gauges={
            "scheduler": self.scheduler.stats(),
            "result_cache": self.results.stats(),
            "session_pool": self.sessions.stats(),
            "kernel_fallbacks": {
                "total": kernel_fallback_total(),
                "reasons": kernel_fallback_reasons(),
            },
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else None
            ),
        })

    def metrics_prometheus(self) -> str:
        """Text exposition for ``GET /v1/metrics?format=prometheus``."""
        return self.registry.render_prometheus()

    def job_trace(self, job_id: str) -> list[dict]:
        """The job's trace records for ``GET /v1/jobs/<id>/trace``.

        Raises :class:`~repro.errors.JobNotFoundError` when the job
        does not exist *or* has no trace (still running, or the service
        runs with ``trace_events=0``) — the HTTP layer maps both to 404.
        """
        job = self.scheduler.get(job_id)
        if job.trace is None:
            raise JobNotFoundError(
                f"no trace for job {job_id!r} "
                f"(state: {job.state}; tracing "
                f"{'enabled' if self.config.trace_events else 'disabled'})",
                details={"state": job.state,
                         "trace_events": self.config.trace_events},
            )
        return list(job.trace)

    def job_profile(self, job_id: str) -> dict:
        """The job's profile document for ``GET /v1/jobs/<id>/profile``.

        Built on demand from the finished job's trace and run report:
        the span tree with exclusive timings, per-phase totals, the
        resource ledger, and folded stacks for flamegraph tooling.
        Raises :class:`~repro.errors.JobNotFoundError` when the job does
        not exist or has no trace yet (same contract as
        :meth:`job_trace` — the HTTP layer maps both to 404).
        """
        from repro.obs.profile import profile_payload

        job = self.scheduler.get(job_id)
        if job.trace is None:
            raise JobNotFoundError(
                f"no profile for job {job_id!r} "
                f"(state: {job.state}; tracing "
                f"{'enabled' if self.config.trace_events else 'disabled'})",
                details={"state": job.state,
                         "trace_events": self.config.trace_events},
            )
        return profile_payload(list(job.trace), job.report, job_id=job.id)

    # -- execution (called by scheduler workers) ------------------------

    def _execute(self, job: Job) -> dict:
        request = job.request
        cacheable = request.is_cacheable()
        if cacheable:
            cached = self.results.get(request.cache_key())
            if cached is not None:
                job.cache_hit = True
                # Copies keep cached entries immutable even if a caller
                # annotates the returned payload.
                return copy.deepcopy(cached)
        session = self.sessions.get_or_create(request)
        payload = session.evaluate(request, job.context)
        if cacheable:
            self.results.put(request.cache_key(), copy.deepcopy(payload))
        return payload
