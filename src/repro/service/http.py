"""Stdlib HTTP front-end for the query service.

A thin JSON layer over :class:`~repro.service.service.QueryService`,
built on :class:`http.server.ThreadingHTTPServer` only — the serving
layer adds no dependencies.  Routes:

===============================  ========================================
``POST   /v1/jobs``              submit a query (202 + job record)
``GET    /v1/jobs``              list registered jobs
``GET    /v1/jobs/<id>``         poll one job
``GET    /v1/jobs/<id>/trace``   the job's trace records (404 until done)
``GET    /v1/jobs/<id>/profile`` span tree + resource ledger (404 until done)
``DELETE /v1/jobs/<id>``         cancel a queued/running job
``GET    /v1/metrics``           counters, gauges, latency histograms
``GET    /v1/metrics?format=prometheus``  text exposition format 0.0.4
``GET    /v1/healthz``           liveness
===============================  ========================================

Errors map to HTTP statuses via exception type: invalid request → 400,
unknown job → 404, full queue → 429 (the back-pressure contract: a
saturated server *rejects* rather than queueing without bound), server
shutting down → 503, any other :class:`~repro.errors.ReproError` →
400, everything else → 500.  429 and 503 responses carry a
``Retry-After`` header (from the error's ``retry_after`` detail) so
well-behaved clients pace their retries to the server's hint.  Every
error body is ``{"error": {"type", "message", "details"}}``.
A program the static analyzer rejects at admission
(:class:`~repro.errors.ProgramRejectedError`) answers 400 with the
full diagnostic list under ``details.diagnostics`` and the rejecting
codes under ``details.codes`` — see ``docs/analysis.md``.

Submits are idempotent when the client sends an ``X-Request-Id``
header: a retried ``POST /v1/jobs`` carrying the same id returns the
already admitted job instead of scheduling the work twice (the retry
contract of :mod:`repro.runtime.retry`).
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    InvalidRequestError,
    JobNotFoundError,
    QueueFullError,
    ReproError,
    ServiceUnavailableError,
)
from repro.runtime.retry import retry_after_hint
from repro.service.request import QueryRequest
from repro.service.service import QueryService

#: Largest accepted request body (a database is inlined per request).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: ``Retry-After`` seconds when the rejecting error offers no hint.
DEFAULT_RETRY_AFTER = 1.0

_STATUS_BY_ERROR = (
    (QueueFullError, 429),
    (ServiceUnavailableError, 503),
    (JobNotFoundError, 404),
    (InvalidRequestError, 400),
    (ReproError, 400),
)


def error_payload(error: BaseException) -> dict:
    """The JSON error body for any exception."""
    return {
        "error": {
            "type": type(error).__name__,
            "message": str(error),
            "details": dict(getattr(error, "details", {}) or {}),
        }
    }


def status_for(error: BaseException) -> int:
    """The HTTP status an exception maps to."""
    for kind, status in _STATUS_BY_ERROR:
        if isinstance(error, kind):
            return status
    return 500


class ServiceHandler(BaseHTTPRequestHandler):
    """Request handler bound to a :class:`QueryService` via ``server``."""

    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    # BaseHTTPRequestHandler logs every request to stderr by default;
    # the serving process keeps stdout/stderr for its own reporting.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # -- plumbing -------------------------------------------------------

    def _send_json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_error_json(self, error: BaseException) -> None:
        status = status_for(error)
        headers = None
        if status in (429, 503):
            hint = retry_after_hint(error)
            if hint is None:
                hint = DEFAULT_RETRY_AFTER
            headers = {"Retry-After": str(max(1, math.ceil(hint)))}
        self._send_json(status, error_payload(error), headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise InvalidRequestError("request body is required")
        if length > MAX_BODY_BYTES:
            raise InvalidRequestError(
                f"request body too large ({length} bytes; "
                f"limit {MAX_BODY_BYTES})"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise InvalidRequestError(f"request body is not valid JSON: {error}")

    def _job_id(self, path: str) -> str:
        return path[len("/v1/jobs/"):]

    # -- routes ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path != "/v1/jobs":
                raise JobNotFoundError(f"no such endpoint: POST {self.path}")
            request = QueryRequest.from_json(self._read_body())
            request_id = self.headers.get("X-Request-Id") or None
            job = self.service.submit(request, request_id=request_id)
            self._send_json(202, job.as_dict())
        except Exception as error:  # noqa: BLE001 - server must survive
            self._send_error_json(error)

    def do_GET(self) -> None:  # noqa: N802
        try:
            url = urlsplit(self.path)
            path = url.path
            query = parse_qs(url.query)
            if path == "/v1/healthz":
                self._send_json(200, self.service.healthz())
            elif path == "/v1/metrics":
                if query.get("format", ["json"])[-1] == "prometheus":
                    self._send_text(
                        200,
                        self.service.metrics_prometheus(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._send_json(200, self.service.metrics_snapshot())
            elif path == "/v1/jobs":
                self._send_json(200, {
                    "jobs": [job.as_dict() for job in self.service.jobs()],
                })
            elif path.startswith("/v1/jobs/") and path.endswith("/trace"):
                job_id = self._job_id(path)[: -len("/trace")]
                self._send_json(200, {
                    "job_id": job_id,
                    "trace": self.service.job_trace(job_id),
                })
            elif path.startswith("/v1/jobs/") and path.endswith("/profile"):
                job_id = self._job_id(path)[: -len("/profile")]
                self._send_json(200, self.service.job_profile(job_id))
            elif path.startswith("/v1/jobs/"):
                job = self.service.job(self._job_id(path))
                self._send_json(200, job.as_dict())
            else:
                raise JobNotFoundError(f"no such endpoint: GET {path}")
        except Exception as error:  # noqa: BLE001
            self._send_error_json(error)

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            if not self.path.startswith("/v1/jobs/"):
                raise JobNotFoundError(f"no such endpoint: DELETE {self.path}")
            job = self.service.cancel(self._job_id(self.path))
            self._send_json(200, job.as_dict())
        except Exception as error:  # noqa: BLE001
            self._send_error_json(error)


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server owning one :class:`QueryService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: QueryService):
        super().__init__(address, ServiceHandler)
        self.service = service


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> ServiceServer:
    """Bind a server for ``service`` (``port=0`` picks an ephemeral port).

    The caller owns both lifecycles: ``service.start()`` before serving,
    ``server.shutdown()`` then ``service.shutdown()`` after.
    """
    return ServiceServer((host, port), service)
