"""Query requests: the service's wire format, validated and canonical.

A :class:`QueryRequest` is the unit of work the serving layer accepts —
one query of one of the paper's three languages, self-contained: the
program text, the database (as the :mod:`repro.io` JSON structure), the
event, evaluation parameters, and an optional per-job budget.

Two derived keys drive the serving architecture:

* :meth:`QueryRequest.session_key` — SHA-256 of (semantics, program,
  database, pc-tables).  Requests with the same session key share one
  :class:`~repro.service.session.EngineSession`: the program is parsed
  and the transition cache warmed once, then reused.
* :meth:`QueryRequest.cache_key` — SHA-256 of the session key plus the
  event, every evaluation parameter, and the seed.  Requests with the
  same cache key are *the same computation* — sampling runs are seeded,
  so results are deterministic — and the
  :class:`~repro.service.result_cache.ResultCache` serves repeats
  without re-evaluating.  Budgets and priority are deliberately
  excluded: they shape whether/when a job runs, never its value.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import InvalidRequestError
from repro.runtime.budget import Budget

#: The query languages the service evaluates.
SEMANTICS = ("forever", "inflationary", "datalog")

#: Priority lanes, highest first.
PRIORITIES = ("high", "normal")

#: Recognised evaluation parameters per semantics (a superset check;
#: mode applicability is enforced at evaluation time).
_COMMON_PARAMS = frozenset({"epsilon", "delta", "samples", "seed", "max_states"})
_PARAMS = {
    "forever": _COMMON_PARAMS
    | {
        "mcmc", "lumped", "fallback", "burn_in", "workers", "cache_size",
        "backend", "partition",
    },
    "inflationary": _COMMON_PARAMS | {"workers", "cache_size", "backend", "partition"},
    "datalog": _COMMON_PARAMS,
}

#: Recognised execution backends.  ``frozenset``/``columnar`` mirror
#: repro.core.evaluation.backend; ``sparse`` (forever-queries only)
#: answers through the certified CSR rung first, keeping the fallback
#: ladder behind it.
_BACKENDS = (None, "frozenset", "columnar", "sparse")

_BUDGET_KEYS = frozenset({"timeout", "max_steps"})


def _canonical(payload: Any) -> str:
    """Deterministic JSON rendering for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidRequestError(message)


@dataclass(frozen=True)
class QueryRequest:
    """One validated query for the serving layer.

    Attributes
    ----------
    semantics:
        ``"forever"``, ``"inflationary"``, or ``"datalog"``.
    program:
        The program text: ``Name := expression`` kernel lines for the
        fixpoint semantics, datalog rules for ``datalog``.
    database:
        The database as the :mod:`repro.io` JSON structure (a dict).
    event:
        A ground event atom, e.g. ``"C(b)"``.
    pc_tables:
        Optional pc-table JSON (datalog only, Definition 2.1).
    params:
        Evaluation parameters; the recognised keys per semantics are in
        ``repro.service.request._PARAMS``.  Unknown keys are rejected.
    budget:
        Optional ``{"timeout": seconds, "max_steps": n}``.
    priority:
        ``"normal"`` (default) or ``"high"`` (served first).

    Examples
    --------
    >>> request = QueryRequest.from_json({
    ...     "semantics": "forever",
    ...     "program": "C := C",
    ...     "database": {"relations": {"C": {"columns": ["I"], "rows": [["a"]]}}},
    ...     "event": "C(a)",
    ... })
    >>> request.priority
    'normal'
    >>> request.cache_key() == request.cache_key()
    True
    """

    semantics: str
    program: str
    database: Mapping[str, Any]
    event: str
    pc_tables: Mapping[str, Any] | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    budget: Mapping[str, Any] = field(default_factory=dict)
    priority: str = "normal"

    def __post_init__(self) -> None:
        _require(
            self.semantics in SEMANTICS,
            f"unknown semantics {self.semantics!r}; expected one of {SEMANTICS}",
        )
        _require(
            isinstance(self.program, str) and bool(self.program.strip()),
            "program must be a non-empty string",
        )
        _require(isinstance(self.database, Mapping), "database must be a JSON object")
        _require(
            isinstance(self.event, str) and bool(self.event.strip()),
            "event must be a non-empty string",
        )
        _require(
            self.pc_tables is None or isinstance(self.pc_tables, Mapping),
            "pc_tables must be a JSON object",
        )
        _require(
            self.pc_tables is None or self.semantics == "datalog",
            "pc_tables are only supported for datalog requests",
        )
        _require(isinstance(self.params, Mapping), "params must be a JSON object")
        allowed = _PARAMS[self.semantics]
        unknown = sorted(set(self.params) - allowed)
        _require(
            not unknown,
            f"unknown params for {self.semantics!r}: {unknown}; "
            f"expected a subset of {sorted(allowed)}",
        )
        _require(
            self.params.get("backend") in _BACKENDS,
            f"unknown backend {self.params.get('backend')!r}; "
            f"expected one of {[b for b in _BACKENDS if b]}",
        )
        _require(
            self.params.get("backend") != "sparse" or self.semantics == "forever",
            "backend 'sparse' applies to forever-queries only",
        )
        _require(
            self.params.get("partition") in (None, "auto", "off"),
            f"unknown partition mode {self.params.get('partition')!r}; "
            "expected 'auto' or 'off'",
        )
        _require(isinstance(self.budget, Mapping), "budget must be a JSON object")
        bad_budget = sorted(set(self.budget) - _BUDGET_KEYS)
        _require(
            not bad_budget,
            f"unknown budget keys: {bad_budget}; "
            f"expected a subset of {sorted(_BUDGET_KEYS)}",
        )
        _require(
            self.priority in PRIORITIES,
            f"unknown priority {self.priority!r}; expected one of {PRIORITIES}",
        )

    @classmethod
    def from_json(cls, data: Any) -> "QueryRequest":
        """Build and validate a request from a decoded JSON body."""
        _require(isinstance(data, Mapping), "request body must be a JSON object")
        known = {
            "semantics", "program", "database", "event",
            "pc_tables", "params", "budget", "priority",
        }
        unknown = sorted(set(data) - known)
        _require(not unknown, f"unknown request fields: {unknown}")
        missing = sorted(
            key for key in ("semantics", "program", "database", "event")
            if key not in data
        )
        _require(not missing, f"missing request fields: {missing}")
        return cls(
            semantics=data["semantics"],
            program=data["program"],
            database=data["database"],
            event=data["event"],
            pc_tables=data.get("pc_tables"),
            params=data.get("params") or {},
            budget=data.get("budget") or {},
            priority=data.get("priority") or "normal",
        )

    def as_dict(self) -> dict:
        """JSON-friendly rendering (inverse of :meth:`from_json`)."""
        payload: dict = {
            "semantics": self.semantics,
            "program": self.program,
            "database": dict(self.database),
            "event": self.event,
            "params": dict(self.params),
            "budget": dict(self.budget),
            "priority": self.priority,
        }
        if self.pc_tables is not None:
            payload["pc_tables"] = dict(self.pc_tables)
        return payload

    # -- derived keys ---------------------------------------------------

    def session_key(self) -> str:
        """Identity of the prepared engine this request runs on."""
        return _sha256(_canonical({
            "semantics": self.semantics,
            "program": self.program,
            "database": self.database,
            "pc_tables": self.pc_tables,
        }))

    def cache_key(self) -> str:
        """Identity of the full computation, for the result cache.

        Seeded runs are deterministic, so two requests with equal cache
        keys produce equal results; an *unseeded* sampling request is
        not cacheable (each run draws fresh randomness) and gets a
        ``None``-free but unique-per-call treatment from the caller —
        see :meth:`is_cacheable`.
        """
        return _sha256(_canonical({
            "session": self.session_key(),
            "event": self.event,
            "params": {key: self.params[key] for key in sorted(self.params)},
        }))

    def is_cacheable(self) -> bool:
        """Whether an identical request must yield an identical result.

        Exact evaluation is always deterministic.  Sampling modes are
        deterministic only when a seed is pinned.
        """
        if self._wants_sampling() and self.params.get("seed") is None:
            return False
        return True

    def _wants_sampling(self) -> bool:
        # fallback="sparse" keeps the run deterministic: its ladder is
        # exact -> certified iterative solve, with no sampling rung.
        return (
            self.params.get("samples") is not None
            or self.params.get("epsilon") is not None
            or bool(self.params.get("mcmc"))
            or (self.params.get("fallback") or "none") not in ("none", "sparse")
        )

    def make_budget(self, default: Budget | None = None, cap: Budget | None = None) -> Budget:
        """The effective :class:`Budget` for this job.

        Per-axis resolution: the request's value if given, else the
        server default; then clamped to the admission ``cap`` (a server
        that caps an axis never admits an unlimited job on that axis).
        """
        def axis(requested, fallback, ceiling):
            value = requested if requested is not None else fallback
            if ceiling is not None:
                value = ceiling if value is None else min(value, ceiling)
            return value

        timeout = self.budget.get("timeout")
        max_steps = self.budget.get("max_steps")
        _require(
            timeout is None or (isinstance(timeout, (int, float)) and timeout >= 0),
            f"budget timeout must be a non-negative number, got {timeout!r}",
        )
        _require(
            max_steps is None or (isinstance(max_steps, int) and max_steps >= 0),
            f"budget max_steps must be a non-negative integer, got {max_steps!r}",
        )
        default = default or Budget.unlimited()
        cap = cap or Budget.unlimited()
        return Budget(
            wall_clock=axis(timeout, default.wall_clock, cap.wall_clock),
            max_steps=axis(max_steps, default.max_steps, cap.max_steps),
        )
