"""Supervised persistent workers for the parallel samplers.

``BENCH_2026-08-06`` showed the spawn-per-call
:class:`~concurrent.futures.ProcessPoolExecutor` path losing to
sequential execution: every parallel run paid process startup, module
import, and a cold :class:`~repro.perf.cache.TransitionCache` before the
first trial ran.  The :class:`WorkerSupervisor` replaces it with
long-lived warm workers, and adds the fault tolerance the pool never
had:

* **Warm processes** — workers are spawned once and reused across runs;
  each keeps a private registry of transition caches keyed by the
  kernel's repr, so a repeated query starts with a hot cache.
* **Heartbeats** — every worker bumps a shared timestamp from its idle
  loop and from :class:`~repro.perf.parallel.WorkerContext.check`
  inside the sampling hot loop; a worker whose heartbeat goes stale
  past ``heartbeat_timeout`` is declared hung, killed, and restarted.
* **Crash detection** — a worker that exits while a chunk is in flight
  raises :class:`~repro.errors.WorkerCrashError` for that chunk; the
  supervisor restarts the process within a bounded per-run restart
  budget and re-dispatches the chunk.
* **Idempotent chunk retry** — a trial chunk is a pure function of its
  ``(seed, samples, burn_in, budget)`` task, so re-running it after a
  crash/stall/transient fault reproduces the exact tally the lost
  worker would have produced.  Retries follow the
  :data:`~repro.runtime.retry.CHUNK_RETRY` full-jitter policy, bounded
  by ``task_retries``.  Non-retryable failures (budget exhaustion,
  cancellation) propagate immediately.

Determinism is untouched: chunk seeds are still drawn by the caller in
worker order (:func:`~repro.perf.parallel.worker_seeds`), results are
merged in task order, and ``workers=1`` never enters this module.

One module-level supervisor is kept warm and reused whenever an idle
pool with a matching configuration exists (:func:`supervised_run`);
concurrent runs or configuration changes fall back to a one-shot pool
so correctness never waits on the warm pool being free.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro import faults
from repro.errors import (
    WorkerCrashError,
    WorkerPoolError,
    WorkerStalledError,
)
from repro.perf.parallel import absorb_worker_payload
from repro.runtime.retry import CHUNK_RETRY, RetryPolicy, is_retryable

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.perf.parallel import ParallelConfig
    from repro.runtime.context import RunContext

#: Seconds between parent-side polls of the results queue.
_POLL_INTERVAL = 0.05

#: Seconds a worker's idle loop blocks on its inbox between heartbeats.
_IDLE_WAIT = 0.2

#: Seconds to wait for a worker to honour a stop message before killing.
_STOP_GRACE = 2.0

#: Default heartbeat silence tolerated before a worker is declared hung.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: Environment override for the heartbeat timeout (chaos scenarios use a
#: short one so hang detection fires in seconds, not the production 10).
HEARTBEAT_TIMEOUT_ENV = "REPRO_HEARTBEAT_TIMEOUT"


@dataclass(frozen=True)
class SupervisorConfig:
    """Sizing and health-check policy of a :class:`WorkerSupervisor`.

    Attributes
    ----------
    workers / start_method:
        Mirror :class:`~repro.perf.parallel.ParallelConfig`.
    heartbeat_timeout:
        Seconds of heartbeat silence after which a busy worker is
        declared hung and killed.  The sampling hot loop beats every
        :data:`~repro.perf.parallel.WorkerContext.POLL_EVERY` context
        checks, so a healthy worker beats many times per second.
    restart_budget:
        Worker restarts tolerated within one :meth:`WorkerSupervisor.run`
        before the pool gives up with
        :class:`~repro.errors.WorkerPoolError`.
    task_retries:
        Total attempts per task chunk (including the first).
    retry:
        Backoff policy spacing chunk re-dispatches.
    """

    workers: int
    start_method: str | None = None
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT
    restart_budget: int = 3
    task_retries: int = 3
    retry: RetryPolicy = field(default_factory=lambda: CHUNK_RETRY)

    @classmethod
    def from_parallel(cls, config: "ParallelConfig") -> "SupervisorConfig":
        heartbeat = DEFAULT_HEARTBEAT_TIMEOUT
        raw = os.environ.get(HEARTBEAT_TIMEOUT_ENV)
        if raw:
            try:
                heartbeat = max(0.1, float(raw))
            except ValueError:
                pass
        return cls(
            workers=config.workers,
            start_method=config.start_method,
            heartbeat_timeout=heartbeat,
        )


# -- worker process side ----------------------------------------------------


def _worker_main(
    worker_id: int,
    generation: int,
    inbox: Any,
    results: Any,
    heartbeat: Any,
    cancel_event: Any,
) -> None:
    """Entry point of one persistent worker process.

    Serves ``(task_id, fn, task)`` messages from its inbox until it
    receives ``None``.  Errors are reported, never fatal: the worker
    stays up to serve the next chunk (a dead worker costs a restart).
    """
    from repro.perf import parallel

    parallel._CANCEL_EVENT = cancel_event
    parallel._HEARTBEAT = heartbeat
    parallel._PERSISTENT = True
    faults.set_generation(generation)
    faults.install_from_env()
    while True:
        heartbeat.value = time.time()
        try:
            message = inbox.get(timeout=_IDLE_WAIT)
        except queue.Empty:
            continue
        if message is None:
            break
        task_id, fn, task = message
        heartbeat.value = time.time()
        try:
            faults.maybe_fire(
                faults.SITE_SUPERVISOR_TASK, worker=worker_id, task=task_id
            )
            outcome = ("ok", worker_id, task_id, fn(task))
        except BaseException as error:  # noqa: BLE001 - reported to parent
            outcome = ("err", worker_id, task_id, error)
        try:
            results.put(outcome)
        except Exception:
            # The error itself failed to pickle; send a summary so the
            # parent can still account for the chunk.
            results.put((
                "err",
                worker_id,
                task_id,
                WorkerPoolError(f"worker {worker_id} result failed to "
                                f"serialise: {outcome[3]!r}"),
            ))
        heartbeat.value = time.time()


class _WorkerHandle:
    """Parent-side state of one supervised worker process."""

    __slots__ = (
        "worker_id", "generation", "process", "inbox", "heartbeat", "busy_task",
    )

    def __init__(self, worker_id: int, generation: int, mp_context: Any,
                 results: Any, cancel_event: Any):
        self.worker_id = worker_id
        self.generation = generation
        self.inbox = mp_context.Queue()
        self.heartbeat = mp_context.Value("d", time.time())
        self.busy_task: int | None = None
        self.process = mp_context.Process(
            target=_worker_main,
            args=(worker_id, generation, self.inbox, results, self.heartbeat,
                  cancel_event),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        self.process.start()

    def heartbeat_age(self) -> float:
        return time.time() - self.heartbeat.value

    def stop(self, grace: float = _STOP_GRACE) -> None:
        if self.process.is_alive():
            try:
                self.inbox.put_nowait(None)
            except Exception:
                pass
            self.process.join(timeout=grace)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=grace)
        self.inbox.close()


class WorkerSupervisor:
    """A pool of supervised persistent worker processes.

    Thread-safe: one run executes at a time (``run`` serialises on an
    internal lock); :func:`supervised_run` routes concurrent callers to
    one-shot pools instead of queueing them here.

    Lifecycle: workers are spawned eagerly in ``__init__`` so their
    import cost is paid once, before any run is timed.  :meth:`close`
    stops them; the module-level warm pool is closed at interpreter
    exit.
    """

    def __init__(self, config: SupervisorConfig):
        self.config = config
        method = config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._mp = multiprocessing.get_context(method)
        self._results: Any = self._mp.Queue()
        self._cancel: Any = self._mp.Event()
        self._run_lock = threading.Lock()
        self._task_ids = itertools.count()
        self.closed = False
        #: Lifetime restart count (exported as a metric by callers).
        self.restarts_total = 0
        self.retries_total = 0
        #: Spawn generation of replacement workers (fresh workers are 0;
        #: each restart/respawn increments — see FaultSpec.generation).
        self._spawn_generation = 0
        #: Fault-plan environment the workers were spawned under; a
        #: change (a chaos test installing/uninstalling a plan between
        #: runs) recycles the pool so workers see the current plan.
        self._fault_env = os.environ.get(faults.FAULT_PLAN_ENV)
        self._workers = [self._spawn(index) for index in range(config.workers)]

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, worker_id: int, generation: int = 0) -> _WorkerHandle:
        return _WorkerHandle(
            worker_id, generation, self._mp, self._results, self._cancel
        )

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._cancel.set()
        for handle in self._workers:
            handle.stop()
        self._results.close()

    def alive_workers(self) -> int:
        return sum(handle.process.is_alive() for handle in self._workers)

    # -- one run --------------------------------------------------------

    def run(
        self,
        worker: Callable[[dict], dict],
        tasks: Sequence[dict],
        context: "RunContext | None" = None,
    ) -> list[dict]:
        """Run every task to completion; results in task order.

        Semantics match the legacy pool driver: the parent polls its
        ``context`` while waiting (cancellation/deadline propagate via
        the shared event), the first non-retryable failure is re-raised
        after the surviving workers are told to stop, and retryable
        failures (crash, stall, injected transient faults) re-dispatch
        the chunk within the retry and restart budgets.
        """
        with self._run_lock:
            return self._run_locked(worker, tasks, context)

    def _run_locked(
        self,
        worker: Callable[[dict], dict],
        tasks: Sequence[dict],
        context: "RunContext | None",
    ) -> list[dict]:
        if self.closed:
            raise WorkerPoolError("worker supervisor is closed")
        self._cancel.clear()
        self._drain_stale_results()
        self._ensure_workers()

        # Globally unique task ids: results from a cancelled previous
        # run can still arrive and must not be mistaken for this run's.
        ids = [next(self._task_ids) for _ in tasks]
        index_of = {task_id: index for index, task_id in enumerate(ids)}
        results: dict[int, dict] = {}
        attempts: dict[int, int] = {task_id: 0 for task_id in ids}
        #: Earliest dispatch time per task (retry backoff).
        not_before: dict[int, float] = {task_id: 0.0 for task_id in ids}
        pending: list[int] = list(ids)
        run_restarts = 0
        policy = self.config.retry
        jitter = random.Random(0xFA017)

        def record(message: str) -> None:
            if context is not None:
                context.record_event(message)

        def bump(metric: str, **labels: Any) -> None:
            if context is not None and context.metrics is not None:
                context.metrics.counter(metric).inc(**labels)

        def dispatch_ready(now: float) -> None:
            idle = [h for h in self._workers
                    if h.busy_task is None and h.process.is_alive()]
            remaining: list[int] = []
            for task_id in pending:
                if not idle:
                    remaining.append(task_id)
                    continue
                if now < not_before[task_id]:
                    remaining.append(task_id)
                    continue
                handle = idle.pop()
                attempts[task_id] += 1
                handle.busy_task = task_id
                handle.heartbeat.value = time.time()
                handle.inbox.put(
                    (task_id, worker, tasks[index_of[task_id]])
                )
            pending[:] = remaining

        def requeue(task_id: int, error: BaseException) -> None:
            """Re-admit a failed chunk or give up on the whole run."""
            if task_id in results or task_id in pending:
                # A late duplicate report (the chunk was already retried
                # or even completed); chunks are idempotent, ignore it.
                return
            if attempts[task_id] >= self.config.task_retries:
                raise WorkerPoolError(
                    f"task chunk failed {attempts[task_id]} times; "
                    f"last error: {error}",
                    details={"attempts": attempts[task_id]},
                ) from error
            pause = policy.delay(attempts[task_id] - 1, jitter)
            not_before[task_id] = time.time() + pause
            pending.append(task_id)
            self.retries_total += 1
            bump("repro_task_retries_total", error=type(error).__name__)
            if context is not None:
                context.ledger.add("supervisor", retries=1)
            record(
                f"worker chunk retry #{attempts[task_id]}: "
                f"{type(error).__name__}: {error}"
            )

        def restart(handle: _WorkerHandle, error: BaseException) -> None:
            nonlocal run_restarts
            run_restarts += 1
            self.restarts_total += 1
            # Stable low-cardinality reasons: dashboards alert on
            # crash-vs-stall, not on a python exception class name.
            if isinstance(error, WorkerCrashError):
                reason = "crash"
            elif isinstance(error, WorkerStalledError):
                reason = "stall"
            else:
                reason = type(error).__name__
            bump("repro_worker_restarts_total", reason=reason)
            if context is not None:
                context.ledger.add("supervisor", restarts=1)
            record(
                f"worker {handle.worker_id} restarted "
                f"({type(error).__name__}: {error})"
            )
            if run_restarts > self.config.restart_budget:
                raise WorkerPoolError(
                    f"worker restart budget exhausted "
                    f"({self.config.restart_budget} restarts)",
                    details={"restart_budget": self.config.restart_budget},
                ) from error
            index = self._workers.index(handle)
            handle.stop(grace=0.1)
            self._spawn_generation += 1
            self._workers[index] = self._spawn(
                handle.worker_id, self._spawn_generation
            )

        try:
            while len(results) < len(tasks):
                dispatch_ready(time.time())
                try:
                    message = self._results.get(timeout=_POLL_INTERVAL)
                except queue.Empty:
                    message = None
                if message is not None:
                    kind, worker_id, task_id, payload = message
                    handle = self._handle_of(worker_id, task_id)
                    if handle is not None:
                        handle.busy_task = None
                    if task_id in index_of and task_id not in results:
                        if kind == "ok":
                            # Stitch worker-recorded spans while the
                            # dispatching span is still open; a late
                            # duplicate (handle is None) lost its
                            # generation, attribute by worker id only.
                            absorb_worker_payload(
                                context,
                                payload,
                                worker_id=worker_id,
                                spawn_generation=(
                                    handle.generation
                                    if handle is not None else None
                                ),
                            )
                            results[task_id] = payload
                        elif is_retryable(payload):
                            requeue(task_id, payload)
                        else:
                            raise payload
                if context is not None:
                    context.check()
                self._health_check(requeue, restart)
        except BaseException:
            # Stop in-flight chunks; workers stay alive for the next run.
            self._cancel.set()
            raise
        return [results[task_id] for task_id in ids]

    # -- plumbing -------------------------------------------------------

    def _handle_of(self, worker_id: int, task_id: int) -> _WorkerHandle | None:
        for handle in self._workers:
            if handle.worker_id == worker_id and handle.busy_task == task_id:
                return handle
        return None

    def _drain_stale_results(self) -> None:
        while True:
            try:
                self._results.get_nowait()
            except queue.Empty:
                return

    def _ensure_workers(self) -> None:
        """Respawn workers that died between runs (no budget charged —
        the run that lost them already accounted for the failure)."""
        current_env = os.environ.get(faults.FAULT_PLAN_ENV)
        if current_env != self._fault_env:
            # The active fault plan changed since the workers were
            # spawned; recycle the whole pool at generation 0 so every
            # worker runs under the current plan with fresh counters.
            self._fault_env = current_env
            self._spawn_generation = 0
            for index, handle in enumerate(self._workers):
                handle.stop(grace=0.1)
                self._workers[index] = self._spawn(handle.worker_id)
            return
        for index, handle in enumerate(self._workers):
            if not handle.process.is_alive():
                handle.stop(grace=0.0)
                self._spawn_generation += 1
                self._workers[index] = self._spawn(
                    handle.worker_id, self._spawn_generation
                )
            else:
                self._workers[index].busy_task = None

    def _health_check(
        self,
        requeue: Callable[[int, BaseException], None],
        restart: Callable[[_WorkerHandle, BaseException], None],
    ) -> None:
        """Detect crashed and hung busy workers; restart and requeue."""
        for handle in list(self._workers):
            task_id = handle.busy_task
            if task_id is None:
                continue
            if not handle.process.is_alive():
                error: BaseException = WorkerCrashError(
                    f"worker {handle.worker_id} died "
                    f"(exit code {handle.process.exitcode}) with a chunk "
                    "in flight",
                    details={"exitcode": handle.process.exitcode},
                )
            elif handle.heartbeat_age() > self.config.heartbeat_timeout:
                handle.process.kill()
                handle.process.join(timeout=_STOP_GRACE)
                error = WorkerStalledError(
                    f"worker {handle.worker_id} heartbeat stale for "
                    f"{handle.heartbeat_age():.1f}s "
                    f"(timeout {self.config.heartbeat_timeout}s); killed",
                    details={"timeout": self.config.heartbeat_timeout},
                )
            else:
                continue
            handle.busy_task = None
            restart(handle, error)
            requeue(task_id, error)


# -- the module-level warm pool ---------------------------------------------

_GLOBAL: WorkerSupervisor | None = None
_GLOBAL_LOCK = threading.Lock()


def _close_global() -> None:
    global _GLOBAL
    with _GLOBAL_LOCK:
        supervisor, _GLOBAL = _GLOBAL, None
    if supervisor is not None:
        supervisor.close()


atexit.register(_close_global)


def _lease_warm_pool(config: SupervisorConfig) -> WorkerSupervisor | None:
    """The warm pool with its run lock held, or ``None`` if unavailable.

    Unavailable means a run is already executing (the caller uses a
    one-shot pool rather than queueing) — configuration changes retire
    the idle pool and build a fresh one.
    """
    global _GLOBAL
    with _GLOBAL_LOCK:
        supervisor = _GLOBAL
        if supervisor is None or supervisor.closed:
            supervisor = _GLOBAL = WorkerSupervisor(config)
        if not supervisor._run_lock.acquire(blocking=False):
            return None
        if supervisor.config != config:
            supervisor._run_lock.release()
            supervisor.close()
            supervisor = _GLOBAL = WorkerSupervisor(config)
            if not supervisor._run_lock.acquire(blocking=False):
                return None  # pragma: no cover - fresh lock is free
        return supervisor


def supervised_run(
    worker: Callable[[dict], dict],
    tasks: Sequence[dict],
    config: "ParallelConfig",
    context: "RunContext | None" = None,
) -> list[dict]:
    """Run tasks on the warm supervised pool (or a one-shot fallback).

    This is the persistent path behind
    :func:`~repro.perf.parallel.run_worker_pool`; callers keep the
    legacy pool semantics (ordering, budgets, cancellation) and gain
    restart/retry fault tolerance and warm worker caches.
    """
    sup_config = SupervisorConfig.from_parallel(config)
    supervisor = _lease_warm_pool(sup_config)
    if supervisor is not None:
        try:
            return supervisor._run_locked(worker, tasks, context)
        finally:
            supervisor._run_lock.release()
    one_shot = WorkerSupervisor(sup_config)
    try:
        return one_shot.run(worker, tasks, context)
    finally:
        one_shot.close()


def prewarm(workers: int, start_method: str | None = None) -> dict:
    """Spawn the module-level warm pool ahead of the first parallel run.

    ``repro serve --supervise`` calls this at startup so the first
    sampling job with ``workers > 1`` finds hot worker processes instead
    of paying spawn + import latency.  Idempotent: an existing matching
    pool is left alone.
    """
    supervisor = _lease_warm_pool(SupervisorConfig(
        workers=workers, start_method=start_method,
    ))
    if supervisor is not None:
        supervisor._run_lock.release()
    return warm_pool_stats()


def warm_pool_stats() -> dict:
    """Counters of the module-level warm pool (for metrics callbacks)."""
    with _GLOBAL_LOCK:
        supervisor = _GLOBAL
        if supervisor is None or supervisor.closed:
            return {
                "alive": 0, "workers": 0, "restarts": 0, "retries": 0,
                "heartbeat_ages": {},
            }
        return {
            "alive": supervisor.alive_workers(),
            "workers": supervisor.config.workers,
            "restarts": supervisor.restarts_total,
            "retries": supervisor.retries_total,
            "heartbeat_ages": {
                str(handle.worker_id): round(handle.heartbeat_age(), 3)
                for handle in supervisor._workers
                if handle.process.is_alive()
            },
        }


def warm_pool_heartbeat_ages() -> dict[str, float]:
    """Per-worker heartbeat age in seconds (the ``/v1/metrics`` gauge)."""
    return dict(warm_pool_stats()["heartbeat_ages"])
