"""Multi-core trial execution for the Monte-Carlo samplers.

The Theorem 4.3 and Theorem 5.6 samplers are embarrassingly parallel:
every trial is an independent walk whose tally merges into one
Chernoff-valid estimate.  This module fans the planned trials out over
a :class:`concurrent.futures.ProcessPoolExecutor` while preserving the
three contracts the rest of the library depends on:

* **Determinism** — each worker runs an independent RNG stream seeded
  by ``master.getrandbits(64)`` draws taken in worker order, so a fixed
  ``(seed, workers)`` pair always produces the same estimate
  (*seed-stable*), and ``workers=1`` never enters this module at all —
  the samplers keep their historical single-stream path, so results
  there are bit-identical to previous releases.
* **Budgets** — the caller's remaining step budget is pro-rated across
  workers (shares sum exactly to the remainder) and the wall-clock
  deadline is forwarded, so a parallel run can never outspend the
  :class:`~repro.runtime.budget.Budget` a sequential run honours.
* **Cancellation** — the parent polls its own
  :class:`~repro.runtime.context.RunContext` while the pool runs; any
  cancellation or deadline trip flips a shared event that every
  worker's :class:`WorkerContext` polls, so workers stop within a few
  transitions instead of running to completion.

Workers return plain tally dicts (positives, samples, steps, cache
counters); the samplers merge them and build the usual
:class:`~repro.core.evaluation.results.SamplingResult`.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from concurrent.futures import FIRST_EXCEPTION, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import EvaluationError
from repro.obs.profile import drain_worker_spans, stitch_spans, worker_tracer
from repro.obs.trace import NullTracer, Tracer
from repro.runtime.budget import Budget
from repro.runtime.context import RunContext

#: Seconds between parent-side budget/cancellation polls while waiting.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class ParallelConfig:
    """How to parallelise a sampler's trials.

    Attributes
    ----------
    workers:
        Number of worker processes.  ``1`` (the default) disables the
        pool entirely and keeps the sampler on its historical,
        bit-identical sequential path.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``"fork"``
        where available (Linux) and the platform default elsewhere.
    persistent:
        With the default ``True``, trials run on the supervised warm
        worker pool (:mod:`repro.perf.supervisor`): processes persist
        across runs, keep warm transition caches, heartbeat, and are
        restarted on crash/hang with chunks re-dispatched
        idempotently.  ``False`` keeps the legacy spawn-per-call
        :class:`~concurrent.futures.ProcessPoolExecutor` (used by the
        benchmark comparison and as an escape hatch).  Both paths use
        identical seeds, chunking, and merge order, so results are
        bit-identical between them for a fixed ``(seed, workers)``.

    Examples
    --------
    >>> ParallelConfig(workers=4).workers
    4
    """

    workers: int = 1
    start_method: str | None = None
    persistent: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise EvaluationError(f"workers must be >= 1, got {self.workers!r}")
        methods = multiprocessing.get_all_start_methods()
        if self.start_method is not None and self.start_method not in methods:
            raise EvaluationError(
                f"unknown start method {self.start_method!r}; "
                f"this platform supports {methods}"
            )

    @property
    def enabled(self) -> bool:
        """Whether a pool will actually be used."""
        return self.workers > 1

    def mp_context(self):
        """The resolved multiprocessing context."""
        method = self.start_method
        if method is None:
            method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else None
            )
        return multiprocessing.get_context(method)


# -- deterministic seeding and budget pro-rating ---------------------------


def worker_seeds(master: random.Random, workers: int) -> list[int]:
    """Derive one 64-bit seed per worker from the master stream.

    Seeds are drawn in worker order, so a fixed master seed and worker
    count always yields the same seed vector regardless of scheduling.
    """
    return [master.getrandbits(64) for _ in range(workers)]


def split_trials(total: int, workers: int) -> list[int]:
    """Split ``total`` trials into ``workers`` near-equal shares.

    The shares sum exactly to ``total``; earlier workers absorb the
    remainder.  Shares can be zero when ``total < workers``.
    """
    if total < 0:
        raise EvaluationError(f"cannot split {total} trials")
    base, remainder = divmod(total, workers)
    return [base + (1 if index < remainder else 0) for index in range(workers)]


def prorated_budgets(context: RunContext | None, workers: int) -> list[Budget]:
    """Per-worker budgets whose step shares sum to the parent's remainder.

    The wall-clock deadline is forwarded as the parent's *remaining*
    time (each worker restarts the clock when it builds its context),
    and ``max_states`` is not forwarded — the samplers never
    materialise chains inside workers.
    """
    if context is None:
        return [Budget.unlimited() for _ in range(workers)]
    remaining_time = context.remaining_time()
    limit = context.budget.max_steps
    if limit is None:
        shares: list[int | None] = [None] * workers
    else:
        shares = list(split_trials(max(limit - context.steps_used, 0), workers))
    return [
        Budget(wall_clock=remaining_time, max_steps=share) for share in shares
    ]


# -- worker-side context ---------------------------------------------------

#: Cross-process cancellation flag, installed by the pool initializer
#: (legacy pool) or the supervisor's worker main loop.
_CANCEL_EVENT: Any = None

#: Shared heartbeat timestamp (``multiprocessing.Value("d")``) bumped
#: from the sampling hot loop so the supervisor can tell a slow worker
#: from a hung one.  ``None`` outside supervised workers.
_HEARTBEAT: Any = None

#: True inside a supervised persistent worker; enables the warm
#: transition-cache registry below.
_PERSISTENT = False

#: Warm caches surviving across tasks in a persistent worker, keyed by
#: ``(repr(kernel), maxsize)``.  Kernels arrive freshly unpickled with
#: every task, so on reuse the cache is re-bound to the new — equal —
#: kernel object (``repr`` is the kernels' identity: it renders the
#: full algebra tree).
_WARM_CACHES: dict[tuple[str, int], Any] = {}


def _pool_initializer(cancel_event: Any) -> None:
    global _CANCEL_EVENT
    _CANCEL_EVENT = cancel_event


def _warm_cache(kernel: Any, cache_size: int | None) -> Any:
    """The persistent worker's warm cache for ``kernel``, or ``None``.

    The ``worker.cache`` fault site models cache corruption: a fired
    ``corrupt`` action discards the warm entries (the detected-and-
    dropped response), which costs recomputation but cannot change any
    estimate — the cached sampler draws exactly one uniform per step
    whether it hits or misses, so the RNG stream is hit/miss-invariant.
    """
    if not _PERSISTENT or cache_size is None:
        return None
    from repro import faults
    from repro.perf.cache import TransitionCache

    key = (repr(kernel), cache_size)
    cache = _WARM_CACHES.get(key)
    if cache is None:
        cache = _WARM_CACHES[key] = TransitionCache(kernel, maxsize=cache_size)
    else:
        cache.kernel = kernel
    spec = faults.maybe_fire(faults.SITE_WORKER_CACHE)
    if spec is not None and spec.action == "corrupt":
        cache.clear()
    return cache


class WorkerContext(RunContext):
    """A :class:`RunContext` that also honours the pool's cancel event.

    The shared event is polled every :data:`POLL_EVERY` checks (an
    ``Event.is_set`` crosses a lock, so per-step polling would tax the
    hot loop); a set event behaves exactly like a local
    :meth:`~RunContext.cancel` call.  Under the supervisor the same
    polling cadence also bumps the worker's heartbeat, so "alive and
    sampling" and "hung" are distinguishable from the parent.
    """

    POLL_EVERY = 64

    def __init__(
        self,
        budget: Budget | None = None,
        tracer: Tracer | NullTracer | None = None,
    ):
        super().__init__(budget, tracer=tracer)
        self._poll_countdown = self.POLL_EVERY

    def check(self) -> None:
        self._poll_countdown -= 1
        if self._poll_countdown <= 0:
            self._poll_countdown = self.POLL_EVERY
            if _CANCEL_EVENT is not None and _CANCEL_EVENT.is_set():
                self.cancel()
            if _HEARTBEAT is not None:
                _HEARTBEAT.value = time.time()
        super().check()


# -- worker entry points ---------------------------------------------------
#
# These run inside the pool processes; the sampler imports happen lazily
# so that this module never forms an import cycle with the evaluators.


def _run_mcmc_trials(task: dict) -> dict:
    from repro.core.evaluation.sampling_noninflationary import evaluate_forever_mcmc

    context = WorkerContext(task["budget"], tracer=worker_tracer(task))
    backend = task.get("backend")
    # A warm cache is keyed on the frozenset kernel; with the columnar
    # backend the evaluator compiles in-process and builds its own
    # cache from cache_size (a cache serves exactly one kernel object).
    cache = (
        None
        if backend == "columnar"
        else _warm_cache(task["query"].kernel, task["cache_size"])
    )
    result = evaluate_forever_mcmc(
        task["query"],
        task["initial"],
        samples=task["samples"],
        burn_in=task["burn_in"],
        rng=task["seed"],
        cache_size=task["cache_size"],
        context=context,
        cache=cache,
        backend=backend,
    )
    payload = {
        "positive": result.positive,
        "samples": result.samples,
        "steps": context.steps_used,
        "cache": result.details.get("cache"),
    }
    return _attach_worker_observability(payload, context)


def _run_inflationary_trials(task: dict) -> dict:
    from repro.core.evaluation.sampling_inflationary import (
        evaluate_inflationary_sampling,
    )

    context = WorkerContext(task["budget"], tracer=worker_tracer(task))
    backend = task.get("backend")
    cache = (
        None
        if backend == "columnar"
        else _warm_cache(task["query"].kernel, task["cache_size"])
    )
    result = evaluate_inflationary_sampling(
        task["query"],
        task["initial"],
        samples=task["samples"],
        rng=task["seed"],
        max_steps=task["max_steps"],
        stall_threshold=task["stall_threshold"],
        cache_size=task["cache_size"],
        context=context,
        cache=cache,
        backend=backend,
    )
    payload = {
        "positive": result.positive,
        "samples": result.samples,
        "steps": context.steps_used,
        "total_steps": result.details["mean_steps_per_sample"] * result.samples,
        "cache": result.details.get("cache"),
    }
    return _attach_worker_observability(payload, context)


def _attach_worker_observability(payload: dict, context: RunContext) -> dict:
    """Ship the worker's recorded spans/ledger back inside its payload.

    Both keys are plain picklable data; the parent pops them back out
    via :func:`absorb_worker_payload` before tallies merge, so result
    aggregation never sees them.
    """
    spans = drain_worker_spans(context.tracer)
    if spans:
        payload["spans"] = spans
    if not context.ledger.empty:
        payload["ledger"] = context.ledger.as_dict()
    return payload


def absorb_worker_payload(
    context: RunContext | None,
    payload: Any,
    *,
    worker_id: int | None = None,
    spawn_generation: int | None = None,
) -> None:
    """Stitch a returned task payload's spans/ledger into the parent.

    Called at result-receipt time (the supervisor's results loop, or
    the legacy executor's gather), when the dispatching span is still
    open on the parent tracer — that is what parents stitched roots
    under.  Mutates ``payload`` by popping the observability keys.
    """
    if context is None or not isinstance(payload, dict):
        return
    spans = payload.pop("spans", None)
    if spans:
        stitch_spans(
            context.tracer,
            spans,
            worker_id=worker_id,
            spawn_generation=spawn_generation,
        )
    ledger = payload.pop("ledger", None)
    if ledger:
        context.ledger.merge_dict(ledger)


# -- parent-side pool driver ----------------------------------------------


def run_worker_pool(
    worker: Callable[[dict], dict],
    tasks: Sequence[dict],
    config: ParallelConfig,
    context: RunContext | None = None,
) -> list[dict]:
    """Run one task per worker, merging budget/cancellation semantics.

    Blocks until every worker finishes; polls the parent ``context``
    while waiting so a cancellation or wall-clock trip in the parent
    propagates to the workers via the shared event.  The first worker
    exception (e.g. a pro-rated budget trip) is re-raised in the parent
    after the remaining workers have been told to stop.

    With ``config.persistent`` (the default) the tasks run on the
    supervised warm pool — same ordering, budget, and cancellation
    semantics, plus crash/hang recovery; ``persistent=False`` keeps the
    legacy spawn-per-call executor below.
    """
    if config.persistent:
        from repro.perf.supervisor import supervised_run

        return supervised_run(worker, tasks, config, context)
    return _run_executor_pool(worker, tasks, config, context)


def _run_executor_pool(
    worker: Callable[[dict], dict],
    tasks: Sequence[dict],
    config: ParallelConfig,
    context: RunContext | None = None,
) -> list[dict]:
    """The legacy spawn-per-call pool (``persistent=False``)."""
    mp_context = config.mp_context()
    cancel_event = mp_context.Event()
    with ProcessPoolExecutor(
        max_workers=len(tasks),
        mp_context=mp_context,
        initializer=_pool_initializer,
        initargs=(cancel_event,),
    ) as pool:
        futures: list[Future] = [pool.submit(worker, task) for task in tasks]
        try:
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending, timeout=_POLL_INTERVAL, return_when=FIRST_EXCEPTION
                )
                for future in done:
                    future.result()  # re-raise worker failures eagerly
                if context is not None:
                    context.check()
        except BaseException:
            cancel_event.set()
            for future in futures:
                future.cancel()
            raise
    results = [future.result() for future in futures]
    for index, payload in enumerate(results):
        # Legacy pool: one fresh process per task, so the task index
        # stands in for a worker id and the generation is always 0.
        absorb_worker_payload(
            context, payload, worker_id=index, spawn_generation=0
        )
    return results


def merge_tallies(tallies: Sequence[dict]) -> dict:
    """Sum per-worker tallies into one Chernoff-valid aggregate.

    Trials in different workers are independent (independent seeds, no
    shared state), so the summed positives over the summed samples obey
    the same Hoeffding/Chernoff bound the sequential plan was sized
    for.  Cache counters are summed across the workers' private caches.
    """
    merged = {
        "positive": sum(t["positive"] for t in tallies),
        "samples": sum(t["samples"] for t in tallies),
        "steps": sum(t["steps"] for t in tallies),
    }
    caches = [t.get("cache") for t in tallies if t.get("cache")]
    if caches:
        merged["cache"] = {
            "size": sum(c["size"] for c in caches),
            "maxsize": sum(c["maxsize"] for c in caches),
            "hits": sum(c["hits"] for c in caches),
            "misses": sum(c["misses"] for c in caches),
            "evictions": sum(c["evictions"] for c in caches),
            "hit_rate": (
                sum(c["hits"] for c in caches)
                / max(sum(c["hits"] + c["misses"] for c in caches), 1)
            ),
        }
    if any("total_steps" in t for t in tallies):
        merged["total_steps"] = sum(t.get("total_steps", 0) for t in tallies)
    return merged
