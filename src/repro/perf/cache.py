"""Memoized transition kernels: a bounded LRU cache of exact rows.

Every evaluator that walks the Markov chain over database states pays
the same bill at every step: evaluating the kernel's relational-algebra
tree on the current state.  MCMC walkers (Theorem 5.6) and the BFS
chain builder (Proposition 5.4) revisit the *same* states over and over
— a random walk on an n-state chain touches n distinct states but takes
burn_in × samples steps — so the algebra work is overwhelmingly
redundant.  A :class:`TransitionCache` memoizes
:meth:`~repro.core.interpretation.Interpretation.transition` per state
(states are immutable, hashable :class:`~repro.relational.database.Database`
snapshots, so the key is free) and keeps a cumulative-weight index next
to each cached :class:`~repro.probability.distribution.Distribution` so
that drawing a successor is one ``rng.random()`` plus an O(log k)
bisection instead of a fresh algebra evaluation.

Two caveats, both documented in ``docs/performance.md``:

* **Support size.**  The exact row enumerates *all* possible worlds of
  Q(state), which can be exponential in the number of probabilistic
  choices, whereas ``sample_transition`` stays polynomial.  The cache
  is therefore opt-in, intended for kernels whose per-state support is
  small (e.g. single-repair-key random walks).
* **RNG stream.**  Cached sampling consumes exactly one uniform draw
  per step; ``sample_transition`` consumes one per repair-key block.
  Results are drawn from the *same exact distribution* but the random
  stream differs, so cached and uncached runs with the same seed are
  not bit-identical (each is individually deterministic).
"""

from __future__ import annotations

import random
import threading
from bisect import bisect_right
from collections import OrderedDict
from itertools import accumulate

from repro.core.interpretation import Interpretation
from repro.errors import ProbabilityError
from repro.probability.distribution import Distribution
from repro.relational.database import Database
from repro.relational.ordering import database_sort_key

#: Default number of distinct states kept by a cache.
DEFAULT_CACHE_SIZE = 4096


class CachedRow:
    """One memoized transition row: the exact distribution plus a
    cumulative-weight index for O(log k) successor draws.

    Outcome states are ordered canonically (see
    :func:`~repro.relational.ordering.database_sort_key`), never by
    distribution insertion order: the cumulative-weight index — and with
    it every cached draw — is then identical across interpreter
    invocations and across the frozenset/columnar backends, whose states
    sort order-isomorphically.
    """

    __slots__ = ("distribution", "_outcomes", "_cumulative")

    def __init__(self, distribution: Distribution[Database]):
        self.distribution = distribution
        self._outcomes = sorted(distribution, key=database_sort_key)
        self._cumulative = list(
            accumulate(float(distribution.probability(o)) for o in self._outcomes)
        )

    def sample(self, rng: random.Random) -> Database:
        """Draw one successor state (one uniform draw, one bisection)."""
        total = self._cumulative[-1]
        pick = rng.random() * total
        index = bisect_right(self._cumulative, pick)
        if index >= len(self._outcomes):
            index = len(self._outcomes) - 1
        return self._outcomes[index]

    def __len__(self) -> int:
        return len(self._outcomes)


class TransitionCache:
    """A bounded LRU memo of ``kernel.transition(state)`` rows.

    Parameters
    ----------
    kernel:
        The transition kernel whose rows are memoized.  One cache
        serves exactly one kernel; sharing a cache across kernels would
        silently mix distributions.
    maxsize:
        Upper bound on the number of distinct states retained; the
        least-recently-used row is evicted beyond it.

    The counters ``hits`` / ``misses`` / ``evictions`` are plain ints,
    surfaced on :class:`~repro.runtime.context.RunReport` via
    :meth:`RunContext.attach_cache <repro.runtime.context.RunContext.attach_cache>`.

    The cache is thread-safe: the LRU order, the counters, and row
    insertion are guarded by an internal lock, so a long-lived cache can
    be shared by the concurrent workers of a
    :class:`~repro.service.JobScheduler` (one
    :class:`~repro.service.EngineSession` keeps one warm cache across
    requests).  Row *computation* happens outside the lock — two threads
    missing the same state may both evaluate the kernel, but the row is
    deterministic so either result is correct, and hits never block on
    another thread's algebra evaluation.

    Examples
    --------
    >>> from repro.workloads import cycle_graph, random_walk_query
    >>> query, db = random_walk_query(cycle_graph(4), "n0", "n2")
    >>> cache = TransitionCache(query.kernel, maxsize=16)
    >>> cache.transition(db) == query.kernel.transition(db)
    True
    >>> cache.transition(db) is cache.transition(db)   # memoized
    True
    >>> (cache.hits, cache.misses, cache.evictions)
    (2, 1, 0)
    """

    __slots__ = ("kernel", "maxsize", "_rows", "_lock", "hits", "misses", "evictions")

    def __init__(self, kernel: Interpretation, maxsize: int = DEFAULT_CACHE_SIZE):
        if maxsize < 1:
            raise ProbabilityError(f"cache maxsize must be >= 1, got {maxsize!r}")
        self.kernel = kernel
        self.maxsize = maxsize
        self._rows: OrderedDict[Database, CachedRow] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def row(self, state: Database) -> CachedRow:
        """The memoized row for ``state`` (computed on first request)."""
        with self._lock:
            row = self._rows.get(state)
            if row is not None:
                self.hits += 1
                self._rows.move_to_end(state)
                return row
            self.misses += 1
        row = CachedRow(self.kernel.transition(state))
        with self._lock:
            existing = self._rows.get(state)
            if existing is not None:
                # Another thread raced us to the same state; keep its
                # row so concurrent callers share one object.
                return existing
            self._rows[state] = row
            if len(self._rows) > self.maxsize:
                self._rows.popitem(last=False)
                self.evictions += 1
        return row

    def transition(self, state: Database) -> Distribution[Database]:
        """Memoized ``kernel.transition(state)``."""
        return self.row(state).distribution

    def sample(self, state: Database, rng: random.Random) -> Database:
        """Draw one successor of ``state`` from the memoized exact row."""
        return self.row(state).sample(rng)

    def clear(self) -> None:
        """Drop all rows (counters are kept — they describe the run)."""
        with self._lock:
            self._rows.clear()

    def stats(self) -> dict:
        """JSON-friendly counter snapshot for :class:`RunReport`.

        All fields are read in one critical section, so a snapshot taken
        mid-eviction can never pair a new size with old counters.
        """
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
            size = len(self._rows)
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": (hits / total) if total else None,
        }

    def __repr__(self) -> str:
        return (
            f"TransitionCache(size={len(self._rows)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses}, evictions={self.evictions})"
        )
