"""Performance layer: memoized kernels and multi-core sampling.

Three pillars, threaded through the evaluators the same way
:mod:`repro.runtime` threads ``context=``:

* :class:`TransitionCache` — a bounded LRU memo of exact transition
  rows (``Interpretation.transition``) with a cumulative-weight index,
  so walkers and the BFS chain builder evaluate each distinct state's
  algebra tree once and then draw successors in O(log k);
* :class:`ParallelConfig` — multi-core trial execution for the
  Theorem 4.3 / Theorem 5.6 samplers over a process pool, with
  deterministic per-worker RNG streams, pro-rated budgets, and
  cross-process cancellation;
* the Bareiss fraction-free exact solver lives in
  :mod:`repro.markov.linalg` (it replaces the inner loop of the old
  Fraction Gaussian elimination) and is re-validated against the old
  path by ``benchmarks/run_benchmarks.py``.

See ``docs/performance.md`` for the determinism contract and the cache
semantics.
"""

from repro.perf.cache import DEFAULT_CACHE_SIZE, CachedRow, TransitionCache
from repro.perf.parallel import (
    ParallelConfig,
    WorkerContext,
    absorb_worker_payload,
    merge_tallies,
    prorated_budgets,
    run_worker_pool,
    split_trials,
    worker_seeds,
)
from repro.perf.supervisor import (
    SupervisorConfig,
    WorkerSupervisor,
    prewarm,
    supervised_run,
    warm_pool_heartbeat_ages,
    warm_pool_stats,
)

__all__ = [
    "CachedRow",
    "DEFAULT_CACHE_SIZE",
    "ParallelConfig",
    "SupervisorConfig",
    "TransitionCache",
    "WorkerContext",
    "WorkerSupervisor",
    "absorb_worker_payload",
    "merge_tallies",
    "prewarm",
    "prorated_budgets",
    "run_worker_pool",
    "split_trials",
    "supervised_run",
    "warm_pool_heartbeat_ages",
    "warm_pool_stats",
    "worker_seeds",
]
