"""Forever-queries and inflationary queries (Definitions 3.2 and 3.4).

A :class:`ForeverQuery` pairs a transition kernel (a probabilistic
first-order :class:`~repro.core.interpretation.Interpretation`) with a
query event.  Its semantics is the random walk over database instances:
the query result is the long-run probability that the event holds
(Definition 3.2's Cesàro limit, equal to the stationary probability on
ergodic chains).

An :class:`InflationaryQuery` is the Definition 3.4 fragment: every
possible world of Q(A) must contain A.  Its result is the probability
that the event holds at the (almost surely reached) fixpoint.

Both classes are declarative descriptions; the evaluation algorithms
live in :mod:`repro.core.evaluation`.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.events import QueryEvent
from repro.core.interpretation import Interpretation
from repro.errors import NotInflationaryError
from repro.relational.algebra import Expression, RelationRef, Union
from repro.relational.database import Database


class ForeverQuery:
    """A non-inflationary query ``(Q, e)`` (Definition 3.2).

    Examples
    --------
    >>> from repro.relational import rel
    >>> from repro.core.events import TupleIn
    >>> query = ForeverQuery(Interpretation({"C": rel("C")}), TupleIn("C", ("v",)))
    """

    def __init__(self, kernel: Interpretation, event: QueryEvent):
        self.kernel = kernel
        self.event = event

    def __repr__(self) -> str:
        return f"ForeverQuery(kernel={self.kernel!r}, event={self.event!r})"


class InflationaryQuery(ForeverQuery):
    """An inflationary query (Definition 3.4).

    The inflationarity condition (every world of Q(A) contains A) is a
    *semantic* property; it is enforced dynamically by the evaluators
    via :meth:`check_step` on every state they expand.  Kernels built
    with :func:`inflationary_interpretation` satisfy it by construction.
    """

    def check_step(self, db: Database, world: Database) -> None:
        """Raise :class:`~repro.errors.NotInflationaryError` unless
        ``world ⊇ db``."""
        if not world.contains_database(db):
            raise NotInflationaryError(
                f"kernel produced a shrinking world from {db!r}; "
                "the query is not inflationary (Definition 3.4)"
            )


def inflationary_interpretation(
    additions: Mapping[str, Expression],
    pc_tables=None,
) -> Interpretation:
    """Build a kernel that is inflationary by construction.

    Each relation R listed in ``additions`` gets the query
    ``R := R ∪ additions[R]`` — the paper's canonical way of defining
    inflationary queries ("the new state as the union of the old state
    with the result of a query on the old state", Section 3.2).
    Relations not listed stay unchanged.

    Note: a pc-table attached here is *not* inflationary on its own
    (re-instantiation may drop tuples); the inflationary evaluators fix
    the pc-table valuation once, as Section 3.2 prescribes.
    """
    queries = {
        name: Union(RelationRef(name), expression)
        for name, expression in additions.items()
    }
    return Interpretation(queries, pc_tables=pc_tables)


def simulate_trajectory(
    query: ForeverQuery,
    initial: Database,
    steps: int,
    rng: random.Random,
) -> list[Database]:
    """One sampled trajectory [s₀, s₁, ..., s_steps] of the forever-loop.

    Useful for inspection and for the implicit-chain convergence
    heuristics; the proper evaluators live in
    :mod:`repro.core.evaluation`.
    """
    query.kernel.check_schema(initial)
    trajectory = [initial]
    state = initial
    for _ in range(steps):
        state = query.kernel.sample_transition(state, rng)
        trajectory.append(state)
    return trajectory
