"""Building the Markov chain over database states (Section 3.1).

A transition kernel Q and an initial database A induce a Markov chain M
whose states are database instances: the paper's semantic object for
non-inflationary queries.  :func:`build_state_chain` materialises the
reachable part of M by breadth-first exploration, evaluating Q exactly
on each discovered state.

The chain can have exponentially many states in the database size
(Proposition 5.4's analysis); ``max_states`` is a hard safety limit and
exceeding it raises :class:`~repro.errors.StateSpaceLimitExceeded` so
callers can fall back to sampling (Theorem 5.6).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.core.interpretation import Interpretation
from repro.errors import EvaluationError, StateSpaceLimitExceeded
from repro.markov.chain import MarkovChain
from repro.obs.trace import tracer_of
from repro.probability.distribution import Distribution
from repro.relational.database import Database

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.perf.cache import TransitionCache
    from repro.runtime.context import RunContext

#: Default cap on the number of database states explored.
DEFAULT_MAX_STATES = 20_000


def build_state_chain(
    kernel: Interpretation,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
    cache: "TransitionCache | None" = None,
) -> MarkovChain[Database]:
    """The reachable Markov chain over database states from ``initial``.

    Every reachable state's transition row is the exact distribution
    Q(state); the result is a closed chain suitable for the exact
    machinery of :mod:`repro.markov`.

    ``context`` (a :class:`~repro.runtime.RunContext`) makes the
    exploration interruptible: each materialised state is charged
    against the context's budget and the cancellation token is polled
    once per expanded state.  Omitting it keeps the build unbounded
    apart from ``max_states``.

    ``cache`` (a :class:`~repro.perf.cache.TransitionCache` built on
    the *same* kernel, e.g. ``kernel.cached()``) memoizes rows across
    builds: rebuilding a chain — or building it after a sampler warmed
    the cache — skips the algebra evaluation for every remembered
    state.  A single BFS visits each state once, so a cold cache only
    helps later calls.

    Examples
    --------
    >>> from repro.relational import Relation, rel, repair_key, project, rename, join
    >>> db = Database({
    ...     "C": Relation(("I",), [("a",)]),
    ...     "E": Relation(("I", "J", "P"), [("a", "b", 1), ("b", "a", 1)]),
    ... })
    >>> walk = rename(project(repair_key(join(rel("C"), rel("E")), ("I",), "P"), "J"), J="I")
    >>> chain = build_state_chain(Interpretation({"C": walk}), db)
    >>> chain.size
    2
    """
    kernel.check_schema(initial)
    if cache is not None and cache.kernel is not kernel:
        raise EvaluationError(
            "transition cache was built for a different kernel; "
            "a cache memoizes exactly one kernel's rows"
        )
    tracer = tracer_of(context)
    transitions: dict[Database, Distribution[Database]] = {}
    queue: deque[Database] = deque([initial])
    discovered = {initial}
    if context is not None:
        context.tick_states()
    while queue:
        if context is not None:
            context.check()
        state = queue.popleft()
        row = cache.transition(state) if cache is not None else kernel.transition(state)
        transitions[state] = row
        if tracer.enabled:
            tracer.event(
                "chain-state",
                expanded=len(transitions),
                discovered=len(discovered),
                frontier=len(queue),
                out_degree=len(row),
            )
        for successor in row:
            if successor not in discovered:
                if len(discovered) >= max_states:
                    raise StateSpaceLimitExceeded(
                        f"state chain exceeds max_states={max_states} "
                        f"({len(discovered)} states discovered, "
                        f"{len(transitions)} expanded, frontier size "
                        f"{len(queue) + 1}); raise the limit, use the "
                        "lumped or sampling evaluator, or enable "
                        "degradation (--fallback auto)",
                        details={
                            "max_states": max_states,
                            "states_discovered": len(discovered),
                            "states_expanded": len(transitions),
                            "frontier_size": len(queue) + 1,
                        },
                    )
                discovered.add(successor)
                queue.append(successor)
                if context is not None:
                    context.tick_states()
    return MarkovChain(transitions)


def count_reachable_states(
    kernel: Interpretation,
    initial: Database,
    max_states: int = DEFAULT_MAX_STATES,
    context: "RunContext | None" = None,
) -> int:
    """Number of reachable database states (bounded exploration)."""
    return build_state_chain(kernel, initial, max_states, context=context).size
