"""Probabilistic first-order interpretations (Definition 3.1).

An :class:`Interpretation` is the transition kernel of the paper's
forever-queries: one relational-algebra-with-repair-key query per
relation of the schema.  Applied to a database state A it yields the
probabilistic database Q(A): each relation Rᵢ becomes a possible result
of Qᵢ(A), independently across relations, and a world's probability is
the product of the per-relation world probabilities.

Conveniences beyond the bare definition, both used throughout the paper:

* relations with no query keep their old value (the paper's
  ``E := E  % unchanged`` identity lines);
* a :class:`~repro.ctables.pctable.PCDatabase` may be attached.  Its
  c-table relations are *re-instantiated from a fresh valuation at every
  kernel application*, which is the non-inflationary semantics the paper
  gives pc-table "macros" (end of Section 3.1); variables shared between
  c-tables stay correlated, which the algebraic macro compilation of
  :mod:`repro.ctables.macro` cannot express (see its docstring).
  Under *inflationary* semantics the choice must instead be made once up
  front — the inflationary evaluators handle that by enumerating or
  sampling the valuation before iterating (Section 3.2).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Mapping

from repro.ctables.pctable import PCDatabase
from repro.errors import SchemaError
from repro.probability.distribution import Distribution
from repro.relational.algebra import Expression, validate
from repro.relational.database import Database
from repro.relational.prob_eval import enumerate_worlds, sample_world
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.perf.cache import TransitionCache


class Interpretation:
    """A probabilistic first-order interpretation (transition kernel).

    Parameters
    ----------
    queries:
        Mapping of relation name to the algebra expression computing its
        next value.  The expression's output columns must match the
        relation's columns (checked lazily against the first database
        the kernel is applied to).
    pc_tables:
        Optional pc-table database; its c-table relations are
        re-instantiated from a fresh joint valuation at each application
        and must not also have queries.

    Examples
    --------
    >>> from repro.relational import rel
    >>> kernel = Interpretation({"C": rel("C")})   # identity kernel
    """

    #: Per-relation ``(start, end)`` character ranges of the ``NAME := expr``
    #: assignments in the source text; set by the parser, ``None`` for
    #: programmatically built kernels.
    source_spans: Mapping[str, tuple[int, int]] | None = None

    def __init__(
        self,
        queries: Mapping[str, Expression],
        pc_tables: PCDatabase | None = None,
    ):
        self.queries = dict(queries)
        self.pc_tables = pc_tables
        if pc_tables is not None:
            clash = set(self.queries) & set(pc_tables.tables)
            if clash:
                raise SchemaError(
                    f"relations {sorted(clash)!r} have both a kernel query and "
                    "a pc-table definition"
                )
            if pc_tables.certain:
                raise SchemaError(
                    "put the pc-database's certain relations into the initial "
                    "database instead of the kernel's pc_tables"
                )

    # -- schema ------------------------------------------------------------

    def pc_relation_names(self) -> list[str]:
        """Names of attached pc-table relations (empty without pc-tables)."""
        if self.pc_tables is None:
            return []
        return sorted(self.pc_tables.tables)

    def updated_relations(self) -> list[str]:
        """All relations the kernel rewrites (queries + pc-tables)."""
        return sorted(set(self.queries) | set(self.pc_relation_names()))

    def check_schema(self, db: Database) -> None:
        """Validate every query's result schema against ``db``.

        Definition 3.1 requires the result schema of Qᵢ to be the schema
        of Rᵢ.  Raises :class:`SchemaError` on mismatch.
        """
        schema = db.schema()
        for name, expression in self.queries.items():
            if name not in schema:
                raise SchemaError(
                    f"kernel rewrites relation {name!r} missing from the database"
                )
            out = validate(expression, schema)
            if out != schema[name]:
                raise SchemaError(
                    f"query for {name!r} produces columns {out!r}, "
                    f"but the relation has columns {schema[name]!r}"
                )
        for name in self.pc_relation_names():
            if name not in schema:
                raise SchemaError(
                    f"pc-table relation {name!r} missing from the database; "
                    "include an initial instantiation in the start state"
                )

    def without_pc_tables(self) -> "Interpretation":
        """The same kernel with pc-table resampling removed (the
        attached pc relations become unchanged-by-default).  Used by the
        inflationary evaluators, which fix the pc-table valuation once."""
        return Interpretation(self.queries, pc_tables=None)

    # -- semantics ------------------------------------------------------------

    def _merge(self, db: Database, updates: Mapping[str, Relation]) -> Database:
        """New state: rewritten relations replaced, the rest unchanged."""
        return db.with_relations(dict(updates))

    def transition(self, db: Database) -> Distribution[Database]:
        """The exact probabilistic database Q(db) (Definition 3.1).

        Exponential in the number of probabilistic choices; this is the
        primitive used by all the exact evaluators.
        """
        result: Distribution[Database] = Distribution.point(db)

        # Queries are independent of each other: fold each one in.
        for name in sorted(self.queries):
            expression = self.queries[name]
            worlds = enumerate_worlds(expression, db)
            result = result.bind(
                lambda state, name=name, worlds=worlds: worlds.map(
                    lambda relation, name=name, state=state: state.with_relation(
                        name, relation
                    )
                )
            )

        if self.pc_tables is not None:
            pc = self.pc_tables
            names = sorted(pc.tables)
            variable_names = pc.variable_names()
            instantiations = pc.valuation_distribution().map(
                lambda values: tuple(
                    pc.tables[name].instantiate(dict(zip(variable_names, values)))
                    for name in names
                )
            )
            result = result.bind(
                lambda state: instantiations.map(
                    lambda relations, state=state: state.with_relations(
                        dict(zip(names, relations))
                    )
                )
            )
        return result

    def sample_transition(self, db: Database, rng: random.Random) -> Database:
        """Draw one possible next state in polynomial time."""
        updates: dict[str, Relation] = {}
        for name in sorted(self.queries):
            updates[name] = sample_world(self.queries[name], db, rng)
        if self.pc_tables is not None:
            valuation = self.pc_tables.sample_valuation(rng)
            for name, table in self.pc_tables.tables.items():
                updates[name] = table.instantiate(valuation)
        return self._merge(db, updates)

    def cached(self, maxsize: int | None = None) -> "TransitionCache":
        """A bounded LRU memo of this kernel's exact transition rows.

        Convenience constructor for
        :class:`~repro.perf.cache.TransitionCache`: pass the result as
        ``cache=`` to :func:`~repro.core.chain_builder.build_state_chain`
        or use its ``sample`` method for memoized walking.  See
        ``docs/performance.md`` for when memoized sampling is
        appropriate (small per-state support; different RNG stream).
        """
        from repro.perf.cache import DEFAULT_CACHE_SIZE, TransitionCache

        return TransitionCache(
            self, maxsize=DEFAULT_CACHE_SIZE if maxsize is None else maxsize
        )

    def is_deterministic(self) -> bool:
        """True when the kernel makes no probabilistic choice at all."""
        if self.pc_tables is not None and self.pc_tables.variables:
            return False
        return all(expr.is_deterministic() for expr in self.queries.values())

    def __repr__(self) -> str:
        pc = f", pc={self.pc_relation_names()!r}" if self.pc_tables else ""
        return f"Interpretation(queries={sorted(self.queries)!r}{pc})"


def identity_interpretation() -> Interpretation:
    """The kernel that leaves every relation unchanged."""
    return Interpretation({})
